"""Cluster-aware batch cost model for the query server.

:class:`ClusterBatchCostModel` presents the exact duck-typed interface
:class:`~repro.serving.batcher.BatchCostModel` gives the server —
``max_batch`` / ``service_seconds(n)`` / ``best_batch()`` /
``saturation_qps(n)`` — but prices each batch as one scatter-gather
round over the sharded deployment instead of one device scan:

    service(n) = scatter + max_shard( shard_batch(n) x straggle
                                      + failover ladders ) + gather

The per-shard batch table is a real :class:`BatchCostModel` over that
shard's slice of the database, so shared-scan amortization, degraded
accelerators, and event-calibrated fidelity all keep working per
shard.  The shard barrier (``max``) is what batching buys back: one
slow shard stalls every query in the batch, which is why the scaling
curve flattens as stragglers grow — visible in ``bench_ext_cluster``.

Planning-time estimate: the table prices each shard at its query-0
read-spread primary (the rotation-averaged figure differs only when
replicas straggle asymmetrically, inside the drift gates).  A 1-shard,
1-replica cluster yields the single-device table exactly.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cluster.config import ClusterConfig, ClusterError
from repro.cluster.placement import make_placement
from repro.core.deepstore import DeepStoreSystem
from repro.core.engine import DispatchPolicy
from repro.serving.batcher import BatchCostModel, BatchPolicy
from repro.ssd.ftl import DatabaseMetadata
from repro.workloads.apps import AppSpec


class ClusterBatchCostModel:
    """Scatter-gather batch pricing, duck-typing ``BatchCostModel``."""

    def __init__(
        self,
        app: AppSpec,
        meta: DatabaseMetadata,
        cluster: Optional[ClusterConfig] = None,
        system: Optional[DeepStoreSystem] = None,
        policy: Optional[BatchPolicy] = None,
        failed_accels: Tuple[int, ...] = (),
        dispatch_policy: Optional[DispatchPolicy] = None,
        fidelity: str = "analytic",
    ) -> None:
        self.app = app
        self.meta = meta
        self.cluster = cluster or ClusterConfig(n_shards=1)
        self.system = system or DeepStoreSystem.at_level(self.cluster.level)
        self.policy = policy or BatchPolicy()
        cfg = self.cluster
        placement = make_placement(
            cfg.placement, meta.feature_count, cfg.n_shards, seed=cfg.seed
        )
        self.placement = placement
        shards = placement.non_empty_shards()
        if not shards:
            raise ClusterError("cluster database has no populated shard")
        self.n_contacted = len(shards)
        detect = (dispatch_policy or cfg.dispatch_policy).give_up_seconds()

        # one per-shard batch table per distinct slice size (balanced
        # placements collapse to at most two sizes)
        tables: dict = {}
        k = self.system.k
        #: per-leg (straggle factor, failover ladder seconds, table)
        self._legs: List[Tuple[float, float, BatchCostModel]] = []
        for shard in shards:
            size = len(placement.owners[shard])
            table = tables.get(size)
            if table is None:
                shard_meta = DatabaseMetadata(
                    db_id=meta.db_id,
                    feature_bytes=meta.feature_bytes,
                    feature_count=size,
                    page_bytes=meta.page_bytes,
                )
                table = BatchCostModel(
                    app,
                    shard_meta,
                    system=self.system,
                    policy=self.policy,
                    failed_accels=failed_accels,
                    dispatch_policy=dispatch_policy,
                    fidelity=fidelity,
                )
                tables[size] = table
            live = cfg.live_replicas(shard)
            if not live:
                raise ClusterError(
                    f"shard {shard} has no live replica to serve"
                )
            # query-0 read spread: rotate the intended primary, pay one
            # detection ladder per dead replica ahead of the first live
            intended = shard % cfg.n_replicas
            ladder = 0.0
            primary = intended
            for j in range(cfg.n_replicas):
                candidate = (intended + j) % cfg.n_replicas
                if candidate in live:
                    primary = candidate
                    break
                ladder += detect
            self._legs.append(
                (cfg.replica_slowdown(shard, primary), ladder, table)
            )
        self.scatter_s = cfg.costs.scatter_seconds(self.n_contacted)
        merge_comparisons = 0
        if self.n_contacted > 1:
            # steady-state gather shape (matches ClusterModel)
            import math

            heap_ops = self.n_contacted + 2 * k
            merge_comparisons = heap_ops * math.ceil(
                math.log2(self.n_contacted)
            )
        self.gather_s = cfg.costs.gather_seconds(merge_comparisons)
        # a result DMA happens per shard leg inside the device table
        # already; the coordinator adds only its own serial costs

    # ------------------------------------------------------------------
    @property
    def max_batch(self) -> int:
        return self.policy.max_batch

    def service_seconds(self, batch_size: int) -> float:
        """One scatter-gather round serving a ``batch_size`` batch."""
        if not 1 <= batch_size <= self.max_batch:
            raise ValueError(
                f"batch_size {batch_size} outside 1..{self.max_batch}"
            )
        barrier = max(
            ladder + slow * table.service_seconds(batch_size)
            for slow, ladder, table in self._legs
        )
        return self.scatter_s + barrier + self.gather_s

    def best_batch(self) -> Tuple[int, float]:
        """Batch size with the highest cluster queries-per-second."""
        best_n, best_qps = 1, 1.0 / self.service_seconds(1)
        for n in range(2, self.max_batch + 1):
            qps = n / self.service_seconds(n)
            if qps > best_qps:
                best_n, best_qps = n, qps
        return best_n, best_qps

    def saturation_qps(self, n_servers: int = 1) -> float:
        """Peak sustainable throughput with perfect batching."""
        if n_servers <= 0:
            raise ValueError("n_servers must be positive")
        return n_servers * self.best_batch()[1]
