"""Hedged scatter execution over replicated shards.

This is the coordinator's data plane, run as a discrete-event
simulation on :class:`repro.sim.Simulator` so failover ladders, hedge
timers, and result cancellation interleave like they would on a real
host — with the simulator's FIFO same-time tie-break making every run
bit-deterministic.

Per shard the coordinator walks a **failover ladder**: each dead
replica tried before a live one costs the dispatch policy's full
give-up ladder (the coordinator cannot tell "dead" from "slow" until
the timeouts are exhausted), then the first live replica's query runs.
If hedging is enabled and a second live replica exists, a **hedge
timer** arms when the primary launches; if the primary completes
first the timer is cancelled, otherwise the backup replica's query
launches and the first completion wins — the loser's completion event
is cancelled (exercising :meth:`repro.sim.Event.cancel`, which drops
the losing payload's closure immediately).  Only the winner's payload
survives, so a hedge can never double-count a shard's candidates.

Replica runners are **lazy callables**: a backup's query only executes
if its hedge actually fires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.config import ClusterError
from repro.obs.dtrace import QueryTraceContext, TraceCollector
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.sim.engine import Simulator

#: a lazily-invoked replica query: () -> (seconds, payload)
ReplicaRunner = Callable[[], Tuple[float, Any]]


@dataclass(frozen=True)
class ReplicaAttempt:
    """One replica of one shard, in the coordinator's failover order."""

    replica: int
    alive: bool
    #: invoked only if this replica actually launches
    run: ReplicaRunner


@dataclass(frozen=True)
class ShardJob:
    """Everything the scatter loop needs to serve one shard."""

    shard: int
    #: failover order; ``attempts[0]`` is the read-spread primary
    attempts: Tuple[ReplicaAttempt, ...]
    #: give-up ladder paid per dead replica tried before a live one
    detect_seconds: float = 0.0
    #: arm the backup this many seconds after the primary launches
    #: (``None`` disables hedging for this shard)
    hedge_delay: Optional[float] = None
    #: retry-ladder pauses: ``backoff_delays[i]`` is charged after the
    #: ``i``-th dead replica before trying the next rung; running out of
    #: rungs resolves the shard *unavailable*.  ``None`` keeps the
    #: legacy unlimited zero-pause failover walk bit-identical.
    backoff_delays: Optional[Tuple[float, ...]] = None
    #: replicas the circuit breakers refused at dispatch time, as
    #: (replica, breaker state name) — they never reach ``attempts`` but
    #: the query's trace should still show the rejection
    breaker_rejected: Tuple[Tuple[int, str], ...] = ()


@dataclass
class ShardOutcome:
    """What one shard's scatter leg actually did."""

    shard: int
    #: replica whose result was used (``-1`` when unavailable)
    replica: int
    #: simulated time the winning replica launched
    start_s: float
    #: simulated completion time (includes detection + run)
    done_s: float
    #: time burned detecting dead replicas before launching
    detect_s: float = 0.0
    #: retry-ladder pause seconds charged to this leg's latency
    retry_pause_s: float = 0.0
    #: dead replicas skipped before the primary launched
    failovers: int = 0
    #: a hedge request was actually launched
    hedged: bool = False
    #: ... and it beat the primary
    hedge_won: bool = False
    #: no live replica could serve this shard (structured outcome, not
    #: an exception — the gather merges whatever shards did answer)
    unavailable: bool = False
    payload: Any = None
    #: the winning replica's own run time — the exact float its runner
    #: returned, so critical paths can replay ``start + service``
    service_s: float = 0.0
    #: hedge delay on the leg's latency path (only when the hedge won:
    #: the backup could not start before its timer fired)
    hedge_wait_s: float = 0.0
    #: time the winning hedge shaved off the primary's planned
    #: completion (diagnostic; not on the additive path)
    hedge_saved_s: float = 0.0


@dataclass
class ScatterResult:
    """All shard outcomes of one scatter round, shard-ordered."""

    outcomes: List[ShardOutcome]
    #: completion time of the slowest shard (the gather barrier)
    makespan_s: float
    hedges_launched: int = 0
    hedge_wins: int = 0
    failovers: int = 0
    #: shards that resolved unavailable (no live replica in budget)
    unavailable_shards: int = 0

    def payloads(self) -> List[Any]:
        """Winning payload per available shard, shard-ordered."""
        return [o.payload for o in self.outcomes if not o.unavailable]


class _ShardLeg:
    """Per-shard state machine wired into the simulator."""

    def __init__(
        self,
        job: ShardJob,
        sim: Simulator,
        metrics: Optional[MetricsRegistry],
        track,
        tracer: Optional[Tracer],
        dtrace: Optional[TraceCollector] = None,
        shard_ctx: Optional[QueryTraceContext] = None,
        base_s: float = 0.0,
    ) -> None:
        self.job = job
        self.sim = sim
        self.metrics = metrics
        self.track = track
        self.tracer = tracer
        #: distributed-trace collector + the query's per-shard parent
        #: span; leg times are local (legs launch at sim time 0), so
        #: ``base_s`` re-anchors them onto the query's wall clock
        self.dtrace = dtrace
        self.shard_ctx = shard_ctx
        self.base_s = base_s
        self.outcome: Optional[ShardOutcome] = None
        self._events: Dict[int, Any] = {}  # replica -> completion Event
        self._timer = None
        self._backup: Optional[ReplicaAttempt] = None
        self._detect_s = 0.0
        self._pause_s = 0.0
        self._failovers = 0
        self._hedged = False
        #: replica -> (start, seconds, tracer token) of launched runs
        self._launched: Dict[int, Tuple[float, float, int]] = {}

    def _dtrack(self) -> str:
        return f"cluster/shard {self.job.shard}"

    def launch(self) -> None:
        if self.dtrace is not None and self.shard_ctx is not None:
            for replica, state in self.job.breaker_rejected:
                self.dtrace.add_span(
                    self.shard_ctx, f"breaker reject r{replica}",
                    self.base_s, self.base_s,
                    kind="cluster.breaker", track=self._dtrack(),
                    status="rejected", replica=replica, state=state,
                )
        live: List[ReplicaAttempt] = []
        delays = self.job.backoff_delays
        exhausted = False
        for attempt in self.job.attempts:
            if attempt.alive:
                live.append(attempt)
                continue
            if live:
                continue
            # a dead replica ahead of the primary costs one full
            # detection ladder before the coordinator moves on
            self._detect_s += self.job.detect_seconds
            self._failovers += 1
            if delays is not None:
                # the retry ladder gates the next rung: no pause left
                # (attempt or budget cap) means the shard resolves
                # unavailable instead of walking the order forever
                if self._failovers - 1 < len(delays):
                    self._pause_s += delays[self._failovers - 1]
                else:
                    exhausted = True
                    break
        if exhausted or not live:
            # structured unavailability: the leg completes once the
            # detection (and any retry pauses) has been paid, carrying
            # no payload for the gather to merge
            done = self._detect_s + self._pause_s
            if self.tracer is not None:
                self.tracer.complete(
                    self.track, "unavailable", 0.0, done,
                    cat="cluster.detect",
                    args={"failovers": self._failovers},
                )
            if self.dtrace is not None and self.shard_ctx is not None:
                self.dtrace.add_span(
                    self.shard_ctx, "unavailable",
                    self.base_s, self.base_s + done,
                    kind="cluster.detect", track=self._dtrack(),
                    status="unavailable", failovers=self._failovers,
                    retry_pause_s=self._pause_s,
                )
            self.outcome = ShardOutcome(
                shard=self.job.shard,
                replica=-1,
                start_s=done,
                done_s=done,
                detect_s=self._detect_s,
                retry_pause_s=self._pause_s,
                failovers=self._failovers,
                unavailable=True,
            )
            if self.metrics is not None:
                self.metrics.counter("cluster.shards_unavailable").inc()
            return
        primary = live[0]
        start = self._detect_s + self._pause_s
        if self.tracer is not None and start > 0.0:
            self.tracer.complete(
                self.track, "detect", 0.0, start,
                cat="cluster.detect",
                args={"failovers": self._failovers},
            )
        if (
            self.dtrace is not None
            and self.shard_ctx is not None
            and start > 0.0
        ):
            self.dtrace.add_span(
                self.shard_ctx, f"failover detect x{self._failovers}",
                self.base_s, self.base_s + start,
                kind="cluster.detect", track=self._dtrack(),
                failovers=self._failovers, retry_pause_s=self._pause_s,
            )
        self._start_replica(primary, start)
        if self.job.hedge_delay is not None and len(live) > 1:
            self._backup = live[1]
            self._timer = self.sim.schedule(
                start + self.job.hedge_delay,
                self._fire_hedge,
                label=f"hedge-timer shard{self.job.shard}",
            )

    # ------------------------------------------------------------------
    def _start_replica(self, attempt: ReplicaAttempt, start: float) -> None:
        seconds, payload = attempt.run()
        if seconds < 0:
            raise ClusterError("replica runner returned negative seconds")
        self._events[attempt.replica] = self.sim.schedule(
            start + seconds,
            lambda: self._finish(attempt, start, seconds, payload),
            label=f"shard{self.job.shard} r{attempt.replica} done",
        )
        token = 0
        if self.tracer is not None:
            # open-ended: a hedge race decides the *actual* end — the
            # winner closes at its completion, the loser at the instant
            # its completion event is cancelled
            token = self.tracer.begin(
                self.track,
                f"replica {attempt.replica}",
                start,
                cat="cluster.shard",
                args={"shard": self.job.shard, "replica": attempt.replica},
            )
        self._launched[attempt.replica] = (start, seconds, token)

    def _fire_hedge(self) -> None:
        self._timer = None
        backup = self._backup
        assert backup is not None  # guarded at arm time
        if self.metrics is not None:
            self.metrics.counter("cluster.hedges_launched").inc()
        self._hedged = True
        self._start_replica(backup, self.sim.now)

    def _finish(
        self,
        attempt: ReplicaAttempt,
        start: float,
        seconds: float,
        payload: Any,
    ) -> None:
        # the loser's completion (if outstanding) must never run: its
        # payload closure is released by cancel()
        now = self.sim.now
        for replica, event in self._events.items():
            if replica != attempt.replica:
                event.cancel()
                lstart, _lseconds, ltoken = self._launched[replica]
                if self.tracer is not None:
                    # the loser's span ends at cancellation, not at its
                    # planned completion — that work never happened
                    self.tracer.end(
                        ltoken, now, args={"cancelled": True}
                    )
                    self.tracer.instant(
                        self.track, f"cancel replica {replica}", now,
                        cat="cluster.cancel",
                        args={"shard": self.job.shard, "replica": replica},
                    )
                if self.dtrace is not None and self.shard_ctx is not None:
                    self.dtrace.add_span(
                        self.shard_ctx, f"attempt r{replica} (hedge loser)",
                        self.base_s + lstart, self.base_s + now,
                        kind="cluster.attempt", track=self._dtrack(),
                        status="cancelled", replica=replica,
                    )
        self._events.clear()
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        hedged = self._hedged
        hedge_won = hedged and self._backup is not None and (
            attempt.replica == self._backup.replica
        )
        if hedge_won and self.metrics is not None:
            self.metrics.counter("cluster.hedge_wins").inc()
        if self.tracer is not None:
            _wstart, _wseconds, wtoken = self._launched[attempt.replica]
            self.tracer.end(wtoken, now)
        if self.dtrace is not None and self.shard_ctx is not None:
            name = f"attempt r{attempt.replica}"
            if hedge_won:
                name += " (hedge winner)"
            self.dtrace.add_span(
                self.shard_ctx, name,
                self.base_s + start, self.base_s + now,
                kind="cluster.attempt", track=self._dtrack(),
                replica=attempt.replica, hedged=hedged,
                hedge_won=hedge_won,
            )
        hedge_saved = 0.0
        if hedge_won:
            # how much earlier the hedge landed vs the primary's
            # planned completion (the primary launched first)
            planned = max(
                s + sec for _r, (s, sec, _t) in self._launched.items()
                if _r != attempt.replica
            )
            hedge_saved = max(0.0, planned - now)
        self.outcome = ShardOutcome(
            shard=self.job.shard,
            replica=attempt.replica,
            start_s=start,
            done_s=now,
            detect_s=self._detect_s,
            retry_pause_s=self._pause_s,
            failovers=self._failovers,
            hedged=hedged,
            hedge_won=hedge_won,
            payload=payload,
            service_s=seconds,
            hedge_wait_s=(
                self.job.hedge_delay
                if hedge_won and self.job.hedge_delay is not None
                else 0.0
            ),
            hedge_saved_s=hedge_saved,
        )


def run_scatter(
    jobs: Sequence[ShardJob],
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    dtrace: Optional[TraceCollector] = None,
    shard_ctxs: Optional[Dict[int, QueryTraceContext]] = None,
    base_s: float = 0.0,
) -> ScatterResult:
    """Execute one scatter round; returns shard-ordered outcomes.

    All shards launch at simulated time 0 (the serial fan-out cost is
    the coordinator's, charged separately via
    :meth:`~repro.cluster.config.CoordinatorCosts.scatter_seconds`).
    Completion events are scheduled before hedge timers, so a primary
    finishing exactly at the hedge deadline wins the FIFO tie and no
    hedge launches — deterministic either way.

    ``dtrace`` + ``shard_ctxs`` (shard -> parent span context) record
    each leg's attempts — winners, cancelled hedge losers, failover
    detection, breaker rejections — as child spans of the query's
    per-shard spans, re-anchored onto the query's wall clock at
    ``base_s``.  Recording never touches the event heap, so outcomes
    are bit-identical with or without it.
    """
    if not jobs:
        raise ClusterError("scatter needs at least one shard job")
    tracer = tracer if tracer is not None and tracer.enabled else None
    sim = Simulator(tracer=tracer)
    legs: List[_ShardLeg] = []
    for job in jobs:
        track = (
            tracer.track("cluster", f"shard {job.shard}")
            if tracer is not None
            else None
        )
        shard_ctx = (
            shard_ctxs.get(job.shard) if shard_ctxs is not None else None
        )
        leg = _ShardLeg(
            job, sim, metrics, track, tracer,
            dtrace=dtrace, shard_ctx=shard_ctx, base_s=base_s,
        )
        legs.append(leg)
    # launch in shard order so seq-based ties resolve by shard id
    for leg in legs:
        leg.launch()
    sim.run()
    outcomes: List[ShardOutcome] = []
    for leg in legs:
        if leg.outcome is None:  # pragma: no cover - defensive
            raise ClusterError(
                f"shard {leg.job.shard} never completed its scatter leg"
            )
        outcomes.append(leg.outcome)
    outcomes.sort(key=lambda o: o.shard)
    if all(o.unavailable for o in outcomes):
        # nothing answered — there is no partial result to return
        raise ClusterError("no shard has a live replica to serve")
    result = ScatterResult(
        outcomes=outcomes,
        makespan_s=max(o.done_s for o in outcomes),
        hedges_launched=sum(1 for o in outcomes if o.hedged),
        hedge_wins=sum(1 for o in outcomes if o.hedge_won),
        failovers=sum(o.failovers for o in outcomes),
        unavailable_shards=sum(1 for o in outcomes if o.unavailable),
    )
    if metrics is not None:
        metrics.counter("cluster.scatters").inc()
        metrics.counter("cluster.failovers").inc(result.failovers)
        metrics.histogram("cluster.scatter_makespan_s").observe(
            result.makespan_s
        )
    return result
