"""Opt-in process-parallel shard execution for scatter-gather queries.

Between scatter and gather, shard legs are completely independent: each
one runs its own device simulation over its own partition and returns a
canonical top-K partial plus its simulated seconds.  That makes the
scatter loop embarrassingly parallel in *wall-clock* terms without
touching *simulated* time — the numbers a shard leg returns are a pure
function of its inputs, so running legs in forked child processes
produces byte-identical partials, and the gather
(:func:`repro.core.topk.kway_merge_topk`) sees exactly the sequence the
sequential loop would have built.

The executor forks one child per shard leg (bounded by ``processes``),
ships the leg's pickled ``(partial, seconds)`` result back over a pipe,
and merges in shard order.  ``fork`` (not ``spawn``) is required
because shard runners are closures over live device objects; platforms
without ``os.fork`` fall back to the sequential loop, as does
``processes<=1``.  Parallelism is **opt-in**: the coordinator's normal
query path mutates per-replica state (circuit breakers, metrics,
caches) that forked children cannot write back, so only stateless legs
— the kind the scaling benches and what-if sweeps run — go through
here.

``tests/test_sim_fastpath.py`` asserts the bit-equality contract:
parallel merge == sequential scatter-gather, same floats, same order.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.cluster.config import ClusterError
from repro.core.topk import KWayMergeStats, kway_merge_topk, topk_select

#: environment knob consulted when ``processes`` is not given: the
#: number of concurrent shard workers (unset/0 ⇒ sequential)
ENV_VAR = "REPRO_PARALLEL_SHARDS"

#: a shard leg: shard index -> ((score, id) pairs, simulated seconds).
#: Pairs need not be pre-sorted; the executor canonicalizes them.
ShardRunner = Callable[[int], Tuple[Sequence[Tuple[float, int]], float]]


@dataclass
class ParallelGatherResult:
    """Outcome of one (possibly parallel) scatter-gather."""

    #: exact global top-K, canonical order
    merged: List[Tuple[float, int]]
    stats: KWayMergeStats
    #: canonicalized per-shard partials, in shard order
    partials: List[List[Tuple[float, int]]]
    #: simulated seconds per shard leg, in shard order
    shard_seconds: List[float]
    #: worker processes actually used (1 ⇒ sequential loop)
    processes: int

    @property
    def makespan_s(self) -> float:
        """Simulated scatter makespan (legs run concurrently)."""
        return max(self.shard_seconds, default=0.0)


def default_processes() -> int:
    """Worker count from ``REPRO_PARALLEL_SHARDS`` (0 ⇒ sequential)."""
    raw = os.environ.get(ENV_VAR, "").strip()
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError:
        return 1
    return max(1, value)


def _run_leg(runner: ShardRunner, shard: int, k: int) -> Tuple[List[Tuple[float, int]], float]:
    pairs, seconds = runner(shard)
    # canonicalize in the worker: the child does the sort so the parent
    # only merges, and the sequential path uses the exact same call
    return topk_select(pairs, k), float(seconds)


def _fork_leg(runner: ShardRunner, shard: int, k: int) -> Tuple[int, int]:
    """Fork one shard worker; returns ``(pid, read_fd)``.

    The child inherits the runner's closed-over devices by fork, runs
    the leg, writes one pickled ``(ok, value)`` payload, and exits
    without running parent cleanup (``os._exit``).
    """
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:  # child
        os.close(read_fd)
        try:
            payload = pickle.dumps((True, _run_leg(runner, shard, k)))
        except BaseException as exc:  # noqa: BLE001 - must not escape the child
            payload = pickle.dumps((False, f"{type(exc).__name__}: {exc}"))
        try:
            with os.fdopen(write_fd, "wb") as pipe:
                pipe.write(payload)
        finally:
            os._exit(0)
    os.close(write_fd)
    return pid, read_fd


def _collect_leg(shard: int, pid: int, read_fd: int) -> Tuple[List[Tuple[float, int]], float]:
    with os.fdopen(read_fd, "rb") as pipe:
        payload = pipe.read()
    os.waitpid(pid, 0)
    if not payload:
        raise ClusterError(f"shard {shard} worker died without a result")
    ok, value = pickle.loads(payload)
    if not ok:
        raise ClusterError(f"shard {shard} worker failed: {value}")
    return value


def scatter_gather_topk(
    runner: ShardRunner,
    shards: Sequence[int],
    k: int,
    processes: Optional[int] = None,
) -> ParallelGatherResult:
    """Run every shard leg, then K-way merge the partials.

    ``processes`` bounds concurrent forked workers; ``None`` defers to
    ``REPRO_PARALLEL_SHARDS`` and ``<=1`` (or a platform without
    ``fork``) runs the plain sequential loop.  Parallel and sequential
    execution return bit-identical results — same partials, same merge,
    same per-leg seconds — because each leg is a pure function of its
    shard index; only host wall-clock differs.
    """
    if k <= 0:
        raise ClusterError("K must be positive")
    shard_list = list(shards)
    workers = default_processes() if processes is None else max(1, processes)
    workers = min(workers, len(shard_list)) if shard_list else 1

    legs: List[Tuple[List[Tuple[float, int]], float]] = []
    if workers <= 1 or not hasattr(os, "fork"):
        legs = [_run_leg(runner, shard, k) for shard in shard_list]
        workers = 1
    else:
        # bounded fork pool, collected in shard order.  FIFO collection
        # cannot deadlock: every child writes its (small) payload and
        # exits regardless of when the parent reads, and the parent
        # always reads each pipe to EOF before reaping.
        results: List[Optional[Tuple[List[Tuple[float, int]], float]]] = [
            None
        ] * len(shard_list)
        inflight: List[Tuple[int, int, int]] = []  # (index, pid, read_fd)
        next_leg = 0
        while next_leg < len(shard_list) or inflight:
            while next_leg < len(shard_list) and len(inflight) < workers:
                pid, read_fd = _fork_leg(runner, shard_list[next_leg], k)
                inflight.append((next_leg, pid, read_fd))
                next_leg += 1
            index, pid, read_fd = inflight.pop(0)
            results[index] = _collect_leg(shard_list[index], pid, read_fd)
        legs = [leg for leg in results if leg is not None]

    partials = [leg[0] for leg in legs]
    shard_seconds = [leg[1] for leg in legs]
    merged, stats = kway_merge_topk(partials, k)
    return ParallelGatherResult(
        merged=merged,
        stats=stats,
        partials=partials,
        shard_seconds=shard_seconds,
        processes=workers,
    )
