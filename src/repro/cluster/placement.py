"""Dataset partitioning across cluster shards.

Three strategies, all deterministic:

* ``range`` — contiguous slices, balanced to within one feature.  The
  layout an append-mostly ingest naturally produces; preserves insert
  order inside a shard, so per-shard flash extents stay sequential.
* ``hash`` — a multiplicative hash of the feature id (Knuth's
  fractional constant), decorrelating shard load from insert order.
  What a key-value-style ingest produces.
* ``locality`` — similar features co-shard: features are assigned to
  the nearest of ``n_shards`` seeded random hyperplane buckets over
  their embeddings.  NCAM-style near-data ANN deployments do this so a
  narrowed search can skip shards entirely; for the exact full-scan
  query it changes *which* shard finds the winners, never the winners.

Every strategy yields a :class:`ShardPlacement`: per-shard arrays of
**global** feature ids, in ascending order, exactly partitioning
``range(n_features)``.  With one shard, every strategy degenerates to
the identity layout — the property the differential parity suite leans
on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

#: 2**64 / golden ratio, the classic multiplicative-hash constant
_KNUTH_64 = 0x9E3779B97F4A7C15
_MASK_64 = (1 << 64) - 1


@dataclass(frozen=True)
class ShardPlacement:
    """An exact partition of ``n_features`` global ids into shards."""

    strategy: str
    n_features: int
    #: ``owners[s]`` = ascending global ids shard ``s`` stores
    owners: Tuple[np.ndarray, ...]

    def __post_init__(self) -> None:
        total = sum(len(ids) for ids in self.owners)
        if total != self.n_features:
            raise ValueError(
                f"placement covers {total} of {self.n_features} features"
            )

    @property
    def n_shards(self) -> int:
        return len(self.owners)

    @property
    def shard_sizes(self) -> Tuple[int, ...]:
        return tuple(len(ids) for ids in self.owners)

    @property
    def imbalance(self) -> float:
        """Largest shard over the perfectly balanced size (>= 1.0)."""
        sizes = self.shard_sizes
        if not sizes or self.n_features == 0:
            return 1.0
        ideal = self.n_features / self.n_shards
        return max(sizes) / ideal if ideal > 0 else 1.0

    def shard_of(self) -> np.ndarray:
        """Inverse map: ``shard_of()[global_id]`` = owning shard."""
        out = np.empty(self.n_features, dtype=np.int64)
        for shard, ids in enumerate(self.owners):
            out[ids] = shard
        return out

    def non_empty_shards(self) -> List[int]:
        """Shards owning at least one feature (the scatter set)."""
        return [s for s, ids in enumerate(self.owners) if len(ids) > 0]


def _owners_from_assignment(
    assignment: np.ndarray, n_shards: int
) -> Tuple[np.ndarray, ...]:
    """Per-shard ascending global-id arrays from an assignment vector."""
    order = np.argsort(assignment, kind="stable")
    bounds = np.searchsorted(assignment[order], np.arange(n_shards + 1))
    return tuple(
        np.sort(order[bounds[s] : bounds[s + 1]]).astype(np.int64)
        for s in range(n_shards)
    )


def range_placement(n_features: int, n_shards: int) -> ShardPlacement:
    """Contiguous slices, sized to within one feature of each other."""
    if n_features < 0:
        raise ValueError("n_features cannot be negative")
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    cuts = np.linspace(0, n_features, n_shards + 1).astype(np.int64)
    owners = tuple(
        np.arange(cuts[s], cuts[s + 1], dtype=np.int64)
        for s in range(n_shards)
    )
    return ShardPlacement("range", n_features, owners)


def range_shard_sizes(n_features: int, n_shards: int) -> List[int]:
    """Per-shard feature counts of :func:`range_placement`, sizes only.

    Exactly ``[len(ids) for ids in range_placement(...).owners]`` — same
    linspace cuts — without materializing the id arrays.  The analytic
    cluster model needs only the counts, and at tens of millions of
    features per estimate the aranges are the dominant allocation.
    """
    if n_features < 0:
        raise ValueError("n_features cannot be negative")
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    cuts = np.linspace(0, n_features, n_shards + 1).astype(np.int64)
    return [int(cuts[s + 1] - cuts[s]) for s in range(n_shards)]


def hash_placement(
    n_features: int, n_shards: int, seed: int = 0
) -> ShardPlacement:
    """Multiplicative-hash assignment of ids to shards."""
    if n_features < 0:
        raise ValueError("n_features cannot be negative")
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    ids = np.arange(n_features, dtype=np.uint64)
    mixed = (ids + np.uint64((seed * 2 + 1) & _MASK_64)) * np.uint64(_KNUTH_64)
    assignment = (mixed & np.uint64(_MASK_64)) % np.uint64(n_shards)
    return ShardPlacement(
        "hash", n_features, _owners_from_assignment(assignment.astype(np.int64), n_shards)
    )


def locality_placement(
    n_features: int,
    n_shards: int,
    features: Optional[np.ndarray] = None,
    seed: int = 0,
) -> ShardPlacement:
    """Embedding-aware assignment: nearest seeded hyperplane bucket.

    Each shard gets a random unit direction; a feature goes to the
    shard whose direction it projects onto most strongly, with a
    balance correction (shards over ``2x`` the ideal size spill to the
    next-best direction).  Without embeddings (metadata-only sizing)
    this falls back to a block-cyclic layout that keeps neighbouring
    ids co-sharded.
    """
    if n_features < 0:
        raise ValueError("n_features cannot be negative")
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    if features is None:
        # block-cyclic: runs of ids stay together, blocks round-robin
        block = max(1, n_features // (n_shards * 8) or 1)
        assignment = (np.arange(n_features, dtype=np.int64) // block) % n_shards
        return ShardPlacement(
            "locality", n_features, _owners_from_assignment(assignment, n_shards)
        )
    features = np.asarray(features, dtype=np.float32)
    if features.ndim != 2 or features.shape[0] != n_features:
        raise ValueError("features must be an (n_features, dim) array")
    rng = np.random.default_rng([seed, 104729])
    directions = rng.normal(0.0, 1.0, (n_shards, features.shape[1]))
    directions /= np.maximum(
        np.linalg.norm(directions, axis=1, keepdims=True), 1e-12
    )
    scores = features @ directions.T.astype(np.float32)  # (N, n_shards)
    preference = np.argsort(-scores, axis=1, kind="stable")
    cap = max(1, int(np.ceil(2.0 * n_features / n_shards)))
    sizes = [0] * n_shards
    assignment = np.empty(n_features, dtype=np.int64)
    for i in range(n_features):
        for choice in preference[i]:
            if sizes[choice] < cap:
                assignment[i] = choice
                sizes[choice] += 1
                break
        else:  # pragma: no cover - caps sum to >= 2N, unreachable
            assignment[i] = int(np.argmin(sizes))
            sizes[assignment[i]] += 1
    return ShardPlacement(
        "locality", n_features, _owners_from_assignment(assignment, n_shards)
    )


def make_placement(
    strategy: str,
    n_features: int,
    n_shards: int,
    features: Optional[np.ndarray] = None,
    seed: int = 0,
) -> ShardPlacement:
    """Build a placement by strategy name."""
    if strategy == "range":
        return range_placement(n_features, n_shards)
    if strategy == "hash":
        return hash_placement(n_features, n_shards, seed=seed)
    if strategy == "locality":
        return locality_placement(
            n_features, n_shards, features=features, seed=seed
        )
    raise ValueError(f"unknown placement strategy {strategy!r}")
