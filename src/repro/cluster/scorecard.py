"""The cluster performance scorecard (the CI perf gate's third leg).

Same philosophy as :mod:`repro.serving.scorecard`: every number is a
deterministic function of config + seed, so drift is a code change.
Three canonical scenarios:

* **scaling** — one app over 1/2/4/8 shards, the shard-count scaling
  curve (speedup vs one SSD, coordinator overhead fraction, merge
  comparisons);
* **replicated_failover** — 8 shards x 2 replicas with dead primaries:
  queries stay exact, the scorecard records the detection-ladder tax;
* **hedged** — stragglers plus hedged requests: how many hedges
  launched, how many won, and the makespan the hedging bought back.

``benchmarks/perf_gate.py`` embeds this dict under the ``cluster`` key
of the combined scorecard and diffs it leaf-by-leaf against the
checked-in baseline.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cluster.config import ClusterConfig
from repro.cluster.model import ClusterModel
from repro.obs.metrics import MetricsRegistry
from repro.workloads.apps import get_app

SCORECARD_APP = "tir"
SCORECARD_FEATURES = 4_000_000
SCORECARD_K = 10
SCORECARD_SEED = 7
SCORECARD_SHARD_COUNTS = (1, 2, 4, 8)


def build_cluster_scorecard(
    app_name: str = SCORECARD_APP,
    n_features: int = SCORECARD_FEATURES,
    k: int = SCORECARD_K,
    seed: int = SCORECARD_SEED,
) -> Dict[str, object]:
    """Run the canonical cluster scenarios; return the perf scorecard."""
    app = get_app(app_name)

    # -- scaling: healthy cluster, 1..8 shards --------------------------
    scaling: List[Dict[str, object]] = []
    for shards in SCORECARD_SHARD_COUNTS:
        model = ClusterModel(
            ClusterConfig(n_shards=shards, placement="range", seed=seed)
        )
        est = model.estimate(app, n_features, k=k)
        overhead = est.scatter_seconds + est.gather_seconds
        scaling.append(
            {
                "shards": shards,
                "query_ms": est.seconds * 1e3,
                "speedup_vs_single": est.speedup_vs_single,
                "coordinator_overhead_fraction": (
                    overhead / est.seconds if est.seconds > 0 else 0.0
                ),
                "merge_comparisons": est.merge.comparisons,
                "utilization": est.utilization,
            }
        )

    # -- replicated failover: dead primaries never change answers ------
    failover_cfg = ClusterConfig(
        n_shards=8,
        n_replicas=2,
        placement="range",
        seed=seed,
        fail_shards=((0, 0), (3, 0)),
    )
    healthy_cfg = ClusterConfig(
        n_shards=8, n_replicas=2, placement="range", seed=seed
    )
    failover = ClusterModel(failover_cfg).estimate(app, n_features, k=k)
    healthy = ClusterModel(healthy_cfg).estimate(app, n_features, k=k)
    failover_block = {
        "dead_replicas": len(failover_cfg.dead_replicas()),
        "query_ms": failover.seconds * 1e3,
        "healthy_query_ms": healthy.seconds * 1e3,
        "slowdown": (
            failover.seconds / healthy.seconds
            if healthy.seconds > 0
            else 1.0
        ),
        "failovers": failover.failovers,
    }

    # -- hedged: stragglers + hedging, event counters drift-gated ------
    # the spread must exceed hedge_fraction + the backup's own straggle
    # for a hedge to be *able* to win (the slowdowns are intrinsic to a
    # replica here, not transient queueing): with spread 3.0 a primary
    # can run at up to 4x healthy while a near-healthy backup launched
    # at 1.25x healthy finishes around 2.3x — a win.  The scenario seed
    # is offset so the default draw includes a win on the critical
    # (slowest) shard, making makespan_saved_fraction a live gate.
    hedge_seed = seed + 9
    metrics = MetricsRegistry()
    straggler_cfg = ClusterConfig(
        n_shards=8,
        n_replicas=2,
        placement="range",
        seed=hedge_seed,
        straggler_spread=3.0,
    )
    hedged_cfg = ClusterConfig(
        n_shards=8,
        n_replicas=2,
        placement="range",
        seed=hedge_seed,
        straggler_spread=3.0,
        hedge_fraction=1.25,
    )
    straggled = ClusterModel(straggler_cfg).estimate(app, n_features, k=k)
    hedged = ClusterModel(hedged_cfg, metrics=metrics).estimate(
        app, n_features, k=k
    )
    hedged_block = {
        "straggled_query_ms": straggled.seconds * 1e3,
        "hedged_query_ms": hedged.seconds * 1e3,
        "makespan_saved_fraction": (
            1.0 - hedged.makespan_seconds / straggled.makespan_seconds
            if straggled.makespan_seconds > 0
            else 0.0
        ),
        "hedges_launched": hedged.hedges_launched,
        "hedge_wins": hedged.hedge_wins,
        "metrics_hedges_launched": metrics.counter(
            "cluster.hedges_launched"
        ).value,
    }

    return {
        "app": app_name,
        "features": n_features,
        "k": k,
        "seed": seed,
        "scaling": scaling,
        "failover": failover_block,
        "hedged": hedged_block,
    }


def cluster_metrics_snapshot(registry: MetricsRegistry) -> Dict[str, object]:
    """The ``cluster.*`` slice of a metrics snapshot (for --json)."""
    return {
        name: value
        for name, value in registry.snapshot().items()
        if name.startswith("cluster.")
    }
