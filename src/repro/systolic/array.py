"""Analytic cycle model for a rectangular systolic array.

The model follows SCALE-Sim's tile accounting.  A GEMM of output ``M x N``
with reduction depth ``K`` is tiled over an ``R x C`` array:

* **output stationary (OS)** — each tile computes an ``r x c`` block of
  outputs (``r <= R``, ``c <= C``); the tile streams for ``K`` cycles plus a
  skew fill/drain of ``r + c - 2`` cycles.  Used by the SSD- and
  channel-level accelerators (paper Table 3).
* **weight stationary (WS)** — each tile pins an ``r x c`` block of the
  ``K x N`` weight matrix (``r`` rows of reduction, ``c`` output columns);
  loading takes ``r`` cycles, then ``m`` input rows stream through with a
  ``c - 1`` drain.  Used by the chip-level accelerators, which stream a
  small batch of feature vectors past each pinned weight tile.
* **element-wise** — the paper's modification adds an input line per row,
  so element-wise ops sustain ``R`` elements/cycle.

The model also counts scratchpad/DRAM word traffic per layer using the
standard per-dataflow reuse factors; the energy model turns those counts
into joules.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

VALID_DATAFLOWS = ("OS", "WS")


@dataclass(frozen=True)
class SystolicConfig:
    """Shape and clocking of one systolic array."""

    rows: int
    cols: int
    frequency_hz: float = 800e6
    dataflow: str = "OS"
    #: feature vectors streamed per pinned weight tile (WS only).  Small in
    #: hardware because the chip-level accelerator's input buffer is tiny
    #: and weight scheduling is lock-stepped by the channel accelerator
    #: (paper 4.5); this overhead is why the chip level is compute-limited.
    ws_stream_batch: int = 8
    #: maximum reduction fold across idle rows (the drain network supports
    #: a bounded partial-sum reduction per column)
    max_fold: int = 4
    #: MACs one PE completes per cycle (1 for fp32; 2/4 for the fp16/int8
    #: extension of repro.nn.quantization)
    ops_per_pe: int = 1

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError(f"invalid array shape {self.rows}x{self.cols}")
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if self.dataflow not in VALID_DATAFLOWS:
            raise ValueError(f"dataflow must be one of {VALID_DATAFLOWS}")
        if self.ws_stream_batch <= 0:
            raise ValueError("ws_stream_batch must be positive")
        if self.ops_per_pe not in (1, 2, 4):
            raise ValueError("ops_per_pe must be 1, 2 or 4")

    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    @property
    def cycle_seconds(self) -> float:
        return 1.0 / self.frequency_hz

    def seconds(self, cycles: float) -> float:
        """Convert a cycle count to seconds at this clock."""
        return cycles / self.frequency_hz


@dataclass
class AccessCounts:
    """Word-level traffic counts for the energy model (fp32 words)."""

    sram_reads: float = 0.0
    sram_writes: float = 0.0
    weight_words_streamed: float = 0.0  # from next memory level (L2/DRAM)

    def __add__(self, other: "AccessCounts") -> "AccessCounts":
        return AccessCounts(
            self.sram_reads + other.sram_reads,
            self.sram_writes + other.sram_writes,
            self.weight_words_streamed + other.weight_words_streamed,
        )

    def scaled(self, factor: float) -> "AccessCounts":
        """These counts multiplied by a scalar factor."""
        return AccessCounts(
            self.sram_reads * factor,
            self.sram_writes * factor,
            self.weight_words_streamed * factor,
        )


@dataclass
class LayerProfile:
    """Cycle/traffic profile of one layer execution on one array."""

    name: str
    kind: str  # "gemm" | "elementwise"
    cycles: float
    macs: float
    batch: int  # feature vectors amortized over these cycles
    accesses: AccessCounts = field(default_factory=AccessCounts)

    @property
    def cycles_per_feature(self) -> float:
        return self.cycles / max(1, self.batch)

    def utilization(self, num_pes: int) -> float:
        """Achieved MACs per PE-cycle over this layer's execution."""
        if self.cycles <= 0:
            return 0.0
        return min(1.0, self.macs / (self.cycles * num_pes))


class SystolicArray:
    """Cycle/traffic estimator for one array configuration."""

    def __init__(self, config: SystolicConfig):
        self.config = config

    # ------------------------------------------------------------------
    # GEMM kernels
    # ------------------------------------------------------------------
    def gemm_cycles(self, m: int, n: int, k: int) -> float:
        """Cycles for an ``m x n`` output GEMM with reduction ``k``."""
        if min(m, n, k) <= 0:
            raise ValueError(f"invalid GEMM dims m={m} n={n} k={k}")
        if self.config.dataflow == "OS":
            return self._os_gemm_cycles(m, n, k)
        return self._ws_gemm_cycles(m, n, k)

    def _os_gemm_cycles(self, m: int, n: int, k: int) -> float:
        r, c = self.config.rows, self.config.cols
        tiles_m = math.ceil(m / r)
        tiles_n = math.ceil(n / c)
        # When the output has fewer rows than the array (the common case
        # here: the SCN processes ONE feature vector at a time, so FC
        # layers have m = 1), idle rows fold the reduction dimension —
        # each column's output is accumulated by groups of rows working
        # on disjoint slices of K, merged by the drain network.  The fold
        # is bounded (max_fold) by the per-column partial-sum reduction
        # the drain network supports; this is why Fig. 6's FC curve
        # saturates instead of scaling with the full PE count.
        rows_used = min(m, r)
        max_fold = 1
        if tiles_m == 1:
            max_fold = min(self.config.max_fold, max(1, r // rows_used))

        def per_tile(fold: int) -> float:
            k_eff = math.ceil(k / (fold * self.config.ops_per_pe))
            # Skew fill/drain spans the occupied extent of the array.
            fill = min(rows_used * fold, r) + min(n, c) - 2
            return k_eff + fill + 1

        # Folding trades a longer fill skew for a shorter reduction, so
        # it only pays when K is large; taking the cheapest allowed fold
        # keeps the estimate monotone in every GEMM dimension (min over
        # a shrinking family of non-decreasing functions).
        best = min(per_tile(fold) for fold in range(1, max_fold + 1))
        return tiles_m * tiles_n * best

    def _ws_gemm_cycles(self, m: int, n: int, k: int) -> float:
        r, c = self.config.rows, self.config.cols
        b = min(m, self.config.ws_stream_batch)
        tiles_k = math.ceil(k / r)
        tiles_n = math.ceil(n / c)
        passes = math.ceil(m / b)
        # Per pinned tile per pass: r cycles to load weights, b input rows
        # streamed (narrow precisions stream ops_per_pe elements/cycle),
        # c-1 drain for the last row's partial sums.
        stream = math.ceil(b / self.config.ops_per_pe)
        per_tile_pass = min(k, r) + stream + min(n, c) - 1
        return tiles_k * tiles_n * passes * per_tile_pass

    def elementwise_cycles(self, size: int) -> float:
        """Element-wise op cycles with the per-row input-line extension."""
        if size <= 0:
            raise ValueError(f"invalid elementwise size {size}")
        lanes = self.config.rows * self.config.ops_per_pe
        return math.ceil(size / lanes) + 2  # +2 pipeline in/out

    # ------------------------------------------------------------------
    # traffic counts
    # ------------------------------------------------------------------
    def gemm_accesses(self, m: int, n: int, k: int) -> AccessCounts:
        """Scratchpad word traffic for one GEMM (reuse per dataflow)."""
        r, c = self.config.rows, self.config.cols
        if self.config.dataflow == "OS":
            # Inputs re-read once per N-tile strip; weights once per M-tile.
            input_reads = m * k * math.ceil(n / c)
            weight_reads = k * n * math.ceil(m / r)
            output_writes = m * n
            return AccessCounts(
                sram_reads=input_reads + weight_reads,
                sram_writes=output_writes,
            )
        b = min(m, self.config.ws_stream_batch)
        input_reads = m * k * math.ceil(n / c)
        weight_reads = k * n * math.ceil(m / b)  # reloaded per stream pass
        # Partial sums spill once per K-tile beyond the first.
        output_writes = m * n * math.ceil(k / r)
        return AccessCounts(
            sram_reads=input_reads + weight_reads,
            sram_writes=output_writes,
        )

    def elementwise_accesses(self, size: int) -> AccessCounts:
        """Scratchpad word traffic of one element-wise op."""
        return AccessCounts(sram_reads=2 * size, sram_writes=size)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def peak_macs_per_second(self) -> float:
        """Ideal MAC throughput of the full array."""
        return self.config.num_pes * self.config.frequency_hz


def best_aspect_ratio(
    num_pes: int,
    m: int,
    n: int,
    k: int,
    dataflow: str = "OS",
) -> tuple[SystolicConfig, float]:
    """Search all ``R x C = num_pes`` factorizations for the fastest GEMM.

    Used by the design-space exploration of paper Fig. 6 ("at each point,
    the aspect ratio with the fastest performance is considered").
    """
    if num_pes <= 0:
        raise ValueError("num_pes must be positive")
    best: Optional[tuple[SystolicConfig, float]] = None
    for rows in range(1, num_pes + 1):
        if num_pes % rows:
            continue
        cols = num_pes // rows
        cfg = SystolicConfig(rows=rows, cols=cols, dataflow=dataflow)
        cycles = SystolicArray(cfg).gemm_cycles(m, n, k)
        if best is None or cycles < best[1]:
            best = (cfg, cycles)
    assert best is not None
    return best
