"""Graph-to-array mapping.

:class:`GraphMapper` lowers an SCN/QCN :class:`~repro.nn.graph.Graph` onto
one systolic array + scratchpad hierarchy and produces a
:class:`GraphProfile`: the steady-state per-feature execution time, the
access counts the energy model needs, and the one-time per-query setup
cost (loading resident weights).

Mapping rules (paper §4.3/§4.5):

* **Dense** layers batch `dfv_batch` database feature vectors along the
  GEMM ``M`` dimension — the SCN compares one query against many DFVs, so
  independent DFVs fill the array's rows and amortize weight streaming.
* **Conv2D** layers map output pixels to ``M`` per feature (spatial reuse
  exists within one feature map, so DFVs are not batched).
* **Element-wise / Dot** layers use the per-row input-line extension at
  ``rows`` elements per cycle.
* Layers whose weights do not fit the L1 scratchpad stream them from the
  next level once per DFV batch; streaming overlaps compute, so each
  layer costs ``max(compute, weight_stream)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.nn.graph import Graph, LayerStats
from repro.systolic.array import AccessCounts, LayerProfile, SystolicArray
from repro.systolic.scratchpad import ResidencyPlan, ScratchpadHierarchy

_GEMM_OPS = ("Dense", "Conv2D")
_EW_OPS = ("Elementwise", "Dot")
_FREE_OPS = ("Activation", "Concat", "Flatten", "ScoreHead", "Input")


@dataclass
class MappedLayer:
    """One layer's steady-state costs on the target accelerator."""

    profile: LayerProfile
    residency: Optional[ResidencyPlan]
    compute_seconds_per_feature: float
    stream_seconds_per_feature: float
    stream_level_name: str = ""

    @property
    def seconds_per_feature(self) -> float:
        """Streaming overlaps compute; the layer runs at the slower rate."""
        return max(self.compute_seconds_per_feature, self.stream_seconds_per_feature)

    @property
    def bound(self) -> str:
        return (
            "weight-stream"
            if self.stream_seconds_per_feature > self.compute_seconds_per_feature
            else "compute"
        )


@dataclass
class GraphProfile:
    """Whole-graph steady-state profile for one accelerator."""

    graph_name: str
    layers: List[MappedLayer] = field(default_factory=list)
    dfv_batch: int = 1
    query_setup_seconds: float = 0.0

    @property
    def seconds_per_feature(self) -> float:
        return sum(layer.seconds_per_feature for layer in self.layers)

    @property
    def compute_seconds_per_feature(self) -> float:
        return sum(layer.compute_seconds_per_feature for layer in self.layers)

    @property
    def cycles_per_feature(self) -> float:
        return sum(layer.profile.cycles_per_feature for layer in self.layers)

    @property
    def macs_per_feature(self) -> float:
        return sum(
            layer.profile.macs / max(1, layer.profile.batch) for layer in self.layers
        )

    @property
    def accesses_per_feature(self) -> AccessCounts:
        total = AccessCounts()
        for layer in self.layers:
            total = total + layer.profile.accesses.scaled(
                1.0 / max(1, layer.profile.batch)
            )
        return total

    @property
    def dram_weight_words_per_feature(self) -> float:
        return sum(
            layer.profile.accesses.weight_words_streamed / max(1, layer.profile.batch)
            for layer in self.layers
            if layer.stream_level_name == "dram"
        )

    @property
    def l2_weight_words_per_feature(self) -> float:
        return sum(
            layer.profile.accesses.weight_words_streamed / max(1, layer.profile.batch)
            for layer in self.layers
            if layer.stream_level_name not in ("", "dram")
        )

    @property
    def bound(self) -> str:
        """Which side dominates the whole graph, compute or weight stream."""
        stream = sum(layer.stream_seconds_per_feature for layer in self.layers)
        compute = self.compute_seconds_per_feature
        return "weight-stream" if stream > compute else "compute"

    def utilization(self, num_pes: int, frequency_hz: float) -> float:
        """Achieved MACs per PE-cycle across the whole graph."""
        seconds = self.seconds_per_feature
        if seconds <= 0:
            return 0.0
        return min(1.0, self.macs_per_feature / (seconds * frequency_hz * num_pes))


class GraphMapper:
    """Maps graphs onto one (array, scratchpad hierarchy) pair."""

    def __init__(
        self,
        array: SystolicArray,
        scratchpads: ScratchpadHierarchy,
        dfv_batch: Optional[int] = None,
        stream_window: int = 1,
    ):
        if stream_window <= 0:
            raise ValueError("stream_window must be positive")
        self.array = array
        self.scratchpads = scratchpads
        #: feature vectors buffered in the activation reserve while a
        #: non-resident weight stream is in flight; the stream amortizes
        #: over this window
        self.stream_window = int(stream_window)
        cfg = array.config
        if dfv_batch is None:
            # OS accelerators execute the SCN with ONE input feature
            # vector at a time (paper §4.5) — idle rows fold the reduction
            # instead of batching DFVs.  WS accelerators stream a small
            # buffered batch of features past each pinned weight tile.
            dfv_batch = 1 if cfg.dataflow == "OS" else cfg.ws_stream_batch
        if dfv_batch <= 0:
            raise ValueError("dfv_batch must be positive")
        self.dfv_batch = int(dfv_batch)

    def map_graph(self, graph: Graph) -> GraphProfile:
        """Lower a graph onto the array; returns its GraphProfile."""
        stats = graph.layer_stats()
        weighted = [(s.name, s.weight_bytes) for s in stats if s.weight_params > 0]
        plans = {p.layer_name: p for p in self.scratchpads.plan_weights(weighted)}

        profile = GraphProfile(graph_name=graph.name, dfv_batch=self.dfv_batch)
        resident_bytes = 0
        for s in stats:
            if s.op_name in _FREE_OPS and s.weight_params == 0:
                continue
            mapped = self._map_layer(s, plans.get(s.name))
            if mapped is not None:
                profile.layers.append(mapped)
            plan = plans.get(s.name)
            if plan is not None and plan.resident:
                resident_bytes += plan.weight_bytes
        profile.query_setup_seconds = self._setup_seconds(resident_bytes)
        return profile

    # ------------------------------------------------------------------
    def _map_layer(
        self, s: LayerStats, plan: Optional[ResidencyPlan]
    ) -> Optional[MappedLayer]:
        cfg = self.array.config
        if s.op_name == "Dense":
            m, n, k = self.dfv_batch, s.output_shape[0], int(_prod(s.input_shapes[0]))
            batch = self.dfv_batch
            cycles = self.array.gemm_cycles(m, n, k)
            accesses = self.array.gemm_accesses(m, n, k)
            kind = "gemm"
            macs = float(s.macs * batch)
        elif s.op_name == "Conv2D":
            out_c, out_h, out_w = s.output_shape
            in_c = s.input_shapes[0][0]
            k_dim = s.weight_params // out_c if s.weight_params else in_c
            # recover C*kh*kw exactly from macs to avoid bias miscounting
            k_dim = max(1, round(s.macs / (out_h * out_w * out_c)))
            m, n, k = out_h * out_w, out_c, k_dim
            batch = 1
            cycles = self.array.gemm_cycles(m, n, k)
            accesses = self.array.gemm_accesses(m, n, k)
            kind = "gemm"
            macs = float(s.macs)
        elif s.op_name in _EW_OPS:
            size = int(_prod(s.input_shapes[0]))
            batch = 1
            cycles = self.array.elementwise_cycles(size)
            accesses = self.array.elementwise_accesses(size)
            kind = "elementwise"
            macs = float(size)
        else:
            return None

        stream_seconds = 0.0
        stream_level = ""
        if plan is not None and not plan.resident:
            # Non-resident weights stream once per buffered feature window.
            window = batch * self.stream_window
            stream_seconds_per_batch = plan.weight_bytes / plan.stream_bandwidth
            stream_seconds = stream_seconds_per_batch / window
            stream_level = plan.stream_level.name if plan.stream_level else "dram"
            accesses = accesses + AccessCounts(
                weight_words_streamed=plan.weight_bytes / 4.0 / self.stream_window
            )

        profile = LayerProfile(
            name=s.name, kind=kind, cycles=cycles, macs=macs, batch=batch,
            accesses=accesses,
        )
        return MappedLayer(
            profile=profile,
            residency=plan,
            compute_seconds_per_feature=cfg.seconds(cycles) / batch,
            stream_seconds_per_feature=stream_seconds,
            stream_level_name=stream_level,
        )

    def _setup_seconds(self, resident_bytes: int) -> float:
        """One-time per-query load of resident weights into L1."""
        if resident_bytes == 0:
            return 0.0
        hier = self.scratchpads
        level = hier.l2 or hier.dram
        if level is None:
            return 0.0
        return resident_bytes / level.bandwidth_per_sharer


def _prod(shape) -> int:
    out = 1
    for s in shape:
        out *= int(s)
    return out
