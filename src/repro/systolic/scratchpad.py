"""Scratchpad hierarchy model.

Each DeepStore accelerator owns a private SRAM scratchpad (L1); the
channel-level accelerators additionally use the SSD-level 8 MB scratchpad
as a *shared second level* so model weights are fetched from DRAM once and
re-used 32x across channels (paper §4.5).  Chip-level accelerators receive
weights over the flash channel bus, scheduled by their channel accelerator.

The model answers two questions per layer:

* **residency** — do this layer's weights fit in L1 (after reserving space
  for feature/activation buffers)?  Resident weights are loaded once per
  query; non-resident weights stream once per feature batch.
* **streaming bandwidth** — how fast can non-resident weights arrive?  The
  next level's bandwidth divided by the number of sharers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class ScratchpadLevel:
    """One level of on-/off-accelerator buffering."""

    name: str
    size_bytes: int
    bandwidth_bytes_per_s: float
    sharers: int = 1  # accelerators contending for this level

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.bandwidth_bytes_per_s <= 0 or self.sharers <= 0:
            raise ValueError(f"invalid scratchpad level {self}")

    @property
    def bandwidth_per_sharer(self) -> float:
        return self.bandwidth_bytes_per_s / self.sharers


@dataclass
class ResidencyPlan:
    """Weight placement decision for one layer."""

    layer_name: str
    weight_bytes: int
    resident: bool
    stream_level: Optional[ScratchpadLevel]  # None when resident
    stream_bandwidth: float  # bytes/s available for streaming (0 if resident)


class ScratchpadHierarchy:
    """L1 (+ optional shared L2 + backing DRAM) for one accelerator.

    Weight capacity is the union of L1 (minus an activation reserve) and
    the shared L2 when present: the channel-level design keeps one copy of
    the model in the SSD-level 8 MB scratchpad, re-used by all 32 channel
    accelerators (paper §4.5).  Weights that exceed that capacity stream
    from DRAM once per feature — broadcast in lockstep to every sharer, so
    each accelerator sees the full DRAM bandwidth.
    """

    #: fraction of L1 reserved for feature vectors, activations and the
    #: FLASH_DFV staging (the rest holds weights) ...
    ACTIVATION_RESERVE = 0.25
    #: ... capped at the FLASH_DFV queue footprint — large scratchpads
    #: (the SSD level's 8 MB) don't need a proportionally larger reserve
    ACTIVATION_RESERVE_CAP_BYTES = 128 * 1024

    def __init__(
        self,
        l1: ScratchpadLevel,
        l2: Optional[ScratchpadLevel] = None,
        dram: Optional[ScratchpadLevel] = None,
    ):
        self.l1 = l1
        self.l2 = l2
        self.dram = dram

    @property
    def activation_reserve_bytes(self) -> int:
        return min(
            int(self.l1.size_bytes * self.ACTIVATION_RESERVE),
            self.ACTIVATION_RESERVE_CAP_BYTES,
        )

    @property
    def l1_weight_capacity_bytes(self) -> int:
        return self.l1.size_bytes - self.activation_reserve_bytes

    @property
    def weight_capacity_bytes(self) -> int:
        """Total resident weight capacity (L1 reserve + shared L2)."""
        capacity = self.l1_weight_capacity_bytes
        if self.l2 is not None:
            capacity += self.l2.size_bytes
        return capacity

    def plan_weights(self, layers: List[tuple[str, int]]) -> List[ResidencyPlan]:
        """Per-layer residency: a layer is resident iff it fits capacity.

        ``layers`` is ``[(name, weight_bytes), ...]`` in execution order.
        Residency is decided per layer because the shared L2 double-
        buffers one layer's weights at a time as execution proceeds
        through the network — so a 9 MB model whose largest layer is
        8 MB cycles through an 8 MB L2 at negligible cost, while a single
        10 MB layer (ReId's FC) cannot be staged and must stream from
        DRAM on every use, exactly the distinction the paper draws
        between ESTP and ReId.
        """
        capacity = self.weight_capacity_bytes
        plans: dict[str, ResidencyPlan] = {}
        for name, nbytes in layers:
            if nbytes <= capacity:
                plans[name] = ResidencyPlan(name, nbytes, True, None, 0.0)
            else:
                level = self._stream_level(nbytes)
                plans[name] = ResidencyPlan(
                    name, nbytes, False, level, level.bandwidth_per_sharer
                )
        return [plans[name] for name, _ in layers]

    def _stream_level(self, nbytes: int) -> ScratchpadLevel:
        """Where non-resident weights stream from (DRAM when available)."""
        if self.dram is not None:
            return self.dram
        if self.l2 is not None:
            return self.l2
        raise ValueError(
            f"weights of {nbytes} bytes exceed L1 and no backing level exists"
        )
