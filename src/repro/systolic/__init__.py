"""Systolic-array cycle and access-count model (SCALE-Sim substitute).

The paper models its in-storage accelerators with a modified SCALE-Sim: a
rectangular systolic array of processing engines with output-stationary
(OS) or weight-stationary (WS) dataflow, extended with per-row input lines
so element-wise operations run at ``rows`` elements/cycle (paper §4.3), a
banked scratchpad hierarchy, and a top-K sorter.

This package provides the analytic equivalents:

* :class:`SystolicArray` — per-layer cycle counts (tile fill/stream/drain
  accounting) and SRAM/DRAM access counts for the energy model;
* :class:`ScratchpadHierarchy` — weight-residency decisions and streaming
  bandwidth limits (channel-level accelerators use the SSD-level 8 MB
  scratchpad as a shared second level, paper §4.5);
* :class:`GraphMapper` — maps a whole SCN graph to an array and returns
  the per-feature execution profile the DeepStore system model consumes.
"""

from repro.systolic.array import LayerProfile, SystolicArray, SystolicConfig
from repro.systolic.mapper import GraphMapper, GraphProfile
from repro.systolic.scratchpad import ScratchpadHierarchy, ScratchpadLevel

__all__ = [
    "SystolicArray",
    "SystolicConfig",
    "LayerProfile",
    "ScratchpadHierarchy",
    "ScratchpadLevel",
    "GraphMapper",
    "GraphProfile",
]
