"""Linear event-count energy model.

:class:`EnergyModel` converts a per-feature execution profile (MACs,
scratchpad/L2/DRAM word traffic from :mod:`repro.systolic`, flash pages
from the SSD layout) into joules, split into the three categories Fig. 12
reports: **compute**, **memory** (scratchpad + L2 + DRAM + NoC), and
**flash**.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.energy.cacti import CactiLite
from repro.energy.tables import EnergyTables
from repro.systolic.mapper import GraphProfile


@dataclass
class EnergyBreakdown:
    """Joules by category (Fig. 12's compute / memory / flash split)."""

    compute_j: float = 0.0
    sram_j: float = 0.0
    dram_j: float = 0.0
    noc_j: float = 0.0
    flash_j: float = 0.0
    host_j: float = 0.0  # baseline-only: PCIe/DMA energy

    @property
    def memory_j(self) -> float:
        return self.sram_j + self.dram_j + self.noc_j

    @property
    def total_j(self) -> float:
        return self.compute_j + self.memory_j + self.flash_j + self.host_j

    def fractions(self) -> dict:
        """Fractions in Fig. 12's categories (compute/memory/flash)."""
        total = self.total_j
        if total <= 0:
            return {"compute": 0.0, "memory": 0.0, "flash": 0.0}
        return {
            "compute": self.compute_j / total,
            "memory": (self.memory_j + self.host_j) / total,
            "flash": self.flash_j / total,
        }

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            self.compute_j + other.compute_j,
            self.sram_j + other.sram_j,
            self.dram_j + other.dram_j,
            self.noc_j + other.noc_j,
            self.flash_j + other.flash_j,
            self.host_j + other.host_j,
        )

    def scaled(self, factor: float) -> "EnergyBreakdown":
        """This breakdown multiplied by a scalar factor."""
        return EnergyBreakdown(
            self.compute_j * factor,
            self.sram_j * factor,
            self.dram_j * factor,
            self.noc_j * factor,
            self.flash_j * factor,
            self.host_j * factor,
        )


@dataclass
class EnergyModel:
    """Turns execution profiles into :class:`EnergyBreakdown` records."""

    tables: EnergyTables = field(default_factory=EnergyTables)
    cacti: CactiLite = field(default_factory=CactiLite)
    #: scratchpads are highly banked (paper §4.3); accesses pay the
    #: energy of one bank, not the whole macro
    sram_banks: int = 32

    def _sram_access_j(self, size_bytes: int, model: str) -> float:
        bank = max(1024, size_bytes // self.sram_banks)
        return self.cacti.access_energy_j(bank, model)

    def accelerator_feature_energy(
        self,
        profile: GraphProfile,
        scratchpad_bytes: int,
        sram_model: str = "itrs-hp",
        l2_bytes: Optional[int] = None,
        flash_pages_per_feature: float = 0.0,
        area_mm2: float = 1.0,
        precision: str = "fp32",
    ) -> EnergyBreakdown:
        """Energy to process **one** database feature vector.

        ``profile`` supplies MAC and word-traffic counts; ``l2_bytes`` is
        the shared second-level scratchpad (channel level) weights stream
        from; flash pages are the feature's share of page reads.  Narrow
        ``precision`` scales MAC energy and on-/off-chip word traffic
        (the feature database itself stays fp32, so flash is unchanged).
        """
        from repro.nn.quantization import get_precision

        t, c = self.tables, self.cacti
        spec = get_precision(precision)
        accesses = profile.accesses_per_feature
        macs = profile.macs_per_feature

        sram_words = accesses.sram_reads + accesses.sram_writes
        sram_j = sram_words * self._sram_access_j(scratchpad_bytes, sram_model)
        l2_words = profile.l2_weight_words_per_feature
        if l2_words and l2_bytes:
            sram_j += l2_words * self._sram_access_j(l2_bytes, "itrs-hp")
        dram_words = profile.dram_weight_words_per_feature
        dram_j = dram_words * t.dram_j_per_word()

        wire_mm = math.sqrt(max(area_mm2, 0.0))
        noc_words = sram_words + l2_words + dram_words
        return EnergyBreakdown(
            compute_j=macs * spec.mac_j,
            sram_j=sram_j * spec.memory_scale,
            dram_j=dram_j * spec.memory_scale,
            noc_j=t.noc_j(noc_words, wire_mm) * spec.memory_scale,
            flash_j=t.flash_j_for_pages(flash_pages_per_feature),
        )

    def host_transfer_energy(self, nbytes: float) -> EnergyBreakdown:
        """Baseline-only: moving bytes over PCIe into host memory."""
        return EnergyBreakdown(host_j=nbytes * self.tables.pcie_j_per_byte)

    def gpu_energy(self, seconds: float, power_w: float) -> float:
        """Measured-power accounting, like the paper's nvidia-smi method."""
        if seconds < 0 or power_w < 0:
            raise ValueError("negative time or power")
        return seconds * power_w

    # ------------------------------------------------------------------
    def accelerator_power_w(
        self,
        profile: GraphProfile,
        scratchpad_bytes: int,
        seconds_per_feature: float,
        sram_model: str = "itrs-hp",
        l2_bytes: Optional[int] = None,
        flash_pages_per_feature: float = 0.0,
        area_mm2: float = 1.0,
        include_dram: bool = True,
        precision: str = "fp32",
    ) -> float:
        """Average power while streaming features (energy/time).

        ``include_dram=False`` excludes DRAM weight-stream energy — the
        DRAM is a shared device-level resource, so per-accelerator power
        *envelope* checks (the Table-3 budgets) leave it out while
        whole-device energy accounting keeps it.
        """
        if seconds_per_feature <= 0:
            raise ValueError("seconds_per_feature must be positive")
        energy = self.accelerator_feature_energy(
            profile,
            scratchpad_bytes,
            sram_model=sram_model,
            l2_bytes=l2_bytes,
            flash_pages_per_feature=flash_pages_per_feature,
            area_mm2=area_mm2,
            precision=precision,
        )
        joules = energy.total_j
        if not include_dram:
            joules -= energy.dram_j
        return joules / seconds_per_feature
