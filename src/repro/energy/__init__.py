"""Energy and area models.

The paper uses a linear energy model (§6.1): per-event energies for
arithmetic, scratchpad/DRAM/flash accesses and NoC traffic are multiplied
by event counts collected from the simulators, with arithmetic scaled to
32 nm, SRAM energy from CACTI 6.5 (``itrs-hp`` for SSD/channel level,
``itrs-low`` for chip level), DRAM at 20 pJ/bit, and flash access energy
derived from the Intel DC P4500's page-read power.

This package reproduces that methodology: :mod:`tables` holds the per-
event constants, :mod:`cacti` provides a CACTI-like SRAM energy/area fit,
and :mod:`model` turns an execution profile into a joule breakdown.
"""

from repro.energy.cacti import CactiLite
from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.energy.tables import EnergyTables

__all__ = ["EnergyTables", "CactiLite", "EnergyModel", "EnergyBreakdown"]
