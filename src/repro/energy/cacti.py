"""CACTI-like SRAM energy/area estimator.

CACTI models SRAM access energy as dominated by bitline/wordline and
H-tree wire capacitance, which grows roughly with the square root of the
macro's capacity once banking is optimal.  We fit that functional form,

    E_access(S) = e0 + e1 * sqrt(S_bytes)        [pJ per 32-bit access]
    A(S)        = a0 + a1 * S_bytes              [mm^2]

with constants chosen to match published 32 nm CACTI 6.5 outputs at the
design points the paper uses (512 KB and 8 MB macros).  The ``itrs-lop``
transistor model (used for the power-constrained chip-level accelerators,
paper §6.1) trades ~35% lower dynamic energy for lower speed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

_VALID_MODELS = ("itrs-hp", "itrs-lop")


@dataclass(frozen=True)
class CactiLite:
    """Square-root capacity fit of CACTI 6.5 at 32 nm."""

    #: fixed per-access decode/sense energy, pJ per 32-bit word
    e0_pj: float = 1.0
    #: wire-dominated term, pJ per 32-bit word per sqrt(byte)
    e1_pj: float = 0.020
    #: low-power (itrs-lop) dynamic-energy scaling
    lop_energy_scale: float = 0.65
    #: fixed macro overhead, mm^2
    a0_mm2: float = 0.05
    #: area per byte, mm^2 (32 nm 6T SRAM with peripheral overhead)
    a1_mm2_per_byte: float = 2.4e-6

    def access_energy_pj(self, size_bytes: int, model: str = "itrs-hp") -> float:
        """Energy of one 32-bit access to a macro of ``size_bytes``."""
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if model not in _VALID_MODELS:
            raise ValueError(f"model must be one of {_VALID_MODELS}")
        energy = self.e0_pj + self.e1_pj * math.sqrt(size_bytes)
        if model == "itrs-lop":
            energy *= self.lop_energy_scale
        return energy

    def access_energy_j(self, size_bytes: int, model: str = "itrs-hp") -> float:
        """Access energy in joules (see access_energy_pj)."""
        return self.access_energy_pj(size_bytes, model) * 1e-12

    def area_mm2(self, size_bytes: int) -> float:
        """Macro area in mm^2."""
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        return self.a0_mm2 + self.a1_mm2_per_byte * size_bytes
