"""Per-event energy constants at 32 nm.

Sources mirror the paper's: arithmetic energies follow Horowitz's ISSCC
survey scaled to 32 nm (the paper scales via [101]), DRAM is the paper's
stated 20 pJ/bit, flash page energy is derived from the Intel DC P4500's
active read power (~12 W at 3.2 GB/s external => ~3.75 J/GB across the
flash path, ~60 uJ per 16 KB page including the NAND array and channel
transfer; we attribute 25 uJ to the in-SSD flash access itself and the
rest to the host path, which only the baseline pays), and NoC energy uses
an estimated wire length from the accelerator's area (paper §6.1:
"extrapolate the network-on-chip energy based on the estimated wire
lengths and area from CACTI").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyTables:
    """Energy-per-event constants (joules unless noted)."""

    #: one fp32 multiply-accumulate at 32 nm (mult + add)
    mac_fp32_j: float = 3.1e-12
    #: DRAM access energy (paper: 20 pJ/bit)
    dram_j_per_bit: float = 20e-12
    #: flash access energy per 16 KB page read inside the SSD
    flash_page_j: float = 25e-6
    #: NoC energy per 32-bit word per mm of estimated wire
    noc_j_per_word_mm: float = 0.08e-12
    #: host DMA/PCIe energy per byte (baseline GPU+SSD path only)
    pcie_j_per_byte: float = 6e-12

    def dram_j_per_word(self, word_bits: int = 32) -> float:
        """DRAM access energy for one word of the given width."""
        return self.dram_j_per_bit * word_bits

    def flash_j_for_pages(self, pages: float) -> float:
        """Flash access energy for a (possibly fractional) page count."""
        if pages < 0:
            raise ValueError("negative page count")
        return pages * self.flash_page_j

    def noc_j(self, words: float, wire_mm: float) -> float:
        """NoC transfer energy for words over an estimated wire length."""
        if words < 0 or wire_mm < 0:
            raise ValueError("negative NoC traffic")
        return words * wire_mm * self.noc_j_per_word_mm
