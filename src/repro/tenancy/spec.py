"""Tenant workload classes and the production-day configuration.

The serving layer models one anonymous Poisson stream; "millions of
users" means **tenants** — each with its own popularity skew, SCN app
mix, arrival shape, and deadline expectations, all competing for the
same in-storage accelerator capacity.  This module is the declarative
half of the control plane:

* :class:`TenantSpec` — one tenant's workload class: diurnal arrival
  process (base rate, sinusoid amplitude/phase), Zipf intent skew, an
  app mix over the paper's five SCN applications, a write fraction for
  live ingest, a fair-share ``weight``, and a **deadline class**
  (interactive / standard / batch) that fixes its latency SLO and
  queue policy;
* :class:`BurstSpec` — a flash-crowd window: during
  ``[start_fraction, start_fraction + duration_fraction)`` of the day
  the tenant offers ``multiplier`` times its diurnal rate (the extra
  arrivals are generated from their own seeded stream, so removing a
  burst leaves every other arrival byte-identical — the property the
  noisy-neighbor isolation methodology stands on);
* :class:`TenancyConfig` — the whole scenario: the tenant set, the
  shared sharded backend, the day length, the scripted shard failure,
  ingest-rebalance pricing, and the autoscaler configuration.

Everything validates up front (the established ``ServingConfig``
discipline) so a bad scenario fails at construction, not hours into a
simulated day.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.tenancy.autoscale import AutoscalerConfig

#: recognized deadline classes and their (latency SLO seconds,
#: SLO target, queue policy, queue deadline) presets.  Interactive
#: tenants shed stale queries at twice their SLO (an answer that late
#: is an answer wasted); batch tenants never shed on staleness.
DEADLINE_CLASSES: Dict[str, Dict[str, object]] = {
    "interactive": {
        "latency_slo_s": 2.5,
        "slo_target": 0.99,
        "policy": "deadline",
        "deadline_factor": 2.0,
    },
    "standard": {
        "latency_slo_s": 4.0,
        "slo_target": 0.95,
        "policy": "reject",
        "deadline_factor": None,
    },
    "batch": {
        "latency_slo_s": 30.0,
        "slo_target": 0.9,
        "policy": "reject",
        "deadline_factor": None,
    },
}

#: the apps a tenant mix may reference (mirrors workloads.apps)
KNOWN_APPS = ("reid", "mir", "estp", "tir", "textqa")


@dataclass(frozen=True)
class BurstSpec:
    """One flash-crowd window inside a tenant's day.

    During the window the tenant's offered rate is ``multiplier`` times
    its diurnal rate.  The extra arrivals are generated from a burst-
    local seeded stream, entirely inside the window — so a burst can be
    stripped without perturbing any other arrival (paired-run isolation
    measurements depend on this).
    """

    start_fraction: float
    duration_fraction: float
    multiplier: float = 4.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_fraction < 1.0:
            raise ValueError("start_fraction must be in [0, 1)")
        if self.duration_fraction <= 0:
            raise ValueError("duration_fraction must be positive")
        if self.start_fraction + self.duration_fraction > 1.0:
            raise ValueError("burst window must end within the day")
        if self.multiplier <= 1.0:
            raise ValueError("multiplier must exceed 1.0 (it scales the "
                             "base rate; 1.0 would add nothing)")

    def window_s(self, day_s: float) -> Tuple[float, float]:
        """The burst's [start, end) in simulated seconds."""
        return (
            self.start_fraction * day_s,
            (self.start_fraction + self.duration_fraction) * day_s,
        )


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's workload class and service expectations."""

    name: str
    #: fair-share weight for deficit-round-robin admission
    weight: float = 1.0
    #: mean offered rate at the diurnal midline (queries/second)
    base_qps: float = 0.1
    #: sinusoid swing as a fraction of base rate, in [0, 1)
    amplitude: float = 0.5
    #: fraction of the day by which this tenant's peak is offset
    phase: float = 0.0
    #: SCN app mix: (app, fraction) pairs summing to 1
    apps: Tuple[Tuple[str, float], ...] = (("tir", 1.0),)
    #: Zipf popularity skew over the tenant's query intents
    zipf_alpha: float = 0.8
    n_intents: int = 64
    #: fraction of arrivals that are ingest writes (live mutation)
    write_fraction: float = 0.0
    #: Zipf skew of ingest row keys (drives per-shard ingest skew)
    ingest_key_alpha: float = 0.0
    ingest_key_universe: int = 4096
    #: deadline class: interactive / standard / batch
    deadline_class: str = "standard"
    #: per-tenant admission-queue bound (isolation: one tenant's
    #: backlog can never occupy another tenant's slots)
    queue_bound: int = 64
    bursts: Tuple[BurstSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant needs a nonempty name")
        if self.weight <= 0:
            raise ValueError(f"tenant {self.name!r}: weight must be positive")
        if self.base_qps <= 0:
            raise ValueError(f"tenant {self.name!r}: base_qps must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError(
                f"tenant {self.name!r}: amplitude must be in [0, 1) "
                f"(>= 1 would drive the rate negative)"
            )
        if not 0.0 <= self.phase < 1.0:
            raise ValueError(f"tenant {self.name!r}: phase must be in [0, 1)")
        if not self.apps:
            raise ValueError(f"tenant {self.name!r}: empty app mix")
        total = 0.0
        for app, fraction in self.apps:
            if app not in KNOWN_APPS:
                raise ValueError(
                    f"tenant {self.name!r}: unknown app {app!r}; "
                    f"expected one of {KNOWN_APPS}"
                )
            if fraction <= 0:
                raise ValueError(
                    f"tenant {self.name!r}: app fractions must be positive"
                )
            total += fraction
        if abs(total - 1.0) > 1e-9:
            raise ValueError(
                f"tenant {self.name!r}: app-mix fractions sum to {total}, "
                f"expected 1.0"
            )
        if self.zipf_alpha < 0 or self.ingest_key_alpha < 0:
            raise ValueError(
                f"tenant {self.name!r}: Zipf alphas cannot be negative"
            )
        if self.n_intents <= 0 or self.ingest_key_universe <= 0:
            raise ValueError(
                f"tenant {self.name!r}: intent/key universes must be positive"
            )
        if not 0.0 <= self.write_fraction < 1.0:
            raise ValueError(
                f"tenant {self.name!r}: write_fraction must be in [0, 1)"
            )
        if self.deadline_class not in DEADLINE_CLASSES:
            raise ValueError(
                f"tenant {self.name!r}: unknown deadline class "
                f"{self.deadline_class!r}; expected one of "
                f"{tuple(DEADLINE_CLASSES)}"
            )
        if self.queue_bound <= 0:
            raise ValueError(
                f"tenant {self.name!r}: queue_bound must be positive"
            )

    # ------------------------------------------------------------------
    @property
    def latency_slo_s(self) -> float:
        """The deadline class's latency objective."""
        value = DEADLINE_CLASSES[self.deadline_class]["latency_slo_s"]
        return float(value)  # type: ignore[arg-type]

    @property
    def slo_target(self) -> float:
        """The deadline class's good-fraction target."""
        return float(DEADLINE_CLASSES[self.deadline_class]["slo_target"])  # type: ignore[arg-type]

    @property
    def queue_policy(self) -> str:
        """The deadline class's shedding policy."""
        return str(DEADLINE_CLASSES[self.deadline_class]["policy"])

    @property
    def queue_deadline_s(self) -> Optional[float]:
        """Staleness bound for ``deadline``-policy tenants (else None)."""
        factor = DEADLINE_CLASSES[self.deadline_class]["deadline_factor"]
        if factor is None:
            return None
        return self.latency_slo_s * float(factor)  # type: ignore[arg-type]

    @property
    def slo_name(self) -> str:
        """This tenant's SLO identifier on the monitor."""
        return f"tenant.{self.name}"

    def peak_qps(self) -> float:
        """Worst-case offered rate (diurnal crest times any burst)."""
        crest = self.base_qps * (1.0 + self.amplitude)
        boost = max((b.multiplier for b in self.bursts), default=1.0)
        return crest * boost


@dataclass(frozen=True)
class ShardFailureSpec:
    """A scripted shard-replica outage inside the production day."""

    shard: int = 0
    replica: int = 0
    at_fraction: float = 0.5
    #: None: the replica stays dead for the rest of the day
    heal_fraction: Optional[float] = None

    def __post_init__(self) -> None:
        if self.shard < 0 or self.replica < 0:
            raise ValueError("shard and replica must be non-negative")
        if not 0.0 <= self.at_fraction < 1.0:
            raise ValueError("at_fraction must be in [0, 1)")
        if self.heal_fraction is not None and (
            self.heal_fraction <= self.at_fraction
            or self.heal_fraction > 1.0
        ):
            raise ValueError(
                "heal_fraction must lie in (at_fraction, 1]"
            )


@dataclass(frozen=True)
class TenancyConfig:
    """One multi-tenant production-day scenario."""

    tenants: Tuple[TenantSpec, ...]
    day_s: float = 86_400.0
    seed: int = 0
    # -- the shared backend ---------------------------------------------
    features: int = 8_000_000
    n_shards: int = 4
    n_replicas: int = 2
    max_batch: int = 8
    #: scan backends at the start of the day (the autoscaler moves this
    #: between its min/max bounds)
    initial_backends: int = 1
    #: DRR quantum scale (service credit added per round per unit weight)
    quantum: float = 1.0
    # -- scripted failure -----------------------------------------------
    failure: Optional[ShardFailureSpec] = None
    # -- autoscaling ----------------------------------------------------
    autoscaler: AutoscalerConfig = field(default_factory=AutoscalerConfig)
    # -- ingest routing & rebalance pricing -----------------------------
    skew_threshold: float = 2.0
    min_inserts: int = 64
    #: DES seconds to move one ingested row during a rebalance
    rebalance_row_seconds: float = 1e-4

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("a tenancy scenario needs at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        if self.day_s <= 0:
            raise ValueError("day_s must be positive")
        if self.features <= 0:
            raise ValueError("features must be positive")
        if self.n_shards <= 0 or self.n_replicas <= 0:
            raise ValueError("n_shards and n_replicas must be positive")
        if self.max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if self.initial_backends <= 0:
            raise ValueError("initial_backends must be positive")
        if not (
            self.autoscaler.min_backends
            <= self.initial_backends
            <= self.autoscaler.max_backends
        ):
            raise ValueError(
                "initial_backends must lie within the autoscaler's "
                "[min_backends, max_backends]"
            )
        if self.quantum <= 0:
            raise ValueError("quantum must be positive")
        if self.failure is not None:
            if self.failure.shard >= self.n_shards:
                raise ValueError("failure.shard out of range")
            if self.failure.replica >= self.n_replicas:
                raise ValueError("failure.replica out of range")
            if self.n_replicas < 2:
                raise ValueError(
                    "a shard failure needs n_replicas >= 2 (with one "
                    "replica the shard would have no live copy to serve)"
                )
        if self.skew_threshold <= 1.0:
            raise ValueError("skew_threshold must exceed 1.0")
        if self.min_inserts < 1:
            raise ValueError("min_inserts must be positive")
        if self.rebalance_row_seconds < 0:
            raise ValueError("rebalance_row_seconds cannot be negative")

    # ------------------------------------------------------------------
    def tenant(self, name: str) -> TenantSpec:
        """Look one tenant up by name."""
        for spec in self.tenants:
            if spec.name == name:
                return spec
        raise KeyError(f"no tenant named {name!r}")

    def distinct_apps(self) -> Tuple[str, ...]:
        """Every app referenced by any tenant's mix, in first-seen order."""
        seen = []
        for spec in self.tenants:
            for app, _fraction in spec.apps:
                if app not in seen:
                    seen.append(app)
        return tuple(seen)
