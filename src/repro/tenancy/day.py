"""The "production day": burst + shard failure + live ingest at once.

:func:`run_production_day` is the tenancy subsystem's flagship
scenario, the multi-tenant sibling of the chaos harness's scripted
day.  One 24-hour diurnal trace carries three simultaneous stresses:

* the **flash crowd** — the aggressor tenant's burst window pushes the
  plane past one backend's saturation, driving queueing, shedding, and
  the burn-rate autoscaler;
* the **shard failure** — a scripted replica outage swaps every app's
  cost model to its degraded twin for the outage window (the failover
  tax from :mod:`repro.cluster` pricing every batch);
* **live ingest** — a write-heavy tenant streams skewed row keys
  through the :class:`~repro.cluster.ingest.ShardIngestTracker`,
  whose rebalance plans are priced as backend-occupying maintenance.

The report adds the **noisy-neighbor isolation** measurement: a paired
run with the aggressor tenant surgically removed (byte-identical
arrivals for everyone else — see :mod:`repro.tenancy.trace`), giving
each victim a p99-with over p99-without ratio that is contention and
nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.tenancy.server import DayResult, MultiTenantServer
from repro.tenancy.spec import (
    AutoscalerConfig,
    BurstSpec,
    ShardFailureSpec,
    TenancyConfig,
    TenantSpec,
)
from repro.tenancy.trace import aggressor_of, generate_day, offered_summary


@dataclass
class ProductionDayReport:
    """The full day plus the paired noisy-neighbor isolation runs."""

    config: TenancyConfig
    result: DayResult
    #: the burst-carrying tenant the paired runs remove (None: nobody
    #: bursts, so no isolation measurement was possible)
    aggressor: Optional[str]
    #: the full trace replayed at **fixed capacity** (autoscaler off) —
    #: the "with" side of the isolation pair, so the ratio is not
    #: confounded by the scaler granting victims extra backends only
    #: when the aggressor is around to trip it
    with_aggressor_fixed: Optional[DayResult]
    #: victims' fixed-capacity day with the aggressor absent
    without_aggressor: Optional[DayResult]

    def isolation_ratios(self) -> Dict[str, float]:
        """Per-victim p99-with / p99-without (1.0 = perfect isolation).

        Both sides run at fixed capacity on byte-identical victim
        arrivals, so the ratio is contention and nothing else.  0.0
        stands in when the victim completed nothing in either run.
        """
        if (
            self.without_aggressor is None
            or self.with_aggressor_fixed is None
            or self.aggressor is None
        ):
            return {}
        out: Dict[str, float] = {}
        for name, with_r in self.with_aggressor_fixed.tenants.items():
            if name == self.aggressor:
                continue
            solo = self.without_aggressor.tenants[name]
            if with_r.p99_s > 0 and solo.p99_s > 0:
                out[name] = with_r.p99_s / solo.p99_s
            else:
                out[name] = 0.0
        return out

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready report (stable keys) for the CLI and the gate."""
        return {
            "day": self.result.as_dict(),
            "aggressor": self.aggressor or "",
            "isolation_p99_ratio": {
                name: ratio
                for name, ratio in sorted(self.isolation_ratios().items())
            },
        }


def default_production_config(
    seed: int = 0,
    day_s: float = 86_400.0,
    features: int = 32_000_000,
) -> TenancyConfig:
    """The canonical three-tenant production day.

    Sized so the diurnal mean sits well under one backend's saturation
    while the search tenant's evening flash crowd transiently exceeds
    it — the regime where weighted fairness, shedding policy, and the
    autoscaler all visibly matter.  ``search`` is interactive and the
    aggressor; ``analytics`` runs a mixed app batch workload;
    ``ingestpipe`` streams Zipf-skewed writes that trip the rebalancer.
    """
    return TenancyConfig(
        tenants=(
            TenantSpec(
                name="search",
                weight=3.0,
                base_qps=0.12,
                amplitude=0.6,
                phase=0.0,
                apps=(("tir", 1.0),),
                zipf_alpha=0.9,
                deadline_class="interactive",
                queue_bound=48,
                bursts=(BurstSpec(
                    start_fraction=0.55,
                    duration_fraction=0.0625,
                    multiplier=10.0,
                ),),
            ),
            TenantSpec(
                name="analytics",
                weight=1.0,
                base_qps=0.06,
                amplitude=0.3,
                phase=0.25,
                apps=(("tir", 0.5), ("mir", 0.5)),
                zipf_alpha=0.6,
                deadline_class="batch",
                queue_bound=96,
            ),
            TenantSpec(
                name="ingestpipe",
                weight=1.0,
                base_qps=0.05,
                amplitude=0.2,
                phase=0.5,
                apps=(("tir", 1.0),),
                write_fraction=0.6,
                ingest_key_alpha=1.2,
                deadline_class="standard",
                queue_bound=64,
            ),
        ),
        day_s=day_s,
        seed=seed,
        features=features,
        n_shards=4,
        n_replicas=2,
        max_batch=8,
        initial_backends=1,
        # replica 1 is shard 1's *intended primary* (shard % n_replicas),
        # so the outage actually prices a per-batch detection ladder —
        # killing the standby replica would cost nothing under the
        # cluster model's read-spread rotation
        failure=ShardFailureSpec(
            shard=1, replica=1, at_fraction=0.35, heal_fraction=0.45
        ),
        # burn thresholds: with a 0.99 target the budget is 1%, and
        # routine shared-scan batching alone pushes a few tail queries
        # past the latency SLO — burn ~0.5-1 is the quiescent hum, so
        # the up threshold sits at 3x (the classic fast-burn page) and
        # the down threshold under the hum, or the loop flaps all day
        autoscaler=AutoscalerConfig(
            min_backends=1,
            max_backends=3,
            window_s=day_s / 48.0,
            scale_up_threshold=3.0,
            scale_down_threshold=0.5,
            evaluate_interval_s=day_s / 144.0,
            cooldown_s=day_s / 48.0,
            actuation_s=300.0,
        ),
        skew_threshold=1.6,
        min_inserts=256,
    )


def run_production_day(
    config: Optional[TenancyConfig] = None,
    isolation: bool = True,
) -> ProductionDayReport:
    """Run the production day (and, when possible, its isolation pair).

    ``isolation=False`` skips the aggressor-removed rerun — half the
    wall-clock when only the main scorecard is wanted.
    """
    if config is None:
        config = default_production_config()
    server = MultiTenantServer(config)
    trace = generate_day(config)
    result = server.run(trace)
    aggressor = aggressor_of(config) if isolation else None
    with_fixed: Optional[DayResult] = None
    without: Optional[DayResult] = None
    if aggressor is not None and len(config.tenants) > 1:
        solo_trace = generate_day(config, exclude=(aggressor,))
        if solo_trace:
            with_fixed = server.run(trace, autoscale=False)
            without = server.run(solo_trace, autoscale=False)
        else:
            aggressor = None
    else:
        aggressor = None
    return ProductionDayReport(
        config=config,
        result=result,
        aggressor=aggressor,
        with_aggressor_fixed=with_fixed,
        without_aggressor=without,
    )


__all__ = [
    "ProductionDayReport",
    "default_production_config",
    "offered_summary",
    "run_production_day",
]
