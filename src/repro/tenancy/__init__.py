"""Multi-tenant control plane over the serving and cluster layers.

``repro.tenancy`` turns the single anonymous query stream of
:mod:`repro.serving` into *tenants* — per-tenant workload classes with
their own Zipf skew, SCN app mix, diurnal arrival shape, and deadline
class — competing for shared in-storage accelerator capacity under a
weighted-fair admission scheduler, per-tenant SLO monitoring, and a
burn-rate autoscaler.  The flagship scenario is
:func:`~repro.tenancy.day.run_production_day`: a 24-hour trace with a
flash crowd, a shard failure, and live ingest all at once, scored per
tenant and paired with an aggressor-removed rerun for noisy-neighbor
isolation.  See DESIGN.md's tenancy section for the fairness model and
the isolation-measurement methodology.
"""

from repro.tenancy.admission import TenantQueueSpec, WeightedFairQueue
from repro.tenancy.autoscale import Autoscaler, AutoscalerConfig, ScalingAction
from repro.tenancy.day import (
    ProductionDayReport,
    default_production_config,
    run_production_day,
)
from repro.tenancy.scorecard import build_tenancy_scorecard
from repro.tenancy.server import DayResult, MultiTenantServer, TenantDayResult
from repro.tenancy.spec import (
    DEADLINE_CLASSES,
    BurstSpec,
    ShardFailureSpec,
    TenancyConfig,
    TenantSpec,
)
from repro.tenancy.trace import (
    TenantArrival,
    aggressor_of,
    diurnal_rate,
    generate_day,
    offered_summary,
    tenant_day,
)

__all__ = [
    "DEADLINE_CLASSES",
    "Autoscaler",
    "AutoscalerConfig",
    "BurstSpec",
    "DayResult",
    "MultiTenantServer",
    "ProductionDayReport",
    "ScalingAction",
    "ShardFailureSpec",
    "TenancyConfig",
    "TenantArrival",
    "TenantDayResult",
    "TenantQueueSpec",
    "TenantSpec",
    "WeightedFairQueue",
    "aggressor_of",
    "build_tenancy_scorecard",
    "default_production_config",
    "diurnal_rate",
    "generate_day",
    "offered_summary",
    "run_production_day",
    "tenant_day",
]
