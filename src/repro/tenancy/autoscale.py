"""SLO-burn-driven autoscaling for the multi-tenant serving plane.

The control loop every production service ends up with: watch each
tenant's error-budget **burn rate** (the SRE multiple the
:class:`~repro.obs.slo.SloMonitor` already computes for alerting), and
move scan capacity to match.  The pieces:

* :class:`AutoscalerConfig` — the policy knobs: burn window and the
  up/down thresholds, backend bounds, cooldown between actions, and the
  **actuation latency** — a replica does not serve the instant it is
  requested; spinning one up costs ``actuation_s`` of simulated time,
  which is exactly why burst response shows a dent in p99 even with a
  perfect policy;
* :class:`ScalingAction` — one decision, timestamped at both decision
  and effect time, so the scorecard can show the decision-to-effect
  lag alongside the SLO dent it failed to prevent;
* :class:`Autoscaler` — the pure decision kernel: given the per-tenant
  burn rates at an evaluation boundary, return the desired backend
  count.  It owns no simulator and schedules nothing — the
  :class:`~repro.tenancy.server.MultiTenantServer` drives it at fixed
  boundaries and prices the actuation delay on the DES, keeping the
  kernel trivially unit-testable.

Scale-up is any-tenant-burning (one tenant past the up threshold means
someone's budget is on fire); scale-down is all-quiet (every tenant
under the down threshold), stepping one backend at a time with a
cooldown so the loop cannot flap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class AutoscalerConfig:
    """Policy knobs for the burn-rate autoscaler."""

    #: backend-count bounds the scaler moves within
    min_backends: int = 1
    max_backends: int = 4
    #: trailing window the burn rate is read over
    window_s: float = 1_800.0
    #: scale up when any tenant's burn multiple exceeds this
    scale_up_threshold: float = 2.0
    #: scale down when every tenant's burn multiple is under this
    scale_down_threshold: float = 0.5
    #: how often the loop evaluates, in simulated seconds
    evaluate_interval_s: float = 600.0
    #: minimum gap between two scaling actions
    cooldown_s: float = 1_800.0
    #: decision-to-effect lag: seconds before a new backend serves
    #: (or a drained one stops counting)
    actuation_s: float = 120.0
    #: disable the loop entirely (capacity stays at its initial value)
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.min_backends <= 0:
            raise ValueError("min_backends must be positive")
        if self.max_backends < self.min_backends:
            raise ValueError("max_backends must be >= min_backends")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.scale_up_threshold <= 0:
            raise ValueError("scale_up_threshold must be positive")
        if not 0 <= self.scale_down_threshold < self.scale_up_threshold:
            raise ValueError(
                "scale_down_threshold must be in [0, scale_up_threshold) "
                "— overlapping thresholds would make the loop flap"
            )
        if self.evaluate_interval_s <= 0:
            raise ValueError("evaluate_interval_s must be positive")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s cannot be negative")
        if self.actuation_s < 0:
            raise ValueError("actuation_s cannot be negative")


@dataclass(frozen=True)
class ScalingAction:
    """One autoscaler decision and its (delayed) effect."""

    #: simulated time the decision was made
    at_s: float
    #: ``"scale_up"`` or ``"scale_down"``
    kind: str
    #: backend count before and after the action
    backends_before: int
    backends_after: int
    #: simulated time the new capacity actually serves
    effective_s: float
    #: the tenant whose burn drove the decision (scale-up only)
    trigger_tenant: Optional[str] = None
    #: that tenant's burn multiple at decision time
    trigger_burn: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready record of one scaling action."""
        return {
            "at_s": self.at_s,
            "kind": self.kind,
            "backends_before": self.backends_before,
            "backends_after": self.backends_after,
            "effective_s": self.effective_s,
            "trigger_tenant": self.trigger_tenant or "",
            "trigger_burn": self.trigger_burn,
        }


class Autoscaler:
    """The pure decision kernel: burn rates in, desired capacity out.

    Stateful only in the ways the policy requires (current target,
    last-action time for the cooldown); entirely simulator-free.
    """

    def __init__(self, config: AutoscalerConfig, initial_backends: int):
        if not (
            config.min_backends <= initial_backends <= config.max_backends
        ):
            raise ValueError(
                "initial_backends must lie within "
                "[min_backends, max_backends]"
            )
        self.config = config
        self.target = initial_backends
        self.actions: List[ScalingAction] = []
        self._last_action_s: Optional[float] = None

    # ------------------------------------------------------------------
    def evaluate(
        self, now_s: float, burns: Dict[str, float]
    ) -> Optional[ScalingAction]:
        """One control-loop step: decide on the current burn rates.

        ``burns`` maps tenant name to its burn multiple over the
        config's window.  Returns the action taken (already appended to
        :attr:`actions`) or None.  The caller owns making the action's
        ``effective_s`` real — the kernel just computes and records it.
        """
        config = self.config
        if not config.enabled or not burns:
            return None
        if (
            self._last_action_s is not None
            and now_s - self._last_action_s < config.cooldown_s
        ):
            return None
        hottest = max(burns, key=lambda name: burns[name])
        action: Optional[ScalingAction] = None
        if (
            burns[hottest] > config.scale_up_threshold
            and self.target < config.max_backends
        ):
            action = ScalingAction(
                at_s=now_s,
                kind="scale_up",
                backends_before=self.target,
                backends_after=self.target + 1,
                effective_s=now_s + config.actuation_s,
                trigger_tenant=hottest,
                trigger_burn=burns[hottest],
            )
        elif (
            all(b < config.scale_down_threshold for b in burns.values())
            and self.target > config.min_backends
        ):
            action = ScalingAction(
                at_s=now_s,
                kind="scale_down",
                backends_before=self.target,
                backends_after=self.target - 1,
                effective_s=now_s + config.actuation_s,
            )
        if action is not None:
            self.target = action.backends_after
            self._last_action_s = now_s
            self.actions.append(action)
        return action
