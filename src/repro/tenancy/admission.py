"""Weighted-fair admission: per-tenant queues + deficit round-robin.

The single-tenant :class:`~repro.serving.admission.AdmissionQueue` is
kept exactly as is — one instance **per tenant**, so each tenant gets
its own bound (a backlogged neighbor can never occupy another tenant's
slots) and its own conservation ledger.  What this module adds is the
*scheduler* between them: :class:`WeightedFairQueue` dispatches batches
across the per-tenant queues by **deficit round-robin** (DRR):

* every visit to a backlogged tenant adds ``weight * quantum`` credit
  to its deficit counter;
* a tenant is served when its deficit reaches one query's worth, and is
  charged one unit per query actually dispatched (a big shared-scan
  batch sends the deficit negative — the tenant then sits out rounds
  until its credit recovers, which is precisely how batch-sized service
  stays weight-proportional over time);
* an emptied queue forfeits its deficit (classic DRR: credit never
  accumulates while idle, so a silent tenant cannot hoard a burst's
  worth of priority).

Invariants the property suite pins: per-tenant conservation
(``offered == admitted + rejected`` and ``admitted == popped + evicted
+ expired + depth`` for every tenant independently, bit-exact, under
arbitrary interleavings), no starvation (a backlogged tenant is served
within a bounded number of dispatches), and weight-proportional
service for continuously backlogged tenants (within one quantum plus
one batch).

With exactly one tenant the scheduler degenerates to ``pop_batch`` on
that tenant's queue — the single-tenant serving path, batch for batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.serving.admission import (
    AdmissionCounters,
    AdmissionQueue,
    QueuedQuery,
)


@dataclass(frozen=True)
class TenantQueueSpec:
    """One tenant's admission parameters, as the scheduler sees them."""

    name: str
    weight: float = 1.0
    bound: int = 64
    policy: str = "reject"
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant queue needs a name")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        # bound/policy/deadline combinations are validated by the
        # per-tenant AdmissionQueue itself at construction


class WeightedFairQueue:
    """Per-tenant bounded queues under deficit-round-robin dispatch."""

    def __init__(
        self,
        tenants: List[TenantQueueSpec],
        quantum: float = 1.0,
    ) -> None:
        if not tenants:
            raise ValueError("need at least one tenant queue")
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        self.quantum = quantum
        self._order: List[str] = names
        self._weights: Dict[str, float] = {t.name: t.weight for t in tenants}
        self._queues: Dict[str, AdmissionQueue] = {
            t.name: AdmissionQueue(t.bound, t.policy, t.deadline_s)
            for t in tenants
        }
        self._deficit: Dict[str, float] = {name: 0.0 for name in names}
        self._cursor = 0
        # True while the cursor's tenant has already been granted this
        # visit's credit — it keeps the turn across pop_batch calls
        # until the credit is spent, which is what makes service counts
        # weight-proportional even at one batch per dispatch
        self._charged = False

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    @property
    def depth(self) -> int:
        """Live queued queries across every tenant."""
        return len(self)

    def depth_of(self, tenant: str) -> int:
        """One tenant's live queue depth."""
        return len(self._queues[tenant])

    def counters(self, tenant: str) -> AdmissionCounters:
        """One tenant's conservation ledger (live object)."""
        return self._queues[tenant].counters

    def deficit_of(self, tenant: str) -> float:
        """The tenant's current DRR credit (for tests/diagnostics)."""
        return self._deficit[tenant]

    # ------------------------------------------------------------------
    def offer(self, tenant: str, query: QueuedQuery, now: float) -> bool:
        """Offer one query to its tenant's bounded queue."""
        if tenant not in self._queues:
            raise KeyError(f"unknown tenant {tenant!r}")
        return self._queues[tenant].offer(query, now)

    def take_shed(self) -> List[Tuple[str, QueuedQuery, str]]:
        """Drain ``(tenant, query, reason)`` for every shed since last
        call, in tenant declaration order."""
        out: List[Tuple[str, QueuedQuery, str]] = []
        for name in self._order:
            for query, reason in self._queues[name].take_shed():
                out.append((name, query, reason))
        return out

    # ------------------------------------------------------------------
    def _sweep(self, now: float) -> None:
        """Run deadline expiry on every queue (so ``depth`` is honest
        before the scheduler decides who is backlogged)."""
        for queue in self._queues.values():
            queue._expire(now)

    def pop_batch(
        self, now: float, max_batch: int
    ) -> Tuple[str, List[QueuedQuery]]:
        """Dispatch the next batch under DRR; ``("", [])`` when idle.

        Guaranteed to serve *someone* whenever any queue is nonempty:
        each full round adds ``weight * quantum > 0`` credit to every
        backlogged tenant, so a serveable deficit is always reached —
        the caller never sees a nonempty scheduler refuse to dispatch
        (which would strand the DES with no wake-up event).
        """
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        self._sweep(now)
        if len(self) == 0:
            return "", []
        while True:
            name = self._order[self._cursor]
            queue = self._queues[name]
            if len(queue) == 0:
                # idle tenants forfeit credit: no hoarding while silent
                self._deficit[name] = 0.0
                self._advance()
                continue
            if not self._charged:
                self._deficit[name] += self._weights[name] * self.quantum
                self._charged = True
            if self._deficit[name] < 1.0:
                self._advance()
                continue
            batch = queue.pop_batch(now, max_batch)
            if not batch:
                # everything expired during the pop's deadline sweep
                self._deficit[name] = 0.0
                self._advance()
                if len(self) == 0:
                    return "", []
                continue
            self._deficit[name] -= float(len(batch))
            if len(queue) == 0:
                # emptied: forfeit leftover credit and yield the turn
                self._deficit[name] = 0.0
                self._advance()
            elif self._deficit[name] < 1.0:
                # credit spent: the turn moves on next dispatch
                self._advance()
            return name, batch

    def _advance(self) -> None:
        """Move the cursor to the next tenant (its visit uncharged)."""
        self._cursor = (self._cursor + 1) % len(self._order)
        self._charged = False

    # ------------------------------------------------------------------
    def ledger(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant conservation snapshot (bit-exact integers)."""
        out: Dict[str, Dict[str, int]] = {}
        for name in self._order:
            queue = self._queues[name]
            c = queue.counters
            out[name] = {
                "offered": c.offered,
                "admitted": c.admitted,
                "rejected": c.rejected,
                "evicted": c.evicted,
                "expired": c.expired,
                "popped": c.popped,
                "depth": len(queue),
            }
        return out

    def conserved(self) -> bool:
        """Every tenant's ledger satisfies both conservation identities."""
        return all(
            self._queues[name].counters.conserved(len(self._queues[name]))
            for name in self._order
        )
