"""The multi-tenant discrete-event serving plane.

:class:`MultiTenantServer` plays a :mod:`repro.tenancy.trace` day
against the shared sharded backend: per-tenant bounded queues under
:class:`~repro.tenancy.admission.WeightedFairQueue` dispatch, a
dynamic pool of scan backends the burn-rate
:class:`~repro.tenancy.autoscale.Autoscaler` grows and shrinks (with
actuation latency priced on the DES), a scripted shard-replica failure
that swaps every app's cost model to its degraded twin for the outage
window, and live ingest routed through a
:class:`~repro.cluster.ingest.ShardIngestTracker` whose rebalance
plans are priced as maintenance jobs that occupy a backend.

The batch-service loop is structured exactly like
:class:`~repro.serving.server.QueryServer.run` — pop a head-of-line
compat-prefix batch, hold a backend for the cost model's shared-scan
time, complete on a scheduled event — and the cost models themselves
*are* ``QueryServer``'s (one per SCN app, built through the same
``ServingConfig`` path).  With one tenant, no bursts, no failure, and
the autoscaler off, the plane is the single-tenant server batch for
batch: the parity test pins every aggregate of
:class:`~repro.serving.server.ServingResult` against it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.cluster.ingest import RebalancePlan, ShardIngestTracker
from repro.obs.metrics import percentile
from repro.obs.slo import BurnRateRule, SloMonitor, SloSpec
from repro.serving.admission import QueuedQuery
from repro.serving.arrivals import INGEST_COMPAT
from repro.serving.server import QueryServer, ServingConfig
from repro.sim import Simulator
from repro.tenancy.admission import TenantQueueSpec, WeightedFairQueue
from repro.tenancy.autoscale import Autoscaler, ScalingAction
from repro.tenancy.spec import TenancyConfig, TenantSpec
from repro.tenancy.trace import TenantArrival

#: SLO evaluation boundaries per day (288 = one every 5 min on a 24h day)
SAMPLE_BOUNDARIES_PER_DAY = 288

#: minimum events in a burn window before a tenant's rule may alert or
#: the autoscaler may act on the tenant's burn.  With a 1% error budget
#: a window needs ~100 events before one unlucky tail query stops
#: looking like a 10x burn — below this the signal is noise.
BURN_MIN_EVENTS = 100


@dataclass
class TenantDayResult:
    """One tenant's measured day on the shared plane."""

    tenant: str
    offered: int
    admitted: int
    completed: int
    rejected: int
    evicted: int
    expired: int
    writes_offered: int
    writes_completed: int
    mean_latency_s: float
    p50_s: float
    p99_s: float
    p999_s: float
    max_latency_s: float
    mean_wait_s: float
    #: fraction of completed queries inside the tenant's latency SLO
    slo_attainment: float
    #: completed / offered
    goodput_fraction: float
    #: both conservation identities held bit-exactly all day
    conserved: bool

    @property
    def shed(self) -> int:
        """Offered but never served."""
        return self.rejected + self.evicted + self.expired

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready per-tenant scorecard row (stable keys)."""
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "completed": self.completed,
            "shed": self.shed,
            "writes_offered": self.writes_offered,
            "writes_completed": self.writes_completed,
            "mean_latency_s": self.mean_latency_s,
            "p50_s": self.p50_s,
            "p99_s": self.p99_s,
            "p999_s": self.p999_s,
            "mean_wait_s": self.mean_wait_s,
            "slo_attainment": self.slo_attainment,
            "goodput_fraction": self.goodput_fraction,
            "conserved": int(self.conserved),
        }


@dataclass
class DayResult:
    """The whole plane's measured day."""

    duration_s: float
    tenants: Dict[str, TenantDayResult]
    ledger: Dict[str, Dict[str, int]]
    actions: List[ScalingAction]
    alerts: int
    first_alert_s: float
    peak_backends: int
    final_backends: int
    rebalances: int
    rebalance_rows_moved: int
    mean_batch: float
    utilization: float

    @property
    def conserved(self) -> bool:
        """Every tenant's ledger balanced bit-exactly."""
        return all(t.conserved for t in self.tenants.values())

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready scorecard fragment (stable keys)."""
        return {
            "duration_s": self.duration_s,
            "tenants": {
                name: result.as_dict()
                for name, result in sorted(self.tenants.items())
            },
            "scale_ups": sum(
                1 for a in self.actions if a.kind == "scale_up"
            ),
            "scale_downs": sum(
                1 for a in self.actions if a.kind == "scale_down"
            ),
            "alerts": self.alerts,
            "first_alert_s": self.first_alert_s,
            "peak_backends": self.peak_backends,
            "final_backends": self.final_backends,
            "rebalances": self.rebalances,
            "rebalance_rows_moved": self.rebalance_rows_moved,
            "mean_batch": self.mean_batch,
            "utilization": self.utilization,
            "conserved": int(self.conserved),
        }


class MultiTenantServer:
    """Weighted-fair, autoscaled serving of a multi-tenant day trace."""

    def __init__(self, config: TenancyConfig) -> None:
        self.config = config
        #: per-app healthy cost models, borrowed from QueryServer so the
        #: tenancy plane prices batches through the identical path
        self._healthy: Dict[str, QueryServer] = {}
        self._degraded: Dict[str, QueryServer] = {}
        for app in config.distinct_apps():
            # placement "range" prices scatter-gather over equal shard
            # sizes in O(1); "hash" would materialize a per-row owner
            # table (O(features) argsort — minutes at 64M rows) to reach
            # the same near-even sizes.  Ingest routing still hashes,
            # via the ShardIngestTracker.
            base = dict(
                app=app,
                features=config.features,
                max_batch=config.max_batch,
                n_shards=config.n_shards,
                n_replicas=config.n_replicas,
                shard_placement="range",
            )
            self._healthy[app] = QueryServer(ServingConfig(**base))
            if config.failure is not None:
                self._degraded[app] = QueryServer(ServingConfig(
                    **base,
                    fail_shards=(
                        (config.failure.shard, config.failure.replica),
                    ),
                ))

    # ------------------------------------------------------------------
    def saturation_qps(self, backends: int = 1) -> float:
        """Peak sustainable read rate of ``backends`` healthy scan units
        (first-declared tenant's first app — the capacity-planning
        anchor, not a mixed-workload promise)."""
        app = self.config.tenants[0].apps[0][0]
        return self._healthy[app].cost.saturation_qps(backends)

    def build_monitor(self) -> SloMonitor:
        """A fresh per-tenant SLO monitor for one day run."""
        config = self.config
        specs = [
            SloSpec(
                spec.slo_name,
                target=spec.slo_target,
                latency_threshold_s=spec.latency_slo_s,
            )
            for spec in config.tenants
        ]
        rules = [
            BurnRateRule(
                f"{spec.name}-fast-burn",
                spec.slo_name,
                window_s=config.autoscaler.window_s,
                burn_threshold=config.autoscaler.scale_up_threshold,
                min_events=BURN_MIN_EVENTS,
            )
            for spec in config.tenants
        ]
        return SloMonitor(
            specs, rules,
            sample_interval_s=config.day_s / SAMPLE_BOUNDARIES_PER_DAY,
        )

    # ------------------------------------------------------------------
    def run(
        self, arrivals: List[TenantArrival], autoscale: bool = True
    ) -> DayResult:
        """Play one day trace to completion and measure every tenant.

        ``autoscale=False`` pins capacity at ``initial_backends`` for
        the whole day regardless of the config's autoscaler — the
        paired noisy-neighbor runs use this so the isolation ratio
        measures contention, not the scaler reacting to the aggressor.
        """
        if not arrivals:
            raise ValueError("empty day trace")
        config = self.config
        specs: Dict[str, TenantSpec] = {
            t.name: t for t in config.tenants
        }
        for a in arrivals:
            if a.tenant not in specs:
                raise ValueError(f"arrival for unknown tenant {a.tenant!r}")
        sim = Simulator()
        wfq = WeightedFairQueue(
            [
                TenantQueueSpec(
                    name=t.name,
                    weight=t.weight,
                    bound=t.queue_bound,
                    policy=t.queue_policy,
                    deadline_s=t.queue_deadline_s,
                )
                for t in config.tenants
            ],
            quantum=config.quantum,
        )
        monitor = self.build_monitor()
        scaler = Autoscaler(config.autoscaler, config.initial_backends)
        tracker = ShardIngestTracker(
            config.n_shards,
            skew_threshold=config.skew_threshold,
            min_inserts=config.min_inserts,
            seed=config.seed,
        )
        rows_per_op = ServingConfig().ingest_rows_per_op

        degraded_active = config.failure is not None
        fail_window: Optional[Tuple[float, Optional[float]]] = None
        if config.failure is not None:
            heal = config.failure.heal_fraction
            fail_window = (
                config.failure.at_fraction * config.day_s,
                heal * config.day_s if heal is not None else None,
            )

        class _State:
            degraded = False
            n_backends = config.initial_backends
            peak_backends = config.initial_backends
            pending_retire = 0
            next_backend = config.initial_backends
            busy_s = 0.0
            capacity_integral = 0.0
            capacity_since = 0.0
            last_completion = 0.0
            rebalance_rows = 0

        state = _State()
        idle: List[int] = list(range(config.initial_backends))
        maintenance: Deque[float] = deque()
        plans: List[RebalancePlan] = []
        batch_sizes: List[int] = []
        latencies: Dict[str, List[float]] = {
            t.name: [] for t in config.tenants
        }
        waits: Dict[str, List[float]] = {t.name: [] for t in config.tenants}
        writes_offered: Dict[str, int] = {t.name: 0 for t in config.tenants}
        writes_completed: Dict[str, int] = {
            t.name: 0 for t in config.tenants
        }
        offered: Dict[str, int] = {t.name: 0 for t in config.tenants}

        def note_capacity_change(delta: int) -> None:
            state.capacity_integral += (
                (sim.now - state.capacity_since) * state.n_backends
            )
            state.capacity_since = sim.now
            state.n_backends += delta
            state.peak_backends = max(state.peak_backends, state.n_backends)

        def note_shed() -> None:
            for tenant, query, _reason in wfq.take_shed():
                if query.compat != INGEST_COMPAT:
                    monitor.record(
                        specs[tenant].slo_name, sim.now, good=False
                    )

        def service_seconds(tenant: str, batch: List[QueuedQuery]) -> float:
            if batch[0].compat == INGEST_COMPAT:
                app = specs[tenant].apps[0][0]
                return self._healthy[app].ingest_op_seconds * len(batch)
            models = self._degraded if state.degraded else self._healthy
            return models[batch[0].compat].cost.service_seconds(len(batch))

        def complete(tenant: str, query: QueuedQuery, now: float) -> None:
            latency = now - query.arrival_s
            state.last_completion = max(state.last_completion, now)
            if query.compat == INGEST_COMPAT:
                writes_completed[tenant] += 1
                return
            latencies[tenant].append(latency)
            monitor.record(specs[tenant].slo_name, now, latency_s=latency)

        def dispatch() -> None:
            while idle and (maintenance or wfq.depth > 0):
                server = idle.pop(0)
                if maintenance:
                    # a rebalance holds a backend for the priced move
                    service = maintenance.popleft()
                    tenant_batch: Tuple[str, List[QueuedQuery]] = ("", [])
                else:
                    tenant_batch = wfq.pop_batch(sim.now, config.max_batch)
                    note_shed()
                    if not tenant_batch[1]:
                        idle.append(server)
                        idle.sort()
                        return
                    service = service_seconds(*tenant_batch)
                    batch_sizes.append(len(tenant_batch[1]))
                    start = sim.now
                    for query in tenant_batch[1]:
                        waits[tenant_batch[0]].append(
                            start - query.arrival_s
                        )
                state.busy_s += service

                def finish(
                    server: int = server,
                    tenant_batch: Tuple[str, List[QueuedQuery]] = tenant_batch,
                ) -> None:
                    tenant, batch = tenant_batch
                    for query in batch:
                        complete(tenant, query, sim.now)
                    if state.pending_retire > 0:
                        state.pending_retire -= 1
                        note_capacity_change(-1)
                    else:
                        idle.append(server)
                        idle.sort()
                    dispatch()

                sim.schedule_after(service, finish, label="batch-done")

        def on_plan(plan: RebalancePlan) -> None:
            plans.append(plan)
            state.rebalance_rows += plan.rows_moved
            maintenance.append(
                plan.rows_moved * config.rebalance_row_seconds
            )
            dispatch()

        tracker.on_rebalance = on_plan

        def arrive(a: TenantArrival, qid: int) -> None:
            offered[a.tenant] += 1
            is_write = a.kind == "ingest"
            if is_write:
                writes_offered[a.tenant] += 1
            query = QueuedQuery(
                qid=qid,
                arrival_s=sim.now,
                priority=1 if is_write else 0,
                compat=INGEST_COMPAT if is_write else a.app,
                intent=a.intent,
            )
            admitted = wfq.offer(a.tenant, query, sim.now)
            if admitted and is_write:
                tracker.record_routed(a.key, rows=rows_per_op)
            note_shed()
            if admitted:
                dispatch()

        def fail_now() -> None:
            state.degraded = True

        def heal_now() -> None:
            state.degraded = False

        def autoscale_tick() -> None:
            burns: Dict[str, float] = {}
            for t in config.tenants:
                bad, total = monitor.window_counts(
                    t.slo_name, sim.now, config.autoscaler.window_s
                )
                if total < BURN_MIN_EVENTS:
                    burns[t.name] = 0.0
                else:
                    budget = monitor.specs[t.slo_name].budget
                    burns[t.name] = (bad / total) / budget
            action = scaler.evaluate(sim.now, burns)
            if action is None:
                return

            def actuate(action: ScalingAction = action) -> None:
                if action.kind == "scale_up":
                    note_capacity_change(+1)
                    idle.append(state.next_backend)
                    state.next_backend += 1
                    idle.sort()
                    dispatch()
                else:
                    if idle:
                        idle.pop()
                        note_capacity_change(-1)
                    else:
                        # drain: the next finishing backend retires
                        state.pending_retire += 1

            sim.schedule(action.effective_s, actuate, label="actuate")

        # -- schedule the day ----------------------------------------------
        sim.schedule_bulk(
            [a.time_s for a in arrivals],
            [
                (lambda a=a, qid=qid: arrive(a, qid))
                for qid, a in enumerate(arrivals)
            ],
            label="arrival",
        )
        if degraded_active and fail_window is not None:
            sim.schedule(fail_window[0], fail_now, label="shard-fail")
            if fail_window[1] is not None:
                sim.schedule(fail_window[1], heal_now, label="shard-heal")
        if autoscale and config.autoscaler.enabled:
            interval = config.autoscaler.evaluate_interval_s
            n_ticks = int(config.day_s // interval)
            sim.schedule_bulk(
                [interval * (k + 1) for k in range(n_ticks)],
                [autoscale_tick] * n_ticks,
                label="autoscale",
            )
        sim.run()
        monitor.finish(state.last_completion)
        state.capacity_integral += (
            (sim.now - state.capacity_since) * state.n_backends
        )

        # -- measure -------------------------------------------------------
        ledger = wfq.ledger()
        tenants: Dict[str, TenantDayResult] = {}
        for t in config.tenants:
            lat = latencies[t.name]
            row = ledger[t.name]
            completed_reads = len(lat)
            completed = completed_reads + writes_completed[t.name]
            within = sum(1 for v in lat if v <= t.latency_slo_s)
            tenants[t.name] = TenantDayResult(
                tenant=t.name,
                offered=offered[t.name],
                admitted=row["admitted"],
                completed=completed,
                rejected=row["rejected"],
                evicted=row["evicted"],
                expired=row["expired"],
                writes_offered=writes_offered[t.name],
                writes_completed=writes_completed[t.name],
                mean_latency_s=(
                    sum(lat) / completed_reads if completed_reads else 0.0
                ),
                p50_s=percentile(lat, 50) if lat else 0.0,
                p99_s=percentile(lat, 99) if lat else 0.0,
                p999_s=percentile(lat, 99.9) if lat else 0.0,
                max_latency_s=max(lat) if lat else 0.0,
                mean_wait_s=(
                    sum(waits[t.name]) / len(waits[t.name])
                    if waits[t.name]
                    else 0.0
                ),
                slo_attainment=(
                    within / completed_reads if completed_reads else 1.0
                ),
                goodput_fraction=(
                    completed / offered[t.name] if offered[t.name] else 0.0
                ),
                conserved=(
                    row["offered"] == row["admitted"] + row["rejected"]
                    and row["admitted"]
                    == row["popped"] + row["evicted"] + row["expired"]
                    + row["depth"]
                ),
            )
        first_alert = monitor.first_alert_at()
        span = max(state.last_completion - arrivals[0].time_s, 0.0)
        return DayResult(
            duration_s=span,
            tenants=tenants,
            ledger=ledger,
            actions=list(scaler.actions),
            alerts=len(monitor.alerts),
            first_alert_s=first_alert if first_alert is not None else -1.0,
            peak_backends=state.peak_backends,
            final_backends=state.n_backends,
            rebalances=tracker.rebalances,
            rebalance_rows_moved=state.rebalance_rows,
            mean_batch=(
                sum(batch_sizes) / len(batch_sizes) if batch_sizes else 0.0
            ),
            utilization=(
                state.busy_s / state.capacity_integral
                if state.capacity_integral > 0
                else 0.0
            ),
        )
