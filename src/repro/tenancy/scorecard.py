"""The tenancy scorecard (the CI perf gate's seventh leg).

Same philosophy as the other six legs: every number is a deterministic
function of config + seed, so any drift is a code change.  One
canonical scenario — the default three-tenant
:func:`~repro.tenancy.day.run_production_day` (24h diurnal trace,
search-tenant flash crowd, scripted shard failure, skewed live ingest)
— emitting per-tenant p99/goodput/SLO-attainment rows, the autoscaler
action log summary, the rebalance tally, and the paired noisy-neighbor
isolation ratios.

``benchmarks/perf_gate.py`` embeds this dict under the ``tenancy`` key
of the combined scorecard and diffs it leaf-by-leaf against the
checked-in baseline.
"""

from __future__ import annotations

from typing import Dict

from repro.tenancy.day import default_production_config, run_production_day

SCORECARD_SEED = 7


def build_tenancy_scorecard(seed: int = SCORECARD_SEED) -> Dict[str, object]:
    """Run the canonical production day; return the perf scorecard."""
    config = default_production_config(seed=seed)
    report = run_production_day(config)
    out = report.as_dict()
    out["seed"] = seed
    return out
