"""Deterministic diurnal trace generation for multi-tenant days.

Each tenant's day is a **non-homogeneous Poisson process** with rate

    rate(t) = base_qps * (1 + amplitude * sin(2*pi*(t/day - phase)))

realized by thinning (candidates at the crest rate, accepted with
probability ``rate(t)/crest``), plus one extra thinned process per
:class:`~repro.tenancy.spec.BurstSpec` contributing
``(multiplier - 1) * rate(t)`` inside its window — so during a burst
the tenant offers exactly ``multiplier`` times its diurnal rate.

Every process draws from its **own** seeded rng domain
(``default_rng([seed, tenant_index, domain, ...])``), and each
process's attribute marks (app, read/write, intent, row key) come from
the same domain as its arrival times.  Two properties fall out, and
the suite pins both:

* **determinism** — the same ``(config, seed)`` yields a bit-identical
  trace;
* **surgical removal** — deleting one tenant (or one burst) leaves
  every other arrival byte-identical, which is what makes the paired
  noisy-neighbor runs in :mod:`repro.tenancy.day` an *isolation*
  measurement rather than a rerolled coincidence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.tenancy.spec import BurstSpec, TenancyConfig, TenantSpec
from repro.workloads.queries import ZipfSampler

#: rng sub-domains (third element of the seed sequence)
_DOMAIN_BASE = 0
_DOMAIN_BURST = 1


@dataclass(frozen=True)
class TenantArrival:
    """One request in a multi-tenant day trace."""

    time_s: float
    tenant: str
    #: SCN application this request runs against
    app: str
    #: ``"query"`` or ``"ingest"``
    kind: str
    #: tenant-local query intent (Zipf-ranked; -1 for writes)
    intent: int
    #: ingested row key (drives shard routing; -1 for reads)
    key: int
    #: True when this arrival came from a burst process
    burst: bool


def diurnal_rate(spec: TenantSpec, t_s: float, day_s: float) -> float:
    """The tenant's instantaneous offered rate at ``t_s``."""
    phase_angle = 2.0 * math.pi * (t_s / day_s - spec.phase)
    return spec.base_qps * max(
        0.0, 1.0 + spec.amplitude * math.sin(phase_angle)
    )


def _thinned_process(
    spec: TenantSpec,
    day_s: float,
    crest: float,
    window: Tuple[float, float],
    scale: float,
    rng: np.random.Generator,
    burst: bool,
) -> List[TenantArrival]:
    """One thinned Poisson process over ``window`` at ``scale * rate(t)``.

    Candidates arrive at ``scale * crest``; each is kept with
    probability ``rate(t) / crest`` and, if kept, marked (app, kind,
    intent, key) from the **same** rng — one process, one domain, so
    the whole process vanishes cleanly when its window is removed.
    """
    start, end = window
    envelope = scale * crest
    if envelope <= 0.0 or end <= start:
        return []
    apps = [app for app, _f in spec.apps]
    app_probs = np.array([f for _a, f in spec.apps], dtype=np.float64)
    app_probs = app_probs / app_probs.sum()
    intent_sampler = ZipfSampler(
        spec.n_intents, spec.zipf_alpha,
        seed=int(rng.integers(0, 2**31 - 1)),
    )
    key_sampler = ZipfSampler(
        spec.ingest_key_universe, spec.ingest_key_alpha,
        seed=int(rng.integers(0, 2**31 - 1)),
    )
    out: List[TenantArrival] = []
    t = start
    while True:
        t += float(rng.exponential(1.0 / envelope))
        if t >= end:
            break
        accept = float(rng.random())
        if accept * crest > diurnal_rate(spec, t, day_s):
            continue
        is_write = (
            spec.write_fraction > 0.0
            and float(rng.random()) < spec.write_fraction
        )
        if is_write:
            out.append(TenantArrival(
                time_s=t, tenant=spec.name, app=apps[0], kind="ingest",
                intent=-1, key=int(key_sampler.sample(1)[0]), burst=burst,
            ))
        else:
            app = apps[int(rng.choice(len(apps), p=app_probs))]
            out.append(TenantArrival(
                time_s=t, tenant=spec.name, app=app, kind="query",
                intent=int(intent_sampler.sample(1)[0]), key=-1,
                burst=burst,
            ))
    return out


def tenant_day(
    spec: TenantSpec,
    tenant_index: int,
    day_s: float,
    seed: int,
    include_bursts: bool = True,
) -> List[TenantArrival]:
    """One tenant's full day: diurnal base plus its burst processes.

    ``tenant_index`` is the tenant's position in the scenario's tuple;
    it keys the rng domain, so reordering the tenant list (unlike
    removing a tenant from the *end* or filtering arrivals afterward)
    is a different experiment.
    """
    crest = spec.base_qps * (1.0 + spec.amplitude)
    arrivals = _thinned_process(
        spec, day_s, crest, (0.0, day_s), 1.0,
        np.random.default_rng([seed, tenant_index, _DOMAIN_BASE]),
        burst=False,
    )
    if include_bursts:
        for bi, burst in enumerate(spec.bursts):
            arrivals.extend(_thinned_process(
                spec, day_s, crest, burst.window_s(day_s),
                burst.multiplier - 1.0,
                np.random.default_rng(
                    [seed, tenant_index, _DOMAIN_BURST, bi]
                ),
                burst=True,
            ))
    arrivals.sort(key=lambda a: a.time_s)
    return arrivals


def generate_day(
    config: TenancyConfig,
    exclude: Tuple[str, ...] = (),
    strip_bursts_of: Tuple[str, ...] = (),
) -> List[TenantArrival]:
    """The whole scenario's merged, time-sorted day trace.

    ``exclude`` drops whole tenants; ``strip_bursts_of`` keeps a
    tenant's diurnal base but removes its burst processes.  Every
    remaining arrival is byte-identical to the unfiltered trace — the
    rng-domain separation makes both knobs surgical.
    """
    merged: List[TenantArrival] = []
    for index, spec in enumerate(config.tenants):
        if spec.name in exclude:
            continue
        merged.extend(tenant_day(
            spec, index, config.day_s, config.seed,
            include_bursts=spec.name not in strip_bursts_of,
        ))
    merged.sort(key=lambda a: (a.time_s, a.tenant))
    return merged


def offered_summary(
    arrivals: List[TenantArrival],
) -> Dict[str, Dict[str, int]]:
    """Per-tenant offered counts: total, queries, writes, burst share."""
    out: Dict[str, Dict[str, int]] = {}
    for a in arrivals:
        row = out.setdefault(a.tenant, {
            "offered": 0, "queries": 0, "writes": 0, "burst": 0,
        })
        row["offered"] += 1
        if a.kind == "ingest":
            row["writes"] += 1
        else:
            row["queries"] += 1
        if a.burst:
            row["burst"] += 1
    return out


def peak_window_qps(
    arrivals: List[TenantArrival],
    window_s: float = 600.0,
) -> float:
    """Highest arrival rate seen over any aligned ``window_s`` bucket."""
    if not arrivals or window_s <= 0:
        return 0.0
    counts: Dict[int, int] = {}
    for a in arrivals:
        bucket = int(a.time_s // window_s)
        counts[bucket] = counts.get(bucket, 0) + 1
    return max(counts.values()) / window_s


def aggressor_of(config: TenancyConfig) -> Optional[str]:
    """The scenario's noisy neighbor: the tenant with burst processes
    (ties broken by highest peak rate); None when nobody bursts."""
    bursty = [t for t in config.tenants if t.bursts]
    if not bursty:
        return None
    return max(bursty, key=lambda t: t.peak_qps()).name


__all__ = [
    "BurstSpec",
    "TenantArrival",
    "aggressor_of",
    "diurnal_rate",
    "generate_day",
    "offered_summary",
    "peak_window_qps",
    "tenant_day",
]
