"""Simulator-core fast path: switches and precomputed tables.

The discrete-event hot loops — event heap dispatch, per-event scan
costing, trace enumeration — are pure python; at bench scale they
dominate wall-clock.  This module is the control point for the *speed*
refactor that vectorizes them:

* a global **switch** (:func:`enabled`, ``REPRO_FASTPATH`` env var)
  that the refactored call sites consult.  On: array-backed event heap
  entries (:class:`~repro.sim.engine.Simulator`), numpy-bulk scan
  traces (:mod:`repro.ssd.trace`), and memoized per-layer cycle/energy
  tables (below).  Off: the original per-event code paths, kept intact
  so the differential suite can assert bit-identical outputs;
* **cycle tables**: accelerator graph profiles (per-layer systolic
  cycles) and top-K maintenance costs are pure functions of hashable
  configuration, recomputed today once per accelerator instance —
  which serving sweeps and cluster fleets construct per query leg.
  :func:`profile_table` / :func:`expected_topk_cycles` memoize them so
  the N-th identical construction costs a dict lookup.

Everything here is a *caching/representation* change only: cached
values are the same float objects the uncached path would compute, so
every scorecard leaf stays byte-identical with the fast path on or
off.  ``tests/test_fastpath_differential.py`` enforces exactly that.
"""

from __future__ import annotations

import os
import weakref
from contextlib import contextmanager
from math import ceil, log, log2
from typing import TYPE_CHECKING, Any, Dict, Hashable, Iterator, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.nn.graph import Graph
    from repro.systolic import GraphProfile

#: environment variable consulted when no explicit override is active
ENV_VAR = "REPRO_FASTPATH"

#: explicit process-wide override; None defers to the environment
_forced: Optional[bool] = None

#: lazily cached environment resolution — :func:`enabled` sits on the
#: per-event hot path, so it cannot afford an ``os.environ`` read per
#: call.  ``set_enabled(None)`` drops the cache, re-reading the
#: environment on the next query.
_env_cached: Optional[bool] = None


def _from_env() -> bool:
    return os.environ.get(ENV_VAR, "1").strip().lower() not in (
        "0", "false", "off", "no",
    )


def enabled() -> bool:
    """Whether the fast path is active (default: on).

    Resolution order: :func:`set_enabled` override, then the
    ``REPRO_FASTPATH`` environment variable (``0``/``false``/``off``
    disable, read once and cached), then on.
    """
    if _forced is not None:
        return _forced
    global _env_cached
    if _env_cached is None:
        _env_cached = _from_env()
    return _env_cached


def set_enabled(on: Optional[bool]) -> Optional[bool]:
    """Force the fast path on/off (``None`` restores env resolution).

    Returns the previous override so callers can restore it.  Passing
    ``None`` also invalidates the cached environment lookup, so tests
    that mutate ``REPRO_FASTPATH`` see the new value.
    """
    global _forced, _env_cached
    previous = _forced
    _forced = on
    if on is None:
        _env_cached = None
    return previous


@contextmanager
def override(on: Optional[bool]) -> Iterator[None]:
    """Context manager: run a block with the fast path forced on/off."""
    previous = set_enabled(on)
    try:
        yield
    finally:
        set_enabled(previous)


# ----------------------------------------------------------------------
# precomputed per-layer cycle tables
# ----------------------------------------------------------------------
#: graph -> {config key -> GraphProfile}; weak on the graph so cached
#: profiles die with the model instead of pinning it forever
_profiles: "weakref.WeakKeyDictionary[Any, Dict[Hashable, Any]]" = (
    weakref.WeakKeyDictionary()
)

#: (k, n_candidates) -> analytic mean top-K cycles per update
_topk_cycles: Dict[Tuple[int, int], float] = {}

#: (app name, seed) -> built-and-initialized SCN graph
_scn_graphs: Dict[Tuple[str, int], Any] = {}

#: cache-effectiveness counters (surfaced by ``repro profile --hotspots``)
stats = {
    "profile_hits": 0,
    "profile_misses": 0,
    "topk_hits": 0,
    "graph_hits": 0,
    "graph_misses": 0,
}


def profile_table(graph: "Graph", key: Hashable, build) -> "GraphProfile":
    """Memoized per-layer cycle profile for ``graph`` under ``key``.

    ``key`` must capture everything besides the graph that determines
    the mapping (placement, SSD config, precision, stream window);
    ``build`` computes the profile on a miss.  The returned object is
    the *same* one every time, so downstream float arithmetic is
    byte-identical to recomputing it.
    """
    per_graph = _profiles.get(graph)
    if per_graph is None:
        per_graph = {}
        _profiles[graph] = per_graph
    profile = per_graph.get(key)
    if profile is None:
        stats["profile_misses"] += 1
        profile = build()
        per_graph[key] = profile
    else:
        stats["profile_hits"] += 1
    return profile


def expected_topk_cycles(k: int, n_candidates: int) -> float:
    """Memoized :meth:`TopKSorter.expected_cycles_per_update`.

    Same closed form, computed once per ``(k, n)`` — the serving and
    cluster sweeps evaluate it for the same stripe sizes millions of
    times.
    """
    if n_candidates <= 0:
        raise ValueError("n_candidates must be positive")
    cached = _topk_cycles.get((k, n_candidates))
    if cached is not None:
        stats["topk_hits"] += 1
        return cached
    expected_inserts = k * (1 + log(max(1.0, n_candidates / k)))
    insert_cost = ceil(log2(k)) + k / 2
    value = 1.0 + min(1.0, expected_inserts / n_candidates) * insert_cost
    _topk_cycles[(k, n_candidates)] = value
    return value


def scn_graph(app: Any, seed: int = 0) -> "Graph":
    """Shared deterministic SCN build for ``(app.name, seed)``.

    ``AppSpec.build_scn`` initializes weights from the seed alone, so
    every build of the same app/seed is identical — and the cost-model
    call sites (serving sweeps, cluster fleets) treat the graph as
    read-only.  Sharing one instance both skips the rebuild and keys
    :func:`profile_table` on the same object, so downstream profiles
    memoize across server constructions.  Off the fast path this is a
    plain fresh build.
    """
    if not enabled():
        return app.build_scn(seed=seed)
    key = (app.name, seed)
    graph = _scn_graphs.get(key)
    if graph is None:
        stats["graph_misses"] += 1
        graph = app.build_scn(seed=seed)
        _scn_graphs[key] = graph
    else:
        stats["graph_hits"] += 1
    return graph


def clear_tables() -> None:
    """Drop every memoized table (tests; never needed in production)."""
    _profiles.clear()
    _topk_cycles.clear()
    _scn_graphs.clear()
    for key in stats:
        stats[key] = 0
