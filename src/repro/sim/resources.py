"""Exclusive resources with FIFO arbitration.

A :class:`Resource` models a bus/port that one user occupies at a time for
a known duration — e.g. a flash channel bus transferring one 16 KB page, or
the SSD DRAM port.  Requests are granted strictly in arrival order, which
matches the round-robin/FIFO channel arbitration the paper assumes.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, Optional, Tuple

from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracer import TrackHandle


class Resource:
    """A single-owner resource acquired for a fixed duration.

    Callers request the resource with a hold ``duration`` and a completion
    callback; the callback fires when the hold *finishes*.  Utilization
    statistics (busy seconds, peak queue depth) are tracked for energy and
    contention reporting.

    When the owning simulator carries a tracer and :attr:`track` is set
    (e.g. by :class:`~repro.ssd.controller.ChannelController` for its
    bus), every hold is emitted as one complete span on that track, named
    by the ``label`` the acquirer passed.  Holds have predetermined
    durations, so the span is recorded at grant time in a single call.
    """

    def __init__(self, sim: Simulator, name: str = "resource") -> None:
        self.sim = sim
        self.name = name
        self._busy = False
        self._waiting: Deque[
            Tuple[float, Callable[[], None], Optional[str], Optional[Dict]]
        ] = deque()
        self.busy_seconds = 0.0
        self.grants = 0
        self.peak_queue_depth = 0
        #: span destination; None (the default) disables span emission
        self.track: Optional["TrackHandle"] = None
        #: Chrome-trace category for this resource's spans
        self.trace_cat = "sim.resource"

    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def queue_depth(self) -> int:
        return len(self._waiting)

    def acquire(
        self,
        duration: float,
        on_done: Callable[[], None],
        label: Optional[str] = None,
        trace_args: Optional[Dict] = None,
    ) -> None:
        """Hold the resource for ``duration`` seconds, then call ``on_done``.

        ``label``/``trace_args`` name and annotate the hold's trace span;
        both are ignored (and should be left None) when not tracing.
        """
        if duration < 0:
            raise ValueError(f"negative hold duration {duration}")
        if self._busy:
            self._waiting.append((duration, on_done, label, trace_args))
            self.peak_queue_depth = max(self.peak_queue_depth, len(self._waiting))
            return
        self._start(duration, on_done, label, trace_args)

    def _start(
        self,
        duration: float,
        on_done: Callable[[], None],
        label: Optional[str] = None,
        trace_args: Optional[Dict] = None,
    ) -> None:
        self._busy = True
        self.grants += 1
        self.busy_seconds += duration
        if self.track is not None and self.sim.tracer is not None:
            self.sim.tracer.complete(
                self.track, label or self.name, self.sim.now, duration,
                cat=self.trace_cat, args=trace_args,
            )
        self.sim.schedule_after(duration, lambda: self._finish(on_done))

    def _finish(self, on_done: Callable[[], None]) -> None:
        self._busy = False
        # Run the completion first so it may enqueue follow-on work that
        # competes fairly with already-waiting requests.
        on_done()
        if not self._busy and self._waiting:
            duration, callback, label, trace_args = self._waiting.popleft()
            self._start(duration, callback, label, trace_args)

    def utilization(self, over_seconds: Optional[float] = None) -> float:
        """Fraction of time busy over ``over_seconds`` (default: sim.now)."""
        window = self.sim.now if over_seconds is None else over_seconds
        if window <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / window)
