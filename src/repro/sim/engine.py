"""Core event scheduler.

A :class:`Simulator` owns a priority queue of :class:`Event` records and a
monotonically advancing clock.  Time is a float in **seconds**; all SSD and
accelerator models convert cycles/latencies to seconds before scheduling.

Two heap representations back the queue.  The classic one stores
:class:`Event` dataclasses directly and orders them via the generated
``(time, seq)`` comparison — simple, but every sift comparison runs
python-level ``__lt__``.  The **array-backed fast path** (see
:mod:`repro.sim.fastpath`) stores plain ``(time, seq, event)`` tuples so
heap sifts compare in C, adds :meth:`Simulator.schedule_bulk` for
homogeneous event batches, and drains via an inlined run loop.  Both
representations order events by exactly the same ``(time, seq)`` key and
share the cancellation/compaction accounting, so every simulation is
bit-identical under either — the differential and oracle suites in
``tests/test_sim_fastpath.py`` enforce it.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple, Union

from repro.sim import fastpath  # no cycle: fastpath imports nothing from sim

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracer import Tracer


class SimulationError(RuntimeError):
    """Raised for scheduler misuse (e.g. scheduling in the past)."""


def _released_callback() -> None:  # pragma: no cover - defensive
    raise SimulationError("a released (cancelled or fired) event ran")


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events order by ``(time, seq)``; ``seq`` is a tie-breaking insertion
    counter so same-time events run in FIFO order, which makes simulations
    deterministic.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)
    #: owning scheduler, set by :meth:`Simulator.schedule`; lets
    #: ``cancel`` report itself so the heap can be compacted
    sim: Optional["Simulator"] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when popped.

        Idempotent: cancelling twice counts once.  The callback and the
        scheduler backreference are dropped *at cancel time*, not when
        the corpse is eventually popped or compacted away — hedged
        requests cancel callbacks that close over whole result payloads,
        which must not stay reachable for the rest of the simulation.
        """
        if self.cancelled:
            return
        self.cancelled = True
        self.callback = _released_callback
        sim, self.sim = self.sim, None
        if sim is not None:
            sim._note_cancelled()


#: one array-backed heap entry: (time, seq, event) — ordering compares
#: the leading floats/ints in C and never reaches the event (seq is
#: unique), which is the entire point of the representation
HeapEntry = Tuple[float, int, "Event"]


class Simulator:
    """Minimal discrete-event scheduler.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append("b"))
    >>> _ = sim.schedule(1.0, lambda: fired.append("a"))
    >>> sim.run()
    >>> fired
    ['a', 'b']
    >>> sim.now
    2.0
    """

    #: compaction triggers only past this heap size — tiny heaps are
    #: cheap to scan lazily and not worth a rebuild
    COMPACT_MIN_HEAP = 8

    def __init__(
        self,
        tracer: Optional["Tracer"] = None,
        fast: Optional[bool] = None,
    ) -> None:
        #: ``fast=None`` defers to the global fastpath switch; both
        #: representations dispatch events in identical (time, seq) order
        self._fast = fastpath.enabled() if fast is None else fast
        self._heap: List[Union[Event, HeapEntry]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._events_processed = 0
        self._cancelled_pending = 0
        self._compactions = 0
        # Disabled tracers resolve to None here so the hot dispatch loop
        # pays one `is None` check and nothing else; instrumented
        # components (resources, chips) read `sim.tracer` for the same
        # reason.  Tracing only appends records — it never schedules —
        # so simulated timings are identical with or without it.
        self.tracer = (
            tracer if tracer is not None and tracer.enabled else None
        )
        self._event_track = (
            self.tracer.track("sim", "events")
            if self.tracer is not None
            else None
        )

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (diagnostics/tests)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Live (non-cancelled) events still waiting in the heap."""
        return len(self._heap) - self._cancelled_pending

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events not yet removed from the heap."""
        return self._cancelled_pending

    @property
    def compactions(self) -> int:
        """Times the heap was rebuilt to purge cancelled events."""
        return self._compactions

    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel`; purges when >50% is dead.

        Long timeout-heavy simulations (e.g. dispatch retry ladders
        where almost every timeout is cancelled by a completion) would
        otherwise grow the heap without bound; an O(n) rebuild amortized
        against n/2 cancellations is O(1) per cancel.
        """
        self._cancelled_pending += 1
        if (
            len(self._heap) > self.COMPACT_MIN_HEAP
            and self._cancelled_pending * 2 > len(self._heap)
        ):
            # in-place slice assignment: the fast drain loop holds a
            # reference to this exact list across callbacks
            if self._fast:
                self._heap[:] = [
                    entry for entry in self._heap
                    if not entry[2].cancelled  # type: ignore[index]
                ]
            else:
                self._heap[:] = [
                    e for e in self._heap
                    if not e.cancelled  # type: ignore[union-attr]
                ]
            heapq.heapify(self._heap)
            self._cancelled_pending = 0
            self._compactions += 1

    def schedule(
        self, time: float, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self._now}"
            )
        event = Event(
            time=time, seq=next(self._counter), callback=callback,
            label=label, sim=self,
        )
        if self._fast:
            heapq.heappush(self._heap, (time, event.seq, event))
        else:
            heapq.heappush(self._heap, event)
        return event

    def schedule_bulk(
        self,
        times: Sequence[float],
        callbacks: Sequence[Callable[[], None]],
        label: str = "",
    ) -> List[Event]:
        """Schedule a homogeneous batch; identical to N :meth:`schedule` calls.

        Events get consecutive sequence numbers in input order, so ties
        resolve exactly as the equivalent loop would.  On the fast path a
        batch landing in an empty heap skips per-event sifting: an
        already-sorted batch (e.g. an arrival schedule) *is* a valid
        heap, and an unsorted one needs one O(n) heapify instead of n
        O(log n) pushes.
        """
        if len(times) != len(callbacks):
            raise SimulationError("times and callbacks must align")
        now = self._now
        for time in times:
            if time < now:
                raise SimulationError(
                    f"cannot schedule event at {time} before now={now}"
                )
        events = [
            Event(time=time, seq=next(self._counter), callback=callback,
                  label=label, sim=self)
            for time, callback in zip(times, callbacks)
        ]
        if self._fast:
            entries: List[HeapEntry] = [
                (event.time, event.seq, event) for event in events
            ]
            was_empty = not self._heap
            # extend in place: the fast drain loop aliases this list
            self._heap.extend(entries)
            if not was_empty or any(
                entries[i][0] > entries[i + 1][0]
                for i in range(len(entries) - 1)
            ):
                heapq.heapify(self._heap)
        else:
            for event in events:
                heapq.heappush(self._heap, event)
        return events

    def schedule_after(
        self, delay: float, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``callback`` ``delay`` seconds from the current time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self._now + delay, callback, label=label)

    def _head(self) -> Optional[Event]:
        """Event at the heap head with cancelled corpses drained."""
        heap = self._heap
        if self._fast:
            while heap and heap[0][2].cancelled:  # type: ignore[index]
                heapq.heappop(heap)
                self._cancelled_pending -= 1
            return heap[0][2] if heap else None  # type: ignore[index]
        while heap and heap[0].cancelled:  # type: ignore[union-attr]
            heapq.heappop(heap)
            self._cancelled_pending -= 1
        return heap[0] if heap else None  # type: ignore[return-value]

    def peek(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or ``None``."""
        head = self._head()
        return head.time if head is not None else None

    def step(self) -> bool:
        """Run the single next event.  Returns False when none remain."""
        while self._heap:
            popped = heapq.heappop(self._heap)
            event: Event = popped[2] if self._fast else popped  # type: ignore[assignment, index]
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            self._now = event.time
            self._events_processed += 1
            if self.tracer is not None:
                # one `sim.event` instant per dispatched callback: the
                # exported trace reconciles this count against
                # `events_processed` exactly
                self.tracer.instant(
                    self._event_track,
                    event.label or "event",
                    event.time,
                    cat="sim.event",
                )
            # the event left the heap: a late cancel() must not skew
            # the cancelled-pending accounting
            event.sim = None
            callback = event.callback
            # release the closure before running it — callers holding
            # the Event handle (hedging keeps completion events around
            # to cancel losers) must not pin the payload it closes over
            event.callback = _released_callback
            callback()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Run events until exhaustion, ``until`` time, or a predicate.

        ``until`` is inclusive: events at exactly ``until`` still execute.
        ``stop_when`` is checked after every event; it allows callers to
        stop a steady-state window simulation once enough work finished.
        """
        if self._fast and self.tracer is None:
            self._run_fast(until, max_events, stop_when)
            return
        executed = 0
        while True:
            next_time = self.peek()
            if next_time is None:
                return
            if until is not None and next_time > until:
                self._now = until
                return
            self.step()
            executed += 1
            if stop_when is not None and stop_when():
                return
            if max_events is not None and executed >= max_events:
                return

    def _run_fast(
        self,
        until: Optional[float],
        max_events: Optional[int],
        stop_when: Optional[Callable[[], bool]],
    ) -> None:
        """Inlined drain loop over (time, seq, event) heap entries.

        Dispatch order, clock updates, and cancellation accounting are
        exactly :meth:`peek` + :meth:`step`; the win is skipping two
        method calls and re-validations per event, which at hundreds of
        thousands of flash-page events per scan is the difference
        between the heap loop and the model dominating the profile.
        """
        heap = self._heap
        pop = heapq.heappop
        executed = 0
        while heap:
            entry = heap[0]
            event: Event = entry[2]  # type: ignore[index]
            if event.cancelled:
                pop(heap)
                self._cancelled_pending -= 1
                continue
            time: float = entry[0]  # type: ignore[index]
            if until is not None and time > until:
                self._now = until
                return
            pop(heap)
            self._now = time
            self._events_processed += 1
            # identical release protocol to step(): the heap no longer
            # owns the event, late cancels must not skew accounting, and
            # the closure must not outlive its dispatch
            event.sim = None
            callback = event.callback
            event.callback = _released_callback
            callback()
            executed += 1
            if stop_when is not None and stop_when():
                return
            if max_events is not None and executed >= max_events:
                return
