"""Core event scheduler.

A :class:`Simulator` owns a priority queue of :class:`Event` records and a
monotonically advancing clock.  Time is a float in **seconds**; all SSD and
accelerator models convert cycles/latencies to seconds before scheduling.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracer import Tracer


class SimulationError(RuntimeError):
    """Raised for scheduler misuse (e.g. scheduling in the past)."""


def _released_callback() -> None:  # pragma: no cover - defensive
    raise SimulationError("a released (cancelled or fired) event ran")


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events order by ``(time, seq)``; ``seq`` is a tie-breaking insertion
    counter so same-time events run in FIFO order, which makes simulations
    deterministic.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)
    #: owning scheduler, set by :meth:`Simulator.schedule`; lets
    #: ``cancel`` report itself so the heap can be compacted
    sim: Optional["Simulator"] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when popped.

        Idempotent: cancelling twice counts once.  The callback and the
        scheduler backreference are dropped *at cancel time*, not when
        the corpse is eventually popped or compacted away — hedged
        requests cancel callbacks that close over whole result payloads,
        which must not stay reachable for the rest of the simulation.
        """
        if self.cancelled:
            return
        self.cancelled = True
        self.callback = _released_callback
        sim, self.sim = self.sim, None
        if sim is not None:
            sim._note_cancelled()


class Simulator:
    """Minimal discrete-event scheduler.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append("b"))
    >>> _ = sim.schedule(1.0, lambda: fired.append("a"))
    >>> sim.run()
    >>> fired
    ['a', 'b']
    >>> sim.now
    2.0
    """

    #: compaction triggers only past this heap size — tiny heaps are
    #: cheap to scan lazily and not worth a rebuild
    COMPACT_MIN_HEAP = 8

    def __init__(self, tracer: Optional["Tracer"] = None) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._events_processed = 0
        self._cancelled_pending = 0
        self._compactions = 0
        # Disabled tracers resolve to None here so the hot dispatch loop
        # pays one `is None` check and nothing else; instrumented
        # components (resources, chips) read `sim.tracer` for the same
        # reason.  Tracing only appends records — it never schedules —
        # so simulated timings are identical with or without it.
        self.tracer = (
            tracer if tracer is not None and tracer.enabled else None
        )
        self._event_track = (
            self.tracer.track("sim", "events")
            if self.tracer is not None
            else None
        )

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (diagnostics/tests)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Live (non-cancelled) events still waiting in the heap."""
        return len(self._heap) - self._cancelled_pending

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events not yet removed from the heap."""
        return self._cancelled_pending

    @property
    def compactions(self) -> int:
        """Times the heap was rebuilt to purge cancelled events."""
        return self._compactions

    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel`; purges when >50% is dead.

        Long timeout-heavy simulations (e.g. dispatch retry ladders
        where almost every timeout is cancelled by a completion) would
        otherwise grow the heap without bound; an O(n) rebuild amortized
        against n/2 cancellations is O(1) per cancel.
        """
        self._cancelled_pending += 1
        if (
            len(self._heap) > self.COMPACT_MIN_HEAP
            and self._cancelled_pending * 2 > len(self._heap)
        ):
            self._heap = [e for e in self._heap if not e.cancelled]
            heapq.heapify(self._heap)
            self._cancelled_pending = 0
            self._compactions += 1

    def schedule(
        self, time: float, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self._now}"
            )
        event = Event(
            time=time, seq=next(self._counter), callback=callback,
            label=label, sim=self,
        )
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(
        self, delay: float, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``callback`` ``delay`` seconds from the current time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self._now + delay, callback, label=label)

    def peek(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._cancelled_pending -= 1
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Run the single next event.  Returns False when none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            self._now = event.time
            self._events_processed += 1
            if self.tracer is not None:
                # one `sim.event` instant per dispatched callback: the
                # exported trace reconciles this count against
                # `events_processed` exactly
                self.tracer.instant(
                    self._event_track,
                    event.label or "event",
                    event.time,
                    cat="sim.event",
                )
            # the event left the heap: a late cancel() must not skew
            # the cancelled-pending accounting
            event.sim = None
            callback = event.callback
            # release the closure before running it — callers holding
            # the Event handle (hedging keeps completion events around
            # to cancel losers) must not pin the payload it closes over
            event.callback = _released_callback
            callback()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Run events until exhaustion, ``until`` time, or a predicate.

        ``until`` is inclusive: events at exactly ``until`` still execute.
        ``stop_when`` is checked after every event; it allows callers to
        stop a steady-state window simulation once enough work finished.
        """
        executed = 0
        while True:
            next_time = self.peek()
            if next_time is None:
                return
            if until is not None and next_time > until:
                self._now = until
                return
            self.step()
            executed += 1
            if stop_when is not None and stop_when():
                return
            if max_events is not None and executed >= max_events:
                return
