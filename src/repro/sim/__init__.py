"""Discrete-event simulation kernel.

This package provides the minimal event-driven machinery used by the SSD
simulator (:mod:`repro.ssd`): a time-ordered event scheduler, exclusive
resources with FIFO arbitration (e.g. a flash channel bus), and bounded
queues with blocking put/get semantics (e.g. the ``FLASH_DFV`` queue that
decouples flash prefetching from accelerator compute, paper Fig. 5).

The kernel is callback based rather than coroutine based: entities schedule
plain callables at absolute simulated times.  This keeps the hot loop cheap
(a single ``heapq``) which matters because a full database scan simulates
hundreds of thousands of flash-page events.
"""

from repro.sim import fastpath
from repro.sim.engine import Event, Simulator
from repro.sim.queues import BoundedQueue
from repro.sim.resources import Resource

__all__ = ["Event", "Simulator", "Resource", "BoundedQueue", "fastpath"]
