"""Bounded fork-map: run pure index-functions in child processes.

The wall-clock fast path has two embarrassingly parallel loops — the
cluster scatter legs (:mod:`repro.cluster.parallel`) and the serving
offered-load sweep (:mod:`repro.serving.sweep`).  Both share the same
execution shape: every item is a pure function of its index, results
must come back in index order, and the work closes over live objects
(devices, servers) that only ``fork`` can ship to a worker.  This
module is that shape, factored out.

``fork_map(fn, n, processes)`` returns ``[fn(0), ..., fn(n-1)]``
computed by up to ``processes`` forked children at a time.  Each child
inherits the closure by fork, runs one item, writes one pickled
``(ok, value)`` payload to a pipe, and exits with ``os._exit`` so
parent cleanup never runs twice.  FIFO collection cannot deadlock: a
child writes its (small) payload and exits regardless of when the
parent reads, and the parent reads each pipe to EOF before reaping.

Because ``fn`` is pure, the parallel result is **bit-identical** to
the sequential list comprehension — same floats, same order; only host
wall-clock differs.  Platforms without ``os.fork`` and ``processes <=
1`` run the sequential loop.
"""

from __future__ import annotations

import os
import pickle
from typing import Any, Callable, List, Optional, Tuple


def available() -> bool:
    """Whether fork-based parallelism exists on this platform."""
    return hasattr(os, "fork")


def _fork_item(fn: Callable[[int], Any], index: int) -> Tuple[int, int]:
    """Fork one worker for ``fn(index)``; returns ``(pid, read_fd)``."""
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:  # child
        os.close(read_fd)
        try:
            payload = pickle.dumps((True, fn(index)))
        except BaseException as exc:  # noqa: BLE001 - must not escape the child
            payload = pickle.dumps((False, f"{type(exc).__name__}: {exc}"))
        try:
            with os.fdopen(write_fd, "wb") as pipe:
                pipe.write(payload)
        finally:
            os._exit(0)
    os.close(write_fd)
    return pid, read_fd


def _collect_item(index: int, pid: int, read_fd: int) -> Any:
    with os.fdopen(read_fd, "rb") as pipe:
        payload = pipe.read()
    os.waitpid(pid, 0)
    if not payload:
        raise RuntimeError(f"fork_map worker {index} died without a result")
    ok, value = pickle.loads(payload)
    if not ok:
        raise RuntimeError(f"fork_map worker {index} failed: {value}")
    return value


def fork_map(
    fn: Callable[[int], Any], n: int, processes: Optional[int] = None
) -> List[Any]:
    """``[fn(i) for i in range(n)]`` over a bounded fork pool.

    ``processes`` bounds concurrent children; ``None`` uses the CPU
    count, ``<= 1`` (or no ``fork``) runs the plain sequential loop.
    ``fn``'s return values must pickle.
    """
    if n < 0:
        raise ValueError("n cannot be negative")
    workers = os.cpu_count() or 1 if processes is None else processes
    workers = max(1, min(workers, n))
    if workers <= 1 or not available():
        return [fn(i) for i in range(n)]
    results: List[Any] = [None] * n
    inflight: List[Tuple[int, int, int]] = []  # (index, pid, read_fd)
    next_item = 0
    while next_item < n or inflight:
        while next_item < n and len(inflight) < workers:
            pid, read_fd = _fork_item(fn, next_item)
            inflight.append((next_item, pid, read_fd))
            next_item += 1
        index, pid, read_fd = inflight.pop(0)
        results[index] = _collect_item(index, pid, read_fd)
    return results
