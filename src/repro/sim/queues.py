"""Bounded producer/consumer queues for event-driven models.

:class:`BoundedQueue` models the ``FLASH_DFV`` staging queue of the
DeepStore accelerator (paper Fig. 5): the flash controller *produces*
feature-vector pages into it while the systolic array *consumes* them, so
prefetch and compute overlap.  The bound creates back-pressure: a full
queue stalls the producer, which is exactly how a fixed-depth hardware FIFO
throttles flash prefetching when compute is the bottleneck.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque

from repro.sim.engine import Simulator


class BoundedQueue:
    """FIFO with asynchronous blocking ``put``/``get``.

    ``put(item, on_accepted)`` calls ``on_accepted`` once the item has been
    enqueued (immediately if space exists, otherwise when a consumer frees
    a slot).  ``get(on_item)`` calls ``on_item(item)`` as soon as an item is
    available.  Both sides preserve FIFO ordering.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "queue") -> None:
        if capacity <= 0:
            raise ValueError("queue capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._blocked_puts: Deque[tuple[Any, Callable[[], None]]] = deque()
        self._blocked_gets: Deque[Callable[[Any], None]] = deque()
        self.total_puts = 0
        self.total_gets = 0
        self.producer_stalls = 0
        self.consumer_stalls = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._items

    def put(self, item: Any, on_accepted: Callable[[], None]) -> None:
        """Enqueue ``item``; run ``on_accepted`` once it is actually queued."""
        if self._blocked_gets:
            # Hand directly to the oldest waiting consumer.
            consumer = self._blocked_gets.popleft()
            self.total_puts += 1
            self.total_gets += 1
            # Defer to an event so callers never re-enter synchronously.
            self.sim.schedule_after(0.0, lambda: consumer(item))
            self.sim.schedule_after(0.0, on_accepted)
            return
        if self.full:
            self.producer_stalls += 1
            self._blocked_puts.append((item, on_accepted))
            return
        self._items.append(item)
        self.total_puts += 1
        self.sim.schedule_after(0.0, on_accepted)

    def get(self, on_item: Callable[[Any], None]) -> None:
        """Dequeue the oldest item; run ``on_item(item)`` when available."""
        if self._items:
            item = self._items.popleft()
            self.total_gets += 1
            self._admit_blocked_put()
            self.sim.schedule_after(0.0, lambda: on_item(item))
            return
        self.consumer_stalls += 1
        self._blocked_gets.append(on_item)

    def _admit_blocked_put(self) -> None:
        if self._blocked_puts and not self.full:
            item, on_accepted = self._blocked_puts.popleft()
            self._items.append(item)
            self.total_puts += 1
            self.sim.schedule_after(0.0, on_accepted)
