"""Synthetic stand-ins for the paper's evaluation datasets.

Each application in Table 1 names a real dataset (CUHK03, MagnaTagTune,
Street2Shop, MSCOCO/Flickr30K, TREC QA).  None is redistributable here,
and the simulators only consume feature geometry — but the *functional*
examples benefit from data whose latent structure mirrors the original:
persons seen from multiple cameras, tracks sharing genre/instrumentation
tags, street/shop photo pairs of the same garment, caption/image pairs,
and question/answer pools.

Every generator returns a :class:`SyntheticDataset`: a feature matrix in
the application's native shape, integer group labels (the ground-truth
"same entity" relation retrieval is scored against), and matched query
vectors drawn from the same latent entities through a *different* view
transform — reproducing the domain gap (street photo vs catalog photo,
caption vs image) the source tasks are hard because of.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from repro.workloads.apps import get_app


@dataclass
class SyntheticDataset:
    """Features + labels + matched queries for one application."""

    app: str
    features: np.ndarray  # (N, feature_floats)
    labels: np.ndarray  # (N,) entity/group ids
    queries: np.ndarray  # (Q, feature_floats)
    query_labels: np.ndarray  # (Q,) entity ids the queries target

    @property
    def n_entities(self) -> int:
        return int(self.labels.max()) + 1 if len(self.labels) else 0

    def positives_of(self, query_index: int) -> np.ndarray:
        """Gallery indices matching a query's entity."""
        return np.flatnonzero(self.labels == self.query_labels[query_index])

    def recall_at_k(self, query_index: int, retrieved: np.ndarray) -> float:
        """Fraction of the query's positives inside ``retrieved``."""
        positives = set(self.positives_of(query_index).tolist())
        if not positives:
            return 1.0
        return len(positives & set(np.asarray(retrieved).tolist())) / len(positives)


def _entity_gallery(
    rng: np.random.Generator,
    n_entities: int,
    views_per_entity: int,
    dim: int,
    view_noise: float,
    domain_shift: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shared machinery: entities -> multi-view gallery + shifted queries."""
    entities = rng.normal(0, 1, (n_entities, dim)).astype(np.float32)
    labels = np.repeat(np.arange(n_entities), views_per_entity)
    gallery = entities[labels] + rng.normal(
        0, view_noise, (len(labels), dim)
    ).astype(np.float32)
    # queries live in a shifted domain: a fixed random rotation-ish mix
    # plus noise, shared across all queries (the "street" side of
    # street-to-shop, the caption side of caption-to-image)
    mix = np.eye(dim, dtype=np.float32)
    if domain_shift > 0:
        jitter = rng.normal(0, domain_shift / np.sqrt(dim), (dim, dim))
        mix = (mix + jitter).astype(np.float32)
    q_labels = np.arange(n_entities)
    queries = (entities @ mix.T + rng.normal(
        0, view_noise, (n_entities, dim)
    )).astype(np.float32)
    order = rng.permutation(len(labels))
    return gallery[order], labels[order], queries, q_labels


def make_cuhk03_like(
    n_persons: int = 64, views: int = 6, seed: int = 0
) -> SyntheticDataset:
    """ReId: persons seen by multiple cameras (CUHK03 stand-in)."""
    app = get_app("reid")
    rng = np.random.default_rng(seed)
    gallery, labels, queries, q_labels = _entity_gallery(
        rng, n_persons, views, app.feature_floats,
        view_noise=0.3, domain_shift=0.15,
    )
    return SyntheticDataset("reid", gallery, labels, queries, q_labels)


def make_magnatagatune_like(
    n_styles: int = 48, tracks_per_style: int = 40, seed: int = 0
) -> SyntheticDataset:
    """MIR: tracks clustered by style/instrumentation (MagnaTagTune)."""
    app = get_app("mir")
    rng = np.random.default_rng(seed)
    gallery, labels, queries, q_labels = _entity_gallery(
        rng, n_styles, tracks_per_style, app.feature_floats,
        view_noise=0.45, domain_shift=0.1,
    )
    return SyntheticDataset("mir", gallery, labels, queries, q_labels)


def make_street2shop_like(
    n_garments: int = 96, shop_photos: int = 5, seed: int = 0
) -> SyntheticDataset:
    """ESTP: garments with catalog photos, queried by street photos."""
    app = get_app("estp")
    rng = np.random.default_rng(seed)
    gallery, labels, queries, q_labels = _entity_gallery(
        rng, n_garments, shop_photos, app.feature_floats,
        view_noise=0.25, domain_shift=0.3,  # the street/shop gap is large
    )
    return SyntheticDataset("estp", gallery, labels, queries, q_labels)


def make_flickr30k_like(
    n_scenes: int = 128, images_per_scene: int = 4, seed: int = 0
) -> SyntheticDataset:
    """TIR: images grouped by scene, queried by sentence embeddings."""
    app = get_app("tir")
    rng = np.random.default_rng(seed)
    gallery, labels, queries, q_labels = _entity_gallery(
        rng, n_scenes, images_per_scene, app.feature_floats,
        view_noise=0.3, domain_shift=0.25,
    )
    return SyntheticDataset("tir", gallery, labels, queries, q_labels)


def make_trecqa_like(
    n_questions: int = 160, answers_per_question: int = 8, seed: int = 0
) -> SyntheticDataset:
    """TextQA: answer pools per question (TREC QA stand-in)."""
    app = get_app("textqa")
    rng = np.random.default_rng(seed)
    gallery, labels, queries, q_labels = _entity_gallery(
        rng, n_questions, answers_per_question, app.feature_floats,
        view_noise=0.35, domain_shift=0.2,
    )
    return SyntheticDataset("textqa", gallery, labels, queries, q_labels)


DATASET_BUILDERS: Dict[str, Callable[..., SyntheticDataset]] = {
    "reid": make_cuhk03_like,
    "mir": make_magnatagatune_like,
    "estp": make_street2shop_like,
    "tir": make_flickr30k_like,
    "textqa": make_trecqa_like,
}


def make_dataset(app_name: str, seed: int = 0, **kwargs) -> SyntheticDataset:
    """Build the stand-in dataset for an application by name."""
    builder = DATASET_BUILDERS.get(app_name.lower())
    if builder is None:
        raise KeyError(
            f"no dataset builder for {app_name!r}; choose from "
            f"{list(DATASET_BUILDERS)}"
        )
    return builder(seed=seed, **kwargs)
