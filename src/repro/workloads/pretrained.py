"""Trained SCN construction.

The paper trains each application's model "until the model accuracy is
within 5% of the advertised accuracy" before extracting features and
running queries (§3).  We reproduce the procedure on synthetic data:
:func:`train_scn` builds the app's SCN and fits it on positive/negative
(query, feature) pairs with the numpy trainer until pair accuracy clears
``target_accuracy`` — after which the SCN genuinely ranks similar
features above dissimilar ones, so end-to-end queries through
:class:`~repro.core.api.DeepStoreDevice` retrieve planted neighbors.

Training runs are cached per (app, seed) within the process.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.nn import Graph, PairTrainer, TrainConfig
from repro.nn.training import make_pair_dataset
from repro.workloads.apps import AppSpec, get_app


class TrainingError(RuntimeError):
    """Raised when an SCN fails to reach its target accuracy."""


_CACHE: Dict[Tuple[str, int], Graph] = {}


def train_scn(
    app: AppSpec,
    seed: int = 0,
    n_pairs: int = 4000,
    target_accuracy: float = 0.90,
    max_rounds: int = 4,
    config: TrainConfig | None = None,
) -> Graph:
    """Build and train ``app``'s SCN to ``target_accuracy`` on pairs."""
    key = (app.name, seed)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached

    graph = app.build_scn(seed=seed)
    cfg = config or TrainConfig(
        learning_rate=0.05, momentum=0.9, batch_size=128, epochs=8, seed=seed
    )
    trainer = PairTrainer(graph, cfg)
    rng = np.random.default_rng(seed + 101)
    accuracy = 0.0
    for _ in range(max_rounds):
        queries, features, labels = make_pair_dataset(
            rng, app.feature_floats, n_pairs, noise=0.25
        )
        q = queries.reshape((-1, *app.feature_shape))
        d = features.reshape((-1, *app.feature_shape))
        report = trainer.fit(q, d, labels)
        accuracy = report.final_accuracy
        if accuracy >= target_accuracy:
            break
    if accuracy < target_accuracy:
        raise TrainingError(
            f"{app.name} SCN reached only {accuracy:.3f} pair accuracy "
            f"(target {target_accuracy})"
        )
    _CACHE[key] = graph
    return graph


def train_scn_by_name(name: str, **kwargs) -> Graph:
    """Convenience wrapper taking an app short name."""
    return train_scn(get_app(name), **kwargs)


def clear_cache() -> None:
    """Drop cached trained models (tests)."""
    _CACHE.clear()
