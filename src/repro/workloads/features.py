"""Synthetic feature databases.

The paper extracts feature vectors from real datasets; the evaluation
depends on their *geometry* — per-vector size, database size, and the
existence of semantically similar clusters (queries and their matching
items share an underlying "intent").  We generate clustered Gaussians:
``n_intents`` centroids, each feature a centroid plus noise.  Retrieval
quality examples plant known neighbors and check they come back in the
top-K.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np


@dataclass(frozen=True)
class FeatureDatasetSpec:
    """Shape of a synthetic feature database."""

    n_features: int
    dim: int
    n_intents: int = 64
    noise: float = 0.35
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_features <= 0 or self.dim <= 0 or self.n_intents <= 0:
            raise ValueError("dataset dimensions must be positive")
        if self.noise < 0:
            raise ValueError("noise cannot be negative")

    def centroids(self) -> np.ndarray:
        """The intent centroids (deterministic for a given seed)."""
        rng = np.random.default_rng(self.seed)
        return rng.normal(0.0, 1.0, (self.n_intents, self.dim)).astype(np.float32)


def make_clustered_features(
    spec: FeatureDatasetSpec,
) -> Tuple[np.ndarray, np.ndarray]:
    """Materialize the full database: (features, intent labels)."""
    rng = np.random.default_rng(spec.seed + 1)
    centroids = spec.centroids()
    labels = rng.integers(0, spec.n_intents, spec.n_features)
    noise = rng.normal(0.0, spec.noise, (spec.n_features, spec.dim))
    features = (centroids[labels] + noise).astype(np.float32)
    return features, labels


def iter_feature_chunks(
    spec: FeatureDatasetSpec, chunk: int = 4096
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Stream (features, labels) chunks without holding the whole DB.

    Deterministic: the same spec always yields the same database, chunked
    or not, because per-chunk RNG state is derived from the chunk index.
    """
    if chunk <= 0:
        raise ValueError("chunk must be positive")
    centroids = spec.centroids()
    produced = 0
    index = 0
    while produced < spec.n_features:
        n = min(chunk, spec.n_features - produced)
        rng = np.random.default_rng((spec.seed + 1, index))
        labels = rng.integers(0, spec.n_intents, n)
        noise = rng.normal(0.0, spec.noise, (n, spec.dim))
        yield (centroids[labels] + noise).astype(np.float32), labels
        produced += n
        index += 1


def plant_neighbors(
    features: np.ndarray,
    query: np.ndarray,
    k: int,
    noise: float = 0.05,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Overwrite ``k`` random rows with near-copies of ``query``.

    Returns (modified features, planted indices).  Used by retrieval
    quality tests/examples: a correct end-to-end query must return the
    planted indices in its top-K.
    """
    if k <= 0 or k > len(features):
        raise ValueError(f"cannot plant {k} neighbors in {len(features)} rows")
    rng = np.random.default_rng(seed)
    planted = rng.choice(len(features), size=k, replace=False)
    out = features.copy()
    out[planted] = query[None, :] + rng.normal(0.0, noise, (k, query.size)).astype(
        np.float32
    )
    return out, np.sort(planted)
