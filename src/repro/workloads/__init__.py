"""Intelligent-query workloads (paper Table 1).

Five applications spanning visual, audio, and text retrieval:

=========  ======  =========  =====  ====  ====  =======  ==========
App        Type    Feature    #Conv  #FC   #EW   FLOPs    Weights
=========  ======  =========  =====  ====  ====  =======  ==========
ReId       visual  44 KB      2      2     1     9.8 M    10.7 MB
MIR        audio   2 KB       0      3     0     1.05 M   2 MB
ESTP       visual  16 KB      0      3     0     4.72 M   9 MB
TIR        text    2 KB       0      3     1     0.79 M   1.5 MB
TextQA     text    0.8 KB     0      1     1     0.08 M   0.16 MB
=========  ======  =========  =====  ====  ====  =======  ==========

Each :class:`AppSpec` builds its similarity comparison network (SCN) with
layer shapes calibrated so feature size, layer counts, FLOPs and weight
bytes all land within a few percent of Table 1 (asserted by tests), plus
synthetic feature databases and query streams with controllable locality.
"""

from repro.workloads.apps import (
    ALL_APPS,
    APP_NAMES,
    AppSpec,
    Table1Row,
    get_app,
)
from repro.workloads.features import (
    FeatureDatasetSpec,
    make_clustered_features,
    plant_neighbors,
)
from repro.workloads.queries import QueryRecord, QueryStream, ZipfSampler
from repro.workloads.pretrained import train_scn, train_scn_by_name
from repro.workloads.traces import (
    LatencyDistribution,
    QueryTrace,
    TracedQuery,
    capture_trace,
    replay_trace,
)

__all__ = [
    "AppSpec",
    "Table1Row",
    "ALL_APPS",
    "APP_NAMES",
    "get_app",
    "FeatureDatasetSpec",
    "make_clustered_features",
    "plant_neighbors",
    "QueryStream",
    "QueryRecord",
    "ZipfSampler",
    "train_scn",
    "train_scn_by_name",
    "QueryTrace",
    "TracedQuery",
    "capture_trace",
    "replay_trace",
    "LatencyDistribution",
]
