"""The five intelligent-query applications.

Layer shapes are reverse-engineered from Table 1's aggregate numbers
(feature size, layer-class counts, total FLOPs, total weight bytes) and
the architectural descriptions in the source papers — e.g. TIR's SCN "
consists of a vector dot product and three fully connected layers with
sizes of 512x512, 512x256, 256x2" (paper §3), and TextQA's bilinear
``q^T M d`` similarity from Severyn & Moschitti.  Tests assert each app
matches its Table-1 row within 10%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.nn import Graph, GraphBuilder

KB = 1024


@dataclass(frozen=True)
class Table1Row:
    """Published per-application characteristics (paper Table 1)."""

    feature_kb: float
    conv_layers: int
    fc_layers: int
    elementwise_layers: int
    total_flops: float
    weight_bytes: float
    dataset: str


@dataclass(frozen=True)
class AppSpec:
    """One intelligent-query application."""

    name: str
    full_name: str
    modality: str
    description: str
    feature_shape: Tuple[int, ...]
    scn_builder: Callable[[], Graph]
    table1: Table1Row
    #: Fig. 2 batch-size sweep for the GPU+SSD characterization
    fig2_batches: Tuple[int, ...]
    #: batch size used in the §6.2 evaluation ("GPU utilization maximized")
    eval_batch: int
    #: accuracy of the app's query comparison network (Algorithm 1's
    #: QCN_Acc); the paper uses the Universal Sentence Encoder's test
    #: accuracy for TIR and the app model's own accuracy otherwise
    qcn_accuracy: float = 0.92

    @property
    def feature_floats(self) -> int:
        n = 1
        for s in self.feature_shape:
            n *= s
        return n

    @property
    def feature_bytes(self) -> int:
        return self.feature_floats * 4

    def build_scn(self, seed: int = 0) -> Graph:
        """A freshly initialized similarity comparison network."""
        graph = self.scn_builder()
        graph.initialize(seed=seed)
        return graph

    def build_qcn(self, seed: int = 0) -> Graph:
        """Query comparison network for the query cache.

        The paper states the QCN "structure is similar to the SCN" (§4.6)
        — it compares two *query* feature vectors instead of a query and a
        database vector, so the same two-branch topology applies.
        """
        graph = self.scn_builder()
        graph.name = f"{self.name}-qcn"
        graph.initialize(seed=seed + 1)
        return graph


# ----------------------------------------------------------------------
# SCN builders
# ----------------------------------------------------------------------
def _build_reid() -> Graph:
    """Person re-identification (Ahmed et al. CVPR'15 comparison stage).

    Cross-input difference over 44 KB spatial features, two convolutional
    summary layers, and a two-layer classifier head.
    """
    b = GraphBuilder("reid-scn")
    q = b.input((11, 32, 32), "qfv")
    d = b.input((11, 32, 32), "dfv")
    h = b.elementwise(q, d, "absdiff", name="cross_diff")
    h = b.conv2d(h, 16, kernel=3, padding=1, activation="relu", name="conv1")
    h = b.conv2d(h, 16, kernel=3, stride=2, padding=1, activation="relu", name="conv2")
    h = b.flatten(h)
    h = b.dense(h, 640, activation="relu", name="fc1")
    h = b.dense(h, 2, name="fc2")
    out = b.score_head(h, "sigmoid_diff")
    return b.build(out)


def _build_mir() -> Graph:
    """Music information retrieval (Lu et al. triplet MatchNet)."""
    b = GraphBuilder("mir-scn")
    q = b.input((512,), "qfv")
    d = b.input((512,), "dfv")
    h = b.concat(q, d)
    h = b.dense(h, 400, activation="relu", name="fc1")
    h = b.dense(h, 280, activation="relu", name="fc2")
    h = b.dense(h, 2, name="fc3")
    out = b.score_head(h, "sigmoid_diff")
    return b.build(out)


def _build_estp() -> Graph:
    """Exact Street-to-Shop garment matching (Kiapour et al. ICCV'15)."""
    b = GraphBuilder("estp-scn")
    q = b.input((4096,), "qfv")
    d = b.input((4096,), "dfv")
    h = b.concat(q, d)
    h = b.dense(h, 250, activation="relu", name="fc1")
    h = b.dense(h, 1176, activation="relu", name="fc2")
    h = b.dense(h, 2, name="fc3")
    out = b.score_head(h, "sigmoid_diff")
    return b.build(out)


def _build_tir() -> Graph:
    """Text-based image retrieval (Wang et al. two-branch network).

    Element-wise product of the embedded branches followed by FC layers of
    512x512, 512x256 and 256x2 — the shapes paper §3 quotes.
    """
    b = GraphBuilder("tir-scn")
    q = b.input((512,), "qfv")
    d = b.input((512,), "dfv")
    h = b.elementwise(q, d, "mul", name="gate")
    h = b.dense(h, 512, activation="relu", name="fc1")
    h = b.dense(h, 256, activation="relu", name="fc2")
    h = b.dense(h, 2, name="fc3")
    out = b.score_head(h, "sigmoid_diff")
    return b.build(out)


def _build_textqa() -> Graph:
    """Short-text QA reranking (Severyn & Moschitti SIGIR'15).

    Bilinear similarity ``q^T M d``: one 200x200 FC applied to the answer
    embedding, then a dot product with the question embedding.
    """
    b = GraphBuilder("textqa-scn")
    q = b.input((200,), "qfv")
    d = b.input((200,), "dfv")
    h = b.dense(d, 200, bias=False, name="bilinear")
    h = b.dot(q, h, name="match")
    out = b.score_head(h, "sigmoid", affine=True)
    return b.build(out)


# ----------------------------------------------------------------------
# the catalog
# ----------------------------------------------------------------------
ALL_APPS: Dict[str, AppSpec] = {
    "reid": AppSpec(
        name="reid",
        full_name="Person Re-Identification (ReId)",
        modality="visual",
        description="Identify the same person across a database of stored images",
        feature_shape=(11, 32, 32),
        scn_builder=_build_reid,
        table1=Table1Row(44, 2, 2, 1, 9.8e6, 10.7 * 1e6 * 1.048576, "CUHK03"),
        fig2_batches=(500, 1000, 1500, 2000),
        eval_batch=2000,
        qcn_accuracy=0.90,
    ),
    "mir": AppSpec(
        name="mir",
        full_name="Music Information Retrieval (MIR)",
        modality="audio",
        description="Retrieve music based on styles and instrumentations",
        feature_shape=(512,),
        scn_builder=_build_mir,
        table1=Table1Row(2, 0, 3, 0, 1.05e6, 2 * 1e6 * 1.048576, "MagnaTagTune"),
        fig2_batches=(5000, 10000, 20000, 50000),
        eval_batch=50000,
        qcn_accuracy=0.91,
    ),
    "estp": AppSpec(
        name="estp",
        full_name="Exact Street to Shop (ESTP)",
        modality="visual",
        description="Online shopping of a garment item using a real-world photo",
        feature_shape=(4096,),
        scn_builder=_build_estp,
        table1=Table1Row(16, 0, 3, 0, 4.72e6, 9 * 1e6 * 1.048576, "Street2Shop"),
        fig2_batches=(5000, 10000, 20000, 50000),
        eval_batch=50000,
        qcn_accuracy=0.90,
    ),
    "tir": AppSpec(
        name="tir",
        full_name="Text-based Image Retrieval (TIR)",
        modality="text/image",
        description="Retrieve images matching a sentence-level description",
        feature_shape=(512,),
        scn_builder=_build_tir,
        table1=Table1Row(
            2, 0, 3, 1, 0.79e6, 1.5 * 1e6 * 1.048576, "MSCOCO, Flickr30K"
        ),
        fig2_batches=(5000, 10000, 20000, 50000),
        eval_batch=50000,
        qcn_accuracy=0.92,
    ),
    "textqa": AppSpec(
        name="textqa",
        full_name="Question and Answer (TextQA)",
        modality="text",
        description="Rerank short text pairs closely related to a given query",
        feature_shape=(200,),
        scn_builder=_build_textqa,
        table1=Table1Row(0.8, 0, 1, 1, 0.08e6, 0.16 * 1e6 * 1.048576, "TREC QA"),
        fig2_batches=(10000, 20000, 50000, 100000),
        eval_batch=100000,
        qcn_accuracy=0.93,
    ),
}

APP_NAMES: List[str] = list(ALL_APPS.keys())


def get_app(name: str) -> AppSpec:
    """Look up an application by short name (case-insensitive)."""
    key = name.lower()
    if key not in ALL_APPS:
        raise KeyError(f"unknown app {name!r}; choose from {APP_NAMES}")
    return ALL_APPS[key]
