"""Query-stream generation.

The query-cache evaluation (paper §6.5) samples 100 K queries from the
dataset's query pool under two popularity distributions — **uniform** and
**Zipfian** (alpha = 0.7 / 0.8) — and relies on *semantic* locality: two
distinct queries about the same intent ("a brown dog is running in the
sand" vs. "a brown dog plays at the beach") should hit the same cached
result.  We reproduce both axes: queries are drawn per-intent under the
chosen popularity law, and each query embedding is its intent centroid
plus fresh paraphrase noise, so repeated intents are similar-but-unequal
vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from repro.sim import fastpath


class ZipfSampler:
    """Bounded Zipf(alpha) over ranks ``0..n-1`` (rank 0 most popular)."""

    def __init__(self, n: int, alpha: float, seed: int = 0):
        if n <= 0:
            raise ValueError("n must be positive")
        if alpha < 0:
            raise ValueError("alpha cannot be negative")
        self.n = n
        self.alpha = alpha
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks ** (-alpha)
        self._probs = weights / weights.sum()
        self._rng = np.random.default_rng(seed)

    def sample(self, size: int) -> np.ndarray:
        """Draw `size` ranks under the Zipf law."""
        return self._rng.choice(self.n, size=size, p=self._probs)

    @property
    def probabilities(self) -> np.ndarray:
        return self._probs.copy()


@dataclass(frozen=True)
class QueryRecord:
    """One query: its embedding and ground-truth intent."""

    qfv: np.ndarray
    intent: int
    sequence: int


@dataclass
class QueryStream:
    """A reproducible stream of intelligent queries.

    ``distribution`` is ``"uniform"`` or ``"zipf"``; for Zipf, intents are
    popularity-ranked by index.  ``paraphrase_noise`` controls how far two
    queries with the same intent sit from each other (the semantic-
    similarity axis the query cache exploits).
    """

    dim: int
    n_intents: int
    distribution: str = "uniform"
    alpha: float = 0.7
    paraphrase_noise: float = 0.15
    #: per-query variation of the paraphrase noise: each query's sigma is
    #: ``paraphrase_noise * U(1 - spread, 1 + spread)``.  Real paraphrases
    #: vary in how far they drift from the intent; with spread > 0 the
    #: QCN scores spread smoothly, which is what makes the query cache's
    #: error-threshold axis (Fig. 13) a curve rather than a step.
    noise_spread: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.distribution not in ("uniform", "zipf"):
            raise ValueError(f"unknown distribution {self.distribution!r}")
        if self.dim <= 0 or self.n_intents <= 0:
            raise ValueError("dim and n_intents must be positive")
        if not 0 <= self.noise_spread < 1:
            raise ValueError("noise_spread must be in [0, 1)")

    def centroids(self) -> np.ndarray:
        """The intent centroids (deterministic for the seed)."""
        rng = np.random.default_rng(self.seed)
        return rng.normal(0.0, 1.0, (self.n_intents, self.dim)).astype(np.float32)

    def generate(self, n_queries: int) -> List[QueryRecord]:
        """Materialize ``n_queries`` records."""
        return list(self.iter_queries(n_queries))

    def iter_queries(self, n_queries: int) -> Iterator[QueryRecord]:
        """Lazily generate query records in arrival order."""
        if n_queries <= 0:
            raise ValueError("n_queries must be positive")
        rng = np.random.default_rng(self.seed + 1)
        if self.distribution == "zipf":
            intents = ZipfSampler(self.n_intents, self.alpha, seed=self.seed + 2).sample(
                n_queries
            )
        else:
            intents = rng.integers(0, self.n_intents, n_queries)
        centroids = self.centroids()
        if not self.noise_spread and fastpath.enabled():
            # one batched draw: Generator.normal fills an (n, dim)
            # array from the same variate stream as n sequential
            # (dim,) draws, so every row is bit-equal to the loop below
            noise = rng.normal(0.0, self.paraphrase_noise, (n_queries, self.dim))
            qfvs = (centroids[intents] + noise).astype(np.float32)
            for i in range(n_queries):
                yield QueryRecord(
                    qfv=qfvs[i], intent=int(intents[i]), sequence=i
                )
            return
        for i in range(n_queries):
            intent = int(intents[i])
            sigma = self.paraphrase_noise
            if self.noise_spread:
                sigma *= rng.uniform(1 - self.noise_spread, 1 + self.noise_spread)
            noise = rng.normal(0.0, sigma, self.dim)
            qfv = (centroids[intent] + noise).astype(np.float32)
            yield QueryRecord(qfv=qfv, intent=intent, sequence=i)

    def intent_probabilities(self) -> np.ndarray:
        """The popularity law over intents."""
        if self.distribution == "zipf":
            return ZipfSampler(self.n_intents, self.alpha).probabilities
        return np.full(self.n_intents, 1.0 / self.n_intents)
