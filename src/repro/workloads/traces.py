"""Query-trace capture and replay (paper §5).

The paper's methodology is trace-driven: "we collect the query traces
from the applications running on the baseline GPU+SSD system, and pass
them as input to the query engine in our simulator".  This module
provides that plumbing:

* :func:`capture_trace` — turns a :class:`~repro.workloads.queries.
  QueryStream` into a timestamped trace (Poisson arrivals at a chosen
  offered rate, the standard open-loop model);
* byte-level serialization so traces can be saved and re-fed;
* :func:`replay_trace` — an open-loop single-server FIFO replay against
  any per-query service-time function (a GPU+SSD cost model, a DeepStore
  level, a cache-fronted device), producing the latency distribution —
  the quantity a shared storage service actually cares about.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from typing import Callable, List

import numpy as np

from repro.workloads.queries import QueryStream


@dataclass(frozen=True)
class TracedQuery:
    """One trace entry: arrival time + the query itself."""

    arrival_s: float
    qfv: np.ndarray
    intent: int


@dataclass
class QueryTrace:
    """A reproducible, serializable stream of timestamped queries."""

    app: str
    queries: List[TracedQuery] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.queries)

    @property
    def duration_s(self) -> float:
        return self.queries[-1].arrival_s if self.queries else 0.0

    @property
    def offered_qps(self) -> float:
        if len(self.queries) < 2 or self.duration_s == 0:
            return 0.0
        return len(self.queries) / self.duration_s

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to a compact npz payload."""
        buffer = io.BytesIO()
        np.savez(
            buffer,
            header=np.frombuffer(
                json.dumps({"app": self.app, "n": len(self.queries)}).encode(),
                dtype=np.uint8,
            ),
            arrivals=np.array([q.arrival_s for q in self.queries]),
            intents=np.array([q.intent for q in self.queries], dtype=np.int64),
            qfvs=np.stack([q.qfv for q in self.queries]) if self.queries
            else np.zeros((0, 0), dtype=np.float32),
        )
        return buffer.getvalue()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "QueryTrace":
        data = np.load(io.BytesIO(blob))
        header = json.loads(bytes(data["header"]).decode())
        trace = cls(app=header["app"])
        for arrival, intent, qfv in zip(
            data["arrivals"], data["intents"], data["qfvs"]
        ):
            trace.queries.append(
                TracedQuery(float(arrival), qfv.astype(np.float32), int(intent))
            )
        return trace


def capture_trace(
    stream: QueryStream,
    n_queries: int,
    offered_qps: float,
    app: str = "",
    seed: int = 0,
) -> QueryTrace:
    """Capture a Poisson-arrival trace from a query stream."""
    if offered_qps <= 0:
        raise ValueError("offered_qps must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / offered_qps, n_queries)
    arrivals = np.cumsum(gaps)
    trace = QueryTrace(app=app or f"dim{stream.dim}")
    for record, arrival in zip(stream.iter_queries(n_queries), arrivals):
        trace.queries.append(
            TracedQuery(float(arrival), record.qfv, record.intent)
        )
    return trace


@dataclass
class LatencyDistribution:
    """Summary of per-query latencies from a replay."""

    latencies_s: np.ndarray
    busy_s: float
    span_s: float

    @property
    def mean_s(self) -> float:
        return float(self.latencies_s.mean()) if len(self.latencies_s) else 0.0

    def percentile(self, p: float) -> float:
        """The p-th percentile latency in seconds."""
        if not len(self.latencies_s):
            return 0.0
        return float(np.percentile(self.latencies_s, p))

    @property
    def p50_s(self) -> float:
        return self.percentile(50)

    @property
    def p99_s(self) -> float:
        return self.percentile(99)

    @property
    def utilization(self) -> float:
        return self.busy_s / self.span_s if self.span_s > 0 else 0.0

    @property
    def saturated(self) -> bool:
        """Whether the server could not keep up with the offered load."""
        return self.utilization > 0.99


def replay_trace(
    trace: QueryTrace,
    service_seconds: Callable[[TracedQuery], float],
    servers: int = 1,
) -> LatencyDistribution:
    """Open-loop FIFO replay of a trace against a service-time model.

    ``service_seconds`` is invoked per query (it may consult a cache and
    therefore be stateful).  ``servers > 1`` models a pool of identical
    devices fed from one queue.
    """
    if servers <= 0:
        raise ValueError("servers must be positive")
    if not trace.queries:
        return LatencyDistribution(np.zeros(0), 0.0, 0.0)
    free_at = [0.0] * servers
    latencies = []
    busy = 0.0
    finish_last = 0.0
    for query in trace.queries:
        server = min(range(servers), key=free_at.__getitem__)
        start = max(query.arrival_s, free_at[server])
        service = service_seconds(query)
        if service < 0:
            raise ValueError("service time cannot be negative")
        finish = start + service
        free_at[server] = finish
        latencies.append(finish - query.arrival_s)
        busy += service
        finish_last = max(finish_last, finish)
    span = finish_last - trace.queries[0].arrival_s
    return LatencyDistribution(
        latencies_s=np.asarray(latencies), busy_s=busy / servers, span_s=span
    )
