"""Declarative fault plans.

A :class:`FaultPlan` says *what* can go wrong and *how often*; it holds
no runtime state and no randomness.  Pairing a plan with a seed inside a
:class:`~repro.faults.injector.FaultInjector` fully determines every
injected event, which is the property the reliability benchmarks lean
on: ``(seed, plan)`` → bit-identical
:class:`~repro.analysis.reliability.ReliabilityReport`.

Rates are per-operation probabilities (a read-retry rate of ``1e-3``
means one page read in a thousand needs at least one extra array pass).
Hard failures come in two forms: scheduled (:class:`ComponentFailure`
records naming a component and a failure time) and ambient (a
probability that a component is dead from the start of the run, drawn
deterministically per component from the seed).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

#: component kinds a :class:`ComponentFailure` may name
FAILURE_KINDS = ("chip", "plane", "accelerator", "shard")


@dataclass(frozen=True)
class ComponentFailure:
    """A scheduled hard failure of one component.

    ``kind`` selects the component class; the coordinate fields that do
    not apply are left ``None`` (an accelerator failure uses ``index``
    — for channel-level placements that is the channel number).  The
    component is considered dead at every simulated time ``>= at_s``.

    ``kind="shard"`` names one replica SSD of one cluster shard
    (``index`` is the shard, ``replica`` the copy, default 0 — the
    primary).  Shard failures are consumed by the cluster coordinator,
    not the per-device injector: the coordinator fails over to a
    surviving replica, so the query stays *correct* and only pays the
    detection ladder.
    """

    kind: str
    at_s: float = 0.0
    channel: Optional[int] = None
    chip: Optional[int] = None
    plane: Optional[int] = None
    index: Optional[int] = None
    replica: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ValueError(f"unknown failure kind {self.kind!r}")
        if self.at_s < 0:
            raise ValueError("failure time cannot be negative")
        if self.kind == "chip" and (self.channel is None or self.chip is None):
            raise ValueError("chip failures need channel and chip")
        if self.kind == "plane" and (
            self.channel is None or self.chip is None or self.plane is None
        ):
            raise ValueError("plane failures need channel, chip and plane")
        if self.kind == "accelerator" and self.index is None:
            raise ValueError("accelerator failures need an index")
        if self.kind == "shard":
            if self.index is None:
                raise ValueError("shard failures need an index (the shard)")
            if self.replica is None:
                object.__setattr__(self, "replica", 0)
            elif self.replica < 0:
                raise ValueError("replica cannot be negative")


@dataclass(frozen=True)
class FaultPlan:
    """Everything the injector may do to a run.

    The default instance is the **zero plan**: every rate is 0 and no
    failures are scheduled, and the hooks in the SSD/accelerator models
    skip all fault bookkeeping so timing stays bit-identical to a run
    with no injector at all.
    """

    #: probability one page array read needs ECC retry passes
    read_retry_rate: float = 0.0
    #: maximum extra array-read passes one page read can cost
    read_retry_max: int = 3
    #: probability one channel-bus page transfer fails CRC (re-transfer)
    crc_error_rate: float = 0.0
    #: maximum re-transfers of one page before the controller gives up
    crc_retry_max: int = 2
    #: probability one page program fails verify (reprogram passes)
    program_fail_rate: float = 0.0
    #: maximum extra program passes one page write can cost
    program_retry_max: int = 3
    #: probability a chip is dead from t=0 (ambient infant mortality)
    chip_failure_rate: float = 0.0
    #: probability an accelerator is dead from t=0
    accel_failure_rate: float = 0.0
    #: scheduled hard failures
    failures: Tuple[ComponentFailure, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for name in (
            "read_retry_rate",
            "crc_error_rate",
            "program_fail_rate",
            "chip_failure_rate",
            "accel_failure_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be a probability, got {rate}")
        if self.read_retry_max < 1:
            raise ValueError("read_retry_max must be at least 1")
        if self.crc_retry_max < 1:
            raise ValueError("crc_retry_max must be at least 1")
        if self.program_retry_max < 1:
            raise ValueError("program_retry_max must be at least 1")
        if not isinstance(self.failures, tuple):
            object.__setattr__(self, "failures", tuple(self.failures))

    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "FaultPlan":
        """The zero plan (explicit spelling of the default)."""
        return cls()

    @property
    def is_zero(self) -> bool:
        """True when the plan can never inject anything."""
        return (
            self.read_retry_rate == 0.0
            and self.crc_error_rate == 0.0
            and self.program_fail_rate == 0.0
            and self.chip_failure_rate == 0.0
            and self.accel_failure_rate == 0.0
            and not self.failures
        )

    @property
    def injects_read_faults(self) -> bool:
        """Whether page reads need a fault check at all."""
        return self.read_retry_rate > 0.0

    @property
    def injects_transfer_faults(self) -> bool:
        """Whether bus transfers need a fault check at all."""
        return self.crc_error_rate > 0.0

    @property
    def injects_program_faults(self) -> bool:
        """Whether page programs (the write path) need a fault check."""
        return self.program_fail_rate > 0.0

    @property
    def injects_hard_failures(self) -> bool:
        """Whether any component can be dead during the run."""
        return (
            self.chip_failure_rate > 0.0
            or self.accel_failure_rate > 0.0
            or bool(self.failures)
        )

    # ------------------------------------------------------------------
    def with_failure(self, failure: ComponentFailure) -> "FaultPlan":
        """Copy of this plan with one more scheduled failure."""
        return replace(self, failures=self.failures + (failure,))

    def fail_accelerator(self, index: int, at_s: float = 0.0) -> "FaultPlan":
        """Copy with accelerator ``index`` hard-failed at ``at_s``."""
        return self.with_failure(
            ComponentFailure(kind="accelerator", index=index, at_s=at_s)
        )

    def fail_chip(self, channel: int, chip: int, at_s: float = 0.0) -> "FaultPlan":
        """Copy with one chip hard-failed at ``at_s``."""
        return self.with_failure(
            ComponentFailure(kind="chip", channel=channel, chip=chip, at_s=at_s)
        )

    def fail_shard(
        self, shard: int, replica: int = 0, at_s: float = 0.0
    ) -> "FaultPlan":
        """Copy with one replica SSD of cluster shard ``shard`` dead."""
        return self.with_failure(
            ComponentFailure(kind="shard", index=shard, replica=replica, at_s=at_s)
        )

    def dead_shard_replicas(self) -> Tuple[Tuple[int, int], ...]:
        """(shard, replica) pairs this plan hard-fails, sorted."""
        return tuple(
            sorted(
                {
                    (f.index, f.replica)
                    for f in self.failures
                    if f.kind == "shard"
                    and f.index is not None
                    and f.replica is not None
                }
            )
        )

    def describe(self) -> str:
        """One-line human summary used by reports and the CLI."""
        if self.is_zero:
            return "zero-fault plan"
        parts = []
        if self.read_retry_rate:
            parts.append(
                f"read-retry {self.read_retry_rate:g} (<= {self.read_retry_max} passes)"
            )
        if self.crc_error_rate:
            parts.append(f"bus-CRC {self.crc_error_rate:g}")
        if self.program_fail_rate:
            parts.append(
                f"program-fail {self.program_fail_rate:g}"
                f" (<= {self.program_retry_max} passes)"
            )
        if self.chip_failure_rate:
            parts.append(f"chip-death {self.chip_failure_rate:g}")
        if self.accel_failure_rate:
            parts.append(f"accel-death {self.accel_failure_rate:g}")
        if self.failures:
            parts.append(f"{len(self.failures)} scheduled failure(s)")
        return ", ".join(parts)
