"""Deterministic runtime fault injection.

The injector answers the same questions real reliability hardware poses:
*does this array read decode first pass?* (if not, how many ECC retry
passes?), *does this bus transfer pass CRC?*, and *is this component
still alive?*  Every answer is a pure function of ``(seed, epoch,
site)`` — ``site`` being the structural coordinates of the operation
(channel/chip/plane/block/page, or an accelerator index) — computed with
a splitmix64-style hash.  That gives three properties the rest of the
repo depends on:

1. **Determinism** — two runs with the same seed and plan inject the
   exact same faults, so reliability reports are bit-identical.
2. **Order independence** — the draw for one page does not depend on
   how events interleaved before it, so adding concurrency elsewhere
   does not silently reshuffle the fault pattern.
3. **Zero-cost idle** — a zero plan never draws, and the SSD hooks
   skip the injector entirely, keeping fault-free timing bit-identical
   to a run with no injector object at all.

Within one epoch, re-reading the same page reproduces the same retry
count — matching real NAND, where a marginal page stays marginal until
rewritten.  Callers model independent trials (e.g. successive queries)
by advancing the epoch via :meth:`FaultInjector.begin_epoch`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.faults.plan import FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.ssd.geometry import PhysicalPageAddress

_MASK64 = (1 << 64) - 1

# draw domains keep the hash streams for different fault classes disjoint
_DOMAIN_READ_RETRY = 1
_DOMAIN_CRC = 2
_DOMAIN_CHIP_AMBIENT = 3
_DOMAIN_ACCEL_AMBIENT = 4
_DOMAIN_READ_RETRY_DEPTH = 5
_DOMAIN_CRC_DEPTH = 6
_DOMAIN_PROGRAM = 7
_DOMAIN_PROGRAM_DEPTH = 8
# the cluster retry ladder's jitter and the chaos harness's crash times
# draw from their own domains: merging a chaos schedule into a plan (or
# enabling retries) can never reshuffle the read/program fault pattern
# of an otherwise identical run
_DOMAIN_RETRY_JITTER = 9
_DOMAIN_CRASH_TIME = 10


def _mix(*values: int) -> int:
    """Splitmix64-style avalanche over a tuple of integers.

    Stable across processes and Python versions (unlike ``hash`` on
    strings) and cheap enough to call per simulated page read.
    """
    x = 0x9E3779B97F4A7C15
    for v in values:
        x = ((x ^ (v & _MASK64)) * 0xBF58476D1CE4E5B9) & _MASK64
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
        x ^= x >> 31
    return x


def _unit(*values: int) -> float:
    """A deterministic uniform draw in [0, 1) keyed by ``values``."""
    return _mix(*values) / float(1 << 64)


def retry_jitter_unit(seed: int, *key: int) -> float:
    """Uniform [0, 1) draw for one retry-ladder jitter decision.

    Keyed in the dedicated ``_DOMAIN_RETRY_JITTER`` hash domain so the
    retry subsystem's randomness is byte-independent of every read /
    CRC / program fault stream: turning retries on (or changing their
    keys) leaves an otherwise identical run's fault pattern untouched.
    """
    return _unit(seed, _DOMAIN_RETRY_JITTER, *key)


def crash_time_unit(seed: int, *key: int) -> float:
    """Uniform [0, 1) draw for one chaos-schedule crash time.

    Same isolation contract as :func:`retry_jitter_unit`, in the
    ``_DOMAIN_CRASH_TIME`` domain: generating a chaos schedule from a
    seed never perturbs the device-level fault draws that same seed
    produces.
    """
    return _unit(seed, _DOMAIN_CRASH_TIME, *key)


class _CounterField:
    """Attribute access over a named registry counter.

    Keeps the original ``counters.page_reads += 1`` call sites working
    while the storage lives in a shared :class:`MetricsRegistry`.
    """

    def __set_name__(self, owner, name: str) -> None:
        self._name = name

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return obj._counters[self._name].value

    def __set__(self, obj, value: int) -> None:
        obj._counters[self._name].value = int(value)


class ReliabilityCounters:
    """Tallies of what the injector actually did during a run.

    Backed by a :class:`~repro.obs.MetricsRegistry` (one ``faults.*``
    counter per field) rather than one-off integers, so a run that
    shares a registry between the SSD models and the injector gets the
    fault tallies in the same ``snapshot()`` as everything else.  With
    no registry given, a private one is created — the standalone
    behaviour is unchanged.
    """

    FIELDS = (
        "page_reads",
        "pages_with_retry",
        "retry_passes",
        "transfers",
        "transfers_with_crc_error",
        "crc_retransfers",
        "page_programs",
        "programs_with_retry",
        "program_retries",
        "failed_reads",
        "dispatch_timeouts",
    )

    page_reads = _CounterField()
    pages_with_retry = _CounterField()
    retry_passes = _CounterField()
    transfers = _CounterField()
    transfers_with_crc_error = _CounterField()
    crc_retransfers = _CounterField()
    page_programs = _CounterField()
    programs_with_retry = _CounterField()
    program_retries = _CounterField()
    failed_reads = _CounterField()
    dispatch_timeouts = _CounterField()

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            name: self.registry.counter(f"faults.{name}")
            for name in self.FIELDS
        }

    def as_dict(self) -> Dict[str, int]:
        """Counter snapshot for reports and tests."""
        return {name: getattr(self, name) for name in self.FIELDS}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReliabilityCounters):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"ReliabilityCounters({fields})"

    @property
    def observed_retry_rate(self) -> float:
        """Fraction of page reads that needed at least one retry."""
        if self.page_reads == 0:
            return 0.0
        return self.pages_with_retry / self.page_reads


@dataclass
class FaultInjector:
    """A :class:`FaultPlan` bound to a seed, with runtime counters.

    Pass ``metrics`` to tally into a shared registry (the counters then
    appear as ``faults.*`` in that registry's snapshot alongside the SSD
    and engine metrics); otherwise the counters keep a private one.
    """

    plan: FaultPlan = field(default_factory=FaultPlan)
    seed: int = 0
    counts: ReliabilityCounters = field(default_factory=ReliabilityCounters)
    metrics: Optional[MetricsRegistry] = None

    def __post_init__(self) -> None:
        if self.metrics is not None:
            self.counts = ReliabilityCounters(registry=self.metrics)
        self._epoch = 0
        self._dead_chips: Dict[Tuple[int, int], float] = {}
        self._dead_planes: Dict[Tuple[int, int, int], float] = {}
        self._dead_accels: Dict[int, float] = {}
        for failure in self.plan.failures:
            if failure.kind == "chip":
                key2 = (failure.channel, failure.chip)
                self._dead_chips[key2] = min(
                    self._dead_chips.get(key2, failure.at_s), failure.at_s
                )
            elif failure.kind == "plane":
                key3 = (failure.channel, failure.chip, failure.plane)
                self._dead_planes[key3] = min(
                    self._dead_planes.get(key3, failure.at_s), failure.at_s
                )
            elif failure.kind == "accelerator":
                self._dead_accels[failure.index] = min(
                    self._dead_accels.get(failure.index, failure.at_s),
                    failure.at_s,
                )
            # "shard" failures are cluster-level: the coordinator, not
            # the per-device injector, consumes them (replica failover)

    # ------------------------------------------------------------------
    # epochs
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Current draw epoch (mixed into every fault-site key)."""
        return self._epoch

    def begin_epoch(self, epoch: int) -> None:
        """Start a new independent draw epoch (e.g. the next query)."""
        if epoch < 0:
            raise ValueError("epoch cannot be negative")
        self._epoch = epoch

    # ------------------------------------------------------------------
    # soft faults (timing perturbations)
    # ------------------------------------------------------------------
    def page_read_retries(self, address: PhysicalPageAddress) -> int:
        """Extra array-read passes this page read needs (0 = clean).

        Models ECC read-retry escalation: with probability
        ``read_retry_rate`` the first sense fails and the plane re-arms
        with shifted read-reference voltages, for a uniform 1..max extra
        passes.  Counted into :attr:`counts`.

        The occurrence draw and the depth draw use independent hash
        domains, so the set of faulting sites at a lower rate is a
        strict subset of the set at a higher rate *with identical
        depths on the common sites* — which is what makes fault-rate
        sweeps (``bench_ext_fault_tolerance``) monotone per-realization
        rather than only in expectation.
        """
        self.counts.page_reads += 1
        plan = self.plan
        if plan.read_retry_rate <= 0.0:
            return 0
        site = (
            address.channel,
            address.chip,
            address.plane,
            address.block,
            address.page,
        )
        u = _unit(self.seed, self._epoch, _DOMAIN_READ_RETRY, *site)
        if u >= plan.read_retry_rate:
            return 0
        depth_u = _unit(self.seed, self._epoch, _DOMAIN_READ_RETRY_DEPTH, *site)
        depth = 1 + int(depth_u * plan.read_retry_max)
        depth = min(depth, plan.read_retry_max)
        self.counts.pages_with_retry += 1
        self.counts.retry_passes += depth
        return depth

    def transfer_crc_retries(self, address: PhysicalPageAddress) -> int:
        """Extra bus transfers of this page after CRC failures.

        Occurrence and depth use independent hash domains (see
        :meth:`page_read_retries`) so realized CRC cost is monotone in
        ``crc_error_rate``.
        """
        self.counts.transfers += 1
        plan = self.plan
        if plan.crc_error_rate <= 0.0:
            return 0
        site = (
            address.channel,
            address.chip,
            address.plane,
            address.block,
            address.page,
        )
        u = _unit(self.seed, self._epoch, _DOMAIN_CRC, *site)
        if u >= plan.crc_error_rate:
            return 0
        depth_u = _unit(self.seed, self._epoch, _DOMAIN_CRC_DEPTH, *site)
        depth = 1 + int(depth_u * plan.crc_retry_max)
        depth = min(depth, plan.crc_retry_max)
        self.counts.transfers_with_crc_error += 1
        self.counts.crc_retransfers += depth
        return depth

    def page_program_retries(self, address: PhysicalPageAddress) -> int:
        """Extra program passes this page write needs (0 = clean).

        Models program-verify failure on the ingest write path: with
        probability ``program_fail_rate`` the verify after the first
        program pulse fails and the controller re-programs, for a
        uniform 1..max extra passes.  Occurrence and depth use hash
        domains disjoint from every read/transfer fault class, so
        enabling write faults never reshuffles the read-fault pattern
        of an otherwise identical run.
        """
        self.counts.page_programs += 1
        plan = self.plan
        if plan.program_fail_rate <= 0.0:
            return 0
        site = (
            address.channel,
            address.chip,
            address.plane,
            address.block,
            address.page,
        )
        u = _unit(self.seed, self._epoch, _DOMAIN_PROGRAM, *site)
        if u >= plan.program_fail_rate:
            return 0
        depth_u = _unit(self.seed, self._epoch, _DOMAIN_PROGRAM_DEPTH, *site)
        depth = 1 + int(depth_u * plan.program_retry_max)
        depth = min(depth, plan.program_retry_max)
        self.counts.programs_with_retry += 1
        self.counts.program_retries += depth
        return depth

    # ------------------------------------------------------------------
    # hard failures
    # ------------------------------------------------------------------
    def chip_dead(self, channel: int, chip: int, now: float = 0.0) -> bool:
        """Whether one flash chip is failed at simulated time ``now``."""
        at = self._dead_chips.get((channel, chip))
        if at is not None and now >= at:
            return True
        rate = self.plan.chip_failure_rate
        if rate > 0.0:
            return _unit(self.seed, _DOMAIN_CHIP_AMBIENT, channel, chip) < rate
        return False

    def plane_dead(
        self, channel: int, chip: int, plane: int, now: float = 0.0
    ) -> bool:
        """Whether one plane is failed (dead chips kill all planes)."""
        at = self._dead_planes.get((channel, chip, plane))
        if at is not None and now >= at:
            return True
        return self.chip_dead(channel, chip, now)

    def accelerator_dead(self, index: int, now: float = 0.0) -> bool:
        """Whether accelerator ``index`` is failed at time ``now``."""
        at = self._dead_accels.get(index)
        if at is not None and now >= at:
            return True
        rate = self.plan.accel_failure_rate
        if rate > 0.0:
            return _unit(self.seed, _DOMAIN_ACCEL_AMBIENT, index) < rate
        return False

    def failed_accelerators(self, count: int, now: float = 0.0) -> List[int]:
        """Indices of dead accelerators among ``count`` instances."""
        if not self.plan.injects_hard_failures:
            return []
        return [i for i in range(count) if self.accelerator_dead(i, now)]

    def note_failed_read(self) -> None:
        """Record one page read lost to a dead chip/plane."""
        self.counts.failed_reads += 1

    def note_dispatch_timeout(self) -> None:
        """Record one accelerator dispatch attempt that timed out."""
        self.counts.dispatch_timeouts += 1

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether this injector can perturb anything at all."""
        return not self.plan.is_zero

    def scheduled_dead_accels(self) -> Set[int]:
        """Accelerators with scheduled (time-based) failures."""
        return set(self._dead_accels)


def maybe_injector(
    plan: Optional[FaultPlan], seed: int = 0
) -> Optional[FaultInjector]:
    """``None`` for missing/zero plans, else a bound injector.

    The hooks in the SSD models treat ``injector is None`` as the
    zero-overhead fast path, so builders funnel plan construction
    through this helper to guarantee idle plans cost nothing.
    """
    if plan is None or plan.is_zero:
        return None
    return FaultInjector(plan=plan, seed=seed)
