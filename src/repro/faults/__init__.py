"""Fault injection and reliability modeling for the DeepStore stack.

Every figure the repository reproduces assumes flawless hardware: flash
pages decode on the first array read, channel transfers never see a CRC
error, and no chip, plane, or accelerator ever dies.  At production
scale those events are the steady state, not the exception, so this
package adds a deterministic fault layer that the SSD and accelerator
models consult on every operation:

* :class:`FaultPlan` — a declarative, hashable description of what can
  go wrong: NAND read-retry (ECC escalation) rates, channel-bus CRC
  error rates, and hard failures of chips, planes, and accelerators at
  configured times or ambient rates.
* :class:`FaultInjector` — the runtime object bound to one plan and one
  seed.  Every draw is a pure function of ``(seed, site, occurrence)``,
  so injection is bit-identical across runs and independent of event
  interleaving; a zero-fault plan short-circuits to the no-injector
  fast path and perturbs nothing.

The injector plugs into :mod:`repro.ssd.flash` (plane re-arm for retry
passes), :mod:`repro.ssd.controller` (bus re-transfer on CRC error,
failed reads on dead chips), and :mod:`repro.core.event_query`
(accelerator failures with degraded-mode stripe remapping).
"""

from repro.faults.injector import (
    FaultInjector,
    ReliabilityCounters,
    crash_time_unit,
    retry_jitter_unit,
)
from repro.faults.plan import ComponentFailure, FaultPlan

__all__ = [
    "FaultPlan",
    "ComponentFailure",
    "FaultInjector",
    "ReliabilityCounters",
    "crash_time_unit",
    "retry_jitter_unit",
]
