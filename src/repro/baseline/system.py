"""The pipelined GPU+SSD query system.

Per batch, the system (1) reads feature records from the SSD to host
memory, (2) copies them to the GPU, and (3) runs the SCN.  The copy and
compute of consecutive batches overlap via CUDA streams, but the SSD read
is so large that prefetching "barely improves the performance" (paper §3)
— steady-state batch time is ``ssd_read + max(memcpy, compute)``.

Fig. 2 reports the three components' shares of total execution time;
:class:`BatchBreakdown` carries them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.baseline.gpu import GpuModel, GpuSpec, VOLTA_TITAN_V
from repro.baseline.host import HostSystem
from repro.nn.graph import Graph
from repro.workloads.apps import AppSpec


@dataclass
class BatchBreakdown:
    """Per-batch component times of the GPU+SSD pipeline (Fig. 2)."""

    app: str
    gpu: str
    batch: int
    ssd_read_s: float
    memcpy_s: float
    compute_s: float

    @property
    def serial_total_s(self) -> float:
        """Sum of components — the basis of Fig. 2's percentage stacks."""
        return self.ssd_read_s + self.memcpy_s + self.compute_s

    @property
    def pipelined_total_s(self) -> float:
        """Steady-state batch latency with copy/compute overlap."""
        return self.ssd_read_s + max(self.memcpy_s, self.compute_s)

    @property
    def io_fraction(self) -> float:
        total = self.serial_total_s
        return self.ssd_read_s / total if total > 0 else 0.0

    def fractions(self) -> dict:
        """Component shares of the serialized batch time (Fig. 2 stacks)."""
        total = self.serial_total_s
        if total <= 0:
            return {"ssd_read": 0.0, "memcpy": 0.0, "compute": 0.0}
        return {
            "ssd_read": self.ssd_read_s / total,
            "memcpy": self.memcpy_s / total,
            "compute": self.compute_s / total,
        }


@dataclass
class QueryCost:
    """Cost of scanning a whole feature database for one query."""

    seconds: float
    seconds_per_feature: float
    energy_j: float
    breakdown: BatchBreakdown

    @property
    def power_w(self) -> float:
        return self.energy_j / self.seconds if self.seconds > 0 else 0.0


class GpuSsdSystem:
    """The paper's state-of-the-art comparison system."""

    def __init__(
        self,
        gpu: GpuSpec = VOLTA_TITAN_V,
        host: Optional[HostSystem] = None,
        num_ssds: int = 1,
    ):
        if num_ssds <= 0:
            raise ValueError("num_ssds must be positive")
        self.gpu_spec = gpu
        self.gpu = GpuModel(gpu)
        self.host = host or HostSystem()
        self.num_ssds = num_ssds

    # ------------------------------------------------------------------
    def batch_breakdown(
        self, app: AppSpec, batch: Optional[int] = None, graph: Optional[Graph] = None
    ) -> BatchBreakdown:
        """Component times for one batch of ``app`` (Fig. 2's unit)."""
        batch = batch or app.eval_batch
        graph = graph or app.build_scn()
        ssd_read = (
            self.host.ssd_read_seconds(app.feature_bytes, batch) / self.num_ssds
        )
        memcpy = self.host.memcpy_seconds(app.feature_bytes, batch)
        compute = self.gpu.scn_batch_seconds(graph, batch)
        return BatchBreakdown(
            app=app.name,
            gpu=self.gpu_spec.name,
            batch=batch,
            ssd_read_s=ssd_read,
            memcpy_s=memcpy,
            compute_s=compute,
        )

    def seconds_per_feature(
        self, app: AppSpec, batch: Optional[int] = None
    ) -> float:
        """Steady-state pipelined time per database feature."""
        bd = self.batch_breakdown(app, batch)
        return bd.pipelined_total_s / bd.batch

    def query_cost(
        self, app: AppSpec, n_features: int, batch: Optional[int] = None
    ) -> QueryCost:
        """Scan ``n_features`` database vectors with one query."""
        if n_features <= 0:
            raise ValueError("n_features must be positive")
        bd = self.batch_breakdown(app, batch)
        seconds = bd.pipelined_total_s * (n_features / bd.batch)
        power = (
            self.gpu_spec.power_w
            + self.host.host_power_w
            + self.host.ssd_power_w * self.num_ssds
        )
        return QueryCost(
            seconds=seconds,
            seconds_per_feature=seconds / n_features,
            energy_j=seconds * power,
            breakdown=bd,
        )

    def gpu_only_power_w(self) -> float:
        """The power term the paper's Fig. 11 normalizes against."""
        return self.gpu_spec.power_w
