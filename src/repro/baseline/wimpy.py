"""In-SSD wimpy-core baseline.

Existing in-storage computing systems run computation on the SSD
controller's embedded CPU.  The paper evaluates a "high-end 8-core
ARM-A57" (§6.2) and finds it 4.5-22.8x slower than the GPU+SSD system —
the motivation for real in-storage accelerators (Observation 2).

The model is a simple sustained-FLOPs estimate: NEON fp32 FMA throughput
across cores, derated by an achievable-efficiency factor for the small,
cache-unfriendly GEMMs of similarity networks, racing the SSD's internal
bandwidth (the cores sit behind the DRAM, so they do enjoy internal
bandwidth — compute, not I/O, is their bottleneck).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.graph import Graph
from repro.workloads.apps import AppSpec

GFLOP = 1e9


@dataclass(frozen=True)
class WimpyCoreSpec:
    """Embedded CPU parameters."""

    name: str
    cores: int
    frequency_hz: float
    #: fp32 FLOPs per cycle per core (NEON: 4-wide FMA = 8 FLOPs)
    flops_per_cycle: float
    #: sustained fraction of peak on SCN workloads
    efficiency: float = 0.2
    power_w: float = 15.0

    @property
    def peak_flops(self) -> float:
        return self.cores * self.frequency_hz * self.flops_per_cycle

    @property
    def effective_flops(self) -> float:
        return self.peak_flops * self.efficiency


ARM_A57_OCTA = WimpyCoreSpec(
    name="8-core ARM Cortex-A57",
    cores=8,
    frequency_hz=2.0e9,
    flops_per_cycle=8.0,
)


class WimpyCoreModel:
    """Query-time model for SCN execution on the embedded cores."""

    def __init__(self, spec: WimpyCoreSpec = ARM_A57_OCTA, internal_bandwidth: float = 25.6e9):
        if internal_bandwidth <= 0:
            raise ValueError("internal bandwidth must be positive")
        self.spec = spec
        self.internal_bandwidth = internal_bandwidth

    def seconds_per_feature(self, app: AppSpec, graph: Graph | None = None) -> float:
        """Per-feature SCN time: max of compute and internal I/O."""
        graph = graph or app.build_scn()
        compute = graph.total_flops() / self.spec.effective_flops
        io = app.feature_bytes / self.internal_bandwidth
        return max(compute, io)

    def query_seconds(self, app: AppSpec, n_features: int) -> float:
        """Full-database scan time for one query on the embedded cores."""
        if n_features <= 0:
            raise ValueError("n_features must be positive")
        return self.seconds_per_feature(app) * n_features
