"""Host-side storage and PCIe model for the baseline.

The host reads feature-vector records from the SSD over NVMe (3.2 GB/s
measured sequential) and copies staged batches to the GPU over PCIe.
Per-record reads carry a fixed host-path overhead (NVMe command
processing, filesystem metadata, block-layer bookkeeping) modelled as
equivalent extra bytes per record — small-feature workloads therefore see
a lower effective bandwidth, which is one reason they are the most
I/O-dominated rows of Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass

GB = 1e9


@dataclass(frozen=True)
class HostSystem:
    """Host/GPU interconnect and storage-path parameters (paper §6.1)."""

    #: measured external sequential read bandwidth of the SSD
    ssd_bandwidth: float = 3.2 * GB
    #: effective host-to-device copy bandwidth (PCIe 3.0 x16, pinned)
    pcie_bandwidth: float = 12.0 * GB
    #: per-batch I/O submission/completion overhead
    io_overhead_s: float = 30e-6
    #: fixed host-path cost per feature record, expressed in equivalent
    #: bytes at SSD bandwidth (calibration constant; see module docstring)
    record_overhead_bytes: int = 512
    #: host (CPU package + DRAM) power attributable to the scan
    host_power_w: float = 80.0
    #: SSD active-read power
    ssd_power_w: float = 12.0

    def __post_init__(self) -> None:
        if self.ssd_bandwidth <= 0 or self.pcie_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.record_overhead_bytes < 0:
            raise ValueError("record overhead cannot be negative")

    # ------------------------------------------------------------------
    def feature_read_bytes(self, feature_bytes: int) -> int:
        """Effective bytes charged per feature record."""
        if feature_bytes <= 0:
            raise ValueError("feature_bytes must be positive")
        return feature_bytes + self.record_overhead_bytes

    def ssd_read_seconds(self, feature_bytes: int, batch: int) -> float:
        """Time to read a batch of feature records from the SSD."""
        nbytes = self.feature_read_bytes(feature_bytes) * batch
        return nbytes / self.ssd_bandwidth + self.io_overhead_s

    def memcpy_seconds(self, feature_bytes: int, batch: int) -> float:
        """Host-to-device copy of the (unpadded) batch."""
        return feature_bytes * batch / self.pcie_bandwidth
