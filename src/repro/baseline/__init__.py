"""The state-of-the-art GPU+SSD baseline (and in-SSD wimpy cores).

The paper's comparison system stores the feature database on an NVMe SSD
(Intel DC P4500, 3.2 GB/s measured) and runs the similarity comparison
network on a discrete GPU (Titan Xp "Pascal" / Titan V "Volta"), with
batches prefetched to host memory while the GPU computes the previous
batch (§3, §6.1).  The wimpy-core baseline runs the SCN on the SSD's
embedded 8-core ARM-A57 controller CPU (§6.2).
"""

from repro.baseline.gpu import GpuModel, GpuSpec, PASCAL_TITAN_XP, VOLTA_TITAN_V
from repro.baseline.host import HostSystem
from repro.baseline.system import BatchBreakdown, GpuSsdSystem, QueryCost
from repro.baseline.wimpy import WimpyCoreModel, ARM_A57_OCTA

__all__ = [
    "GpuSpec",
    "GpuModel",
    "PASCAL_TITAN_XP",
    "VOLTA_TITAN_V",
    "HostSystem",
    "GpuSsdSystem",
    "BatchBreakdown",
    "QueryCost",
    "WimpyCoreModel",
    "ARM_A57_OCTA",
]
