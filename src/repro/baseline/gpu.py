"""Roofline GPU model for SCN execution.

Per layer, time is the roofline maximum of compute (peak FLOPs scaled by
an achievable-efficiency factor) and memory traffic (device bandwidth),
plus a per-kernel launch overhead.  The efficiency factor reflects that
framework-issued GEMMs on the short-and-wide shapes of similarity
networks reach a fraction of peak — the single calibration constant of
the baseline, chosen so Fig. 2's I/O share lands in the published 56-90%
band.  Volta's higher peak makes its compute ~25-35% faster than Pascal,
matching the paper's "33% faster" observation without changing overall
query time (I/O-bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.nn.graph import Graph, LayerStats

TFLOP = 1e12
GB = 1e9


@dataclass(frozen=True)
class GpuSpec:
    """Published GPU parameters plus the achievable-efficiency factor."""

    name: str
    peak_fp32_flops: float
    mem_bandwidth: float
    power_w: float
    #: fraction of peak FLOPs sustained on SCN-shaped GEMMs
    efficiency: float = 0.25
    #: per-kernel launch/dispatch overhead
    launch_overhead_s: float = 10e-6

    def __post_init__(self) -> None:
        if self.peak_fp32_flops <= 0 or self.mem_bandwidth <= 0:
            raise ValueError("GPU peak/bandwidth must be positive")
        if not 0 < self.efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")

    @property
    def effective_flops(self) -> float:
        return self.peak_fp32_flops * self.efficiency


#: NVIDIA Titan Xp (Pascal): 12.15 TFLOPs fp32, 547.6 GB/s, 250 W TDP
PASCAL_TITAN_XP = GpuSpec(
    name="Titan Xp (Pascal)",
    peak_fp32_flops=12.15 * TFLOP,
    mem_bandwidth=547.6 * GB,
    power_w=250.0,
)

#: NVIDIA Titan V (Volta): 14.9 TFLOPs fp32, 652.8 GB/s, 250 W TDP; paper
#: measures its power with nvidia-smi during SCN execution (~235 W)
VOLTA_TITAN_V = GpuSpec(
    name="Titan V (Volta)",
    peak_fp32_flops=14.9 * TFLOP,
    mem_bandwidth=652.8 * GB,
    power_w=235.0,
)


class GpuModel:
    """Roofline execution-time model over an SCN graph."""

    def __init__(self, spec: GpuSpec):
        self.spec = spec

    def layer_seconds(self, stats: LayerStats, batch: int) -> float:
        """Time for one layer over a batch of feature vectors."""
        if batch <= 0:
            raise ValueError("batch must be positive")
        flops = stats.flops * batch
        # traffic: activations in/out once, weights once per batch
        act_bytes = 4 * batch * (
            sum(_size(s) for s in stats.input_shapes) + _size(stats.output_shape)
        )
        weight_bytes = stats.weight_params * 4
        compute_s = flops / self.spec.effective_flops if flops else 0.0
        memory_s = (act_bytes + weight_bytes) / self.spec.mem_bandwidth
        return max(compute_s, memory_s) + self.spec.launch_overhead_s

    def scn_batch_seconds(self, graph: Graph, batch: int) -> float:
        """Time to score ``batch`` database feature vectors on the GPU."""
        return sum(self.layer_seconds(s, batch) for s in graph.layer_stats())

    def scn_seconds_per_feature(self, graph: Graph, batch: int) -> float:
        """Per-feature SCN time at the given batch size."""
        return self.scn_batch_seconds(graph, batch) / batch

    def sustained_flops(self, graph: Graph, batch: int) -> float:
        """Achieved FLOP/s over the whole SCN at this batch size."""
        seconds = self.scn_batch_seconds(graph, batch)
        return graph.total_flops() * batch / seconds if seconds > 0 else 0.0


def _size(shape: Tuple[int, ...]) -> int:
    n = 1
    for s in shape:
        n *= int(s)
    return n
