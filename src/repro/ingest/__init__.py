"""Online ingest & data lifecycle: mutate the database under queries.

The paper's feature databases are write-once (``writeDB`` /
``appendDB`` only); this subsystem makes them *live*:

* :mod:`repro.ingest.store` — epoch-versioned tombstone+append store
  with O(1) snapshots and an independent oracle replay;
* :mod:`repro.ingest.writepath` — ingest traffic routed through the
  page-mapped FTL so GC pressure and write amplification are measured,
  not assumed;
* :mod:`repro.ingest.device` — :class:`LifecycleDevice`, a
  ``DeepStoreDevice`` that serves snapshot-consistent queries while
  inserts/deletes/updates land, with interference-coupled timing;
* :mod:`repro.ingest.compaction` — delta-aware probed search (index
  staleness) and the background compaction job that re-clusters it;
* :mod:`repro.ingest.lifecycle` — the end-to-end deterministic loop;
* :mod:`repro.ingest.scorecard` — the perf-gate ingest leg.
"""

from repro.ingest.compaction import (
    CompactionJob,
    CompactionPolicy,
    CompactionReport,
    DeltaAwareSearch,
)
from repro.ingest.device import LifecycleDevice
from repro.ingest.lifecycle import LifecycleConfig, LifecycleReport, run_lifecycle
from repro.ingest.scorecard import build_ingest_scorecard
from repro.ingest.store import (
    IngestError,
    MutableFeatureStore,
    Mutation,
    Snapshot,
    oracle_replay,
    oracle_topk,
)
from repro.ingest.writepath import IngestWritePath, WriteOp

__all__ = [
    "CompactionJob",
    "CompactionPolicy",
    "CompactionReport",
    "DeltaAwareSearch",
    "IngestError",
    "IngestWritePath",
    "LifecycleConfig",
    "LifecycleDevice",
    "LifecycleReport",
    "MutableFeatureStore",
    "Mutation",
    "Snapshot",
    "WriteOp",
    "build_ingest_scorecard",
    "oracle_replay",
    "oracle_topk",
    "run_lifecycle",
]
