"""The ingest write path: feature mutations through a real FTL.

The block FTL (:class:`repro.ssd.ftl.BlockFtl`) that lays out feature
databases is append-only by design — exactly the paper's model.  Live
ingest needs the *other* FTL: :class:`repro.ssd.gc.PageMappedFtl`, the
page-mapped write path with greedy GC and wear leveling.  This module
routes feature-row mutations through it so the costs a mutating
database pays are **measured from the FTL's own bookkeeping** rather
than assumed:

* inserts pack rows into logical pages; the open (partially-filled)
  page is re-programmed on every append that extends it, which is where
  small-batch ingest earns its write amplification;
* deletes decrement per-page live-row counts and TRIM pages whose rows
  are all dead, creating the invalid pages GC feeds on;
* compaction rewrites surviving rows densely (TRIM + program), paying
  bandwidth now to cut future scan cost;
* write amplification is ``PageMappedFtl.stats.write_amplification``
  verbatim, and the time of each operation combines the host-write
  model (:meth:`repro.ssd.ssd.Ssd.database_write_seconds`) with the GC
  work the operation actually triggered
  (:meth:`repro.ssd.ssd.Ssd.gc_seconds` over the stats delta).

The resulting WA also drives query interference: a background ingest
stream at raw channel fraction ``f`` occupies ``f * WA`` of the bus
(every amplified write is a real transfer), which is the offered load
handed to :class:`repro.ssd.host_io.InterferenceModel`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Sequence

from repro.faults.injector import FaultInjector
from repro.ingest.store import IngestError
from repro.ssd.ftl import DatabaseMetadata
from repro.ssd.gc import GcStats, PageMappedFtl
from repro.ssd.geometry import PhysicalPageAddress
from repro.ssd.ssd import Ssd


@dataclass(frozen=True)
class WriteOp:
    """Measured cost of one ingest operation."""

    pages_written: int
    pages_trimmed: int
    host_seconds: float
    gc_seconds: float
    relocations: int
    erases: int

    @property
    def seconds(self) -> float:
        """Total modelled time: host programs plus triggered GC."""
        return self.host_seconds + self.gc_seconds


def region_blocks_for(
    rows: int,
    feature_bytes: int,
    page_bytes: int,
    pages_per_block: int = 64,
    op_fraction: float = 0.07,
    headroom: float = 2.0,
    min_blocks: int = 64,
) -> int:
    """Erase blocks an ingest region needs to hold ``rows`` with headroom.

    The region audit: a fixed ``blocks=64`` region holds ~3968 logical
    pages, so any workload scaled past that (``--bench-scale``, large
    index builds) exhausts logical space mid-write and dies with
    :class:`IngestError` instead of running slower.  This helper applies
    the same arithmetic :class:`IngestWritePath` uses — packing rows
    into pages, then carving logical space out of
    ``blocks * pages_per_block`` after over-provisioning — and doubles
    the block count until the region holds ``headroom``× the rows'
    pages, so GC still has invalid pages to feed on at any scale.
    """
    if rows <= 0:
        raise IngestError("rows must be positive")
    if headroom < 1.0:
        raise IngestError("headroom must be at least 1.0")
    rows_per_page = max(1, page_bytes // feature_bytes)
    pages_needed = -(-rows // rows_per_page)
    blocks = max(4, min_blocks)
    while True:
        capacity = blocks * pages_per_block
        logical = min(
            int(capacity * (1 - op_fraction)), capacity - 2 * pages_per_block
        )
        if logical >= headroom * pages_needed:
            return blocks
        blocks *= 2


class IngestWritePath:
    """Feature-row mutations over a :class:`PageMappedFtl`.

    ``feature_bytes`` fixes the packing (rows per logical page).  The
    FTL covers a bounded **ingest region** (``blocks`` erase blocks of
    ``pages_per_block`` pages, page size from the SSD's geometry) rather
    than the whole drive: a mutable database lives in a dedicated
    allocation whose over-provisioning (``op_fraction``) is the knob
    trading flash capacity for write amplification — and a bounded
    region is what makes GC actually fire at benchmark scale.
    """

    def __init__(
        self,
        ssd: Ssd,
        feature_bytes: int,
        op_fraction: float = 0.07,
        blocks: int = 64,
        pages_per_block: int = 64,
        injector: Optional[FaultInjector] = None,
    ):
        if feature_bytes <= 0:
            raise IngestError("feature_bytes must be positive")
        if not 0 <= op_fraction < 1:
            raise IngestError("op_fraction must be in [0, 1)")
        self.ssd = ssd
        self.feature_bytes = feature_bytes
        geometry = ssd.config.geometry
        capacity = blocks * pages_per_block
        logical = min(
            int(capacity * (1 - op_fraction)), capacity - 2 * pages_per_block
        )
        self.ftl = PageMappedFtl(blocks, pages_per_block, logical)
        self.rows_per_page = max(1, geometry.page_bytes // feature_bytes)
        self._free_lpns: Deque[int] = deque(range(self.ftl.logical_pages))
        #: feature id -> logical page holding it
        self._row_lpn: Dict[int, int] = {}
        #: logical page -> live rows stored in it
        self._lpn_live: Dict[int, int] = {}
        self._open_lpn: Optional[int] = None
        self._open_count = 0
        self._pages_per_block = pages_per_block
        #: optional fault injector; program-verify failures on the write
        #: path cost extra program passes (charged into host_seconds)
        self.injector = injector
        self._retry_seconds = 0.0

    # ------------------------------------------------------------------
    @property
    def write_amplification(self) -> float:
        return self.ftl.stats.write_amplification

    @property
    def stats(self) -> GcStats:
        return self.ftl.stats

    @property
    def live_rows(self) -> int:
        return len(self._row_lpn)

    @property
    def free_pages(self) -> int:
        return len(self._free_lpns)

    def has_row(self, fid: int) -> bool:
        """Whether a feature id currently occupies flash pages."""
        return int(fid) in self._row_lpn

    def reset_stats(self) -> None:
        """Zero the GC counters (e.g. after seeding the base rows)."""
        self.ftl.stats = GcStats()

    def offered_load(self, raw_fraction: float) -> float:
        """Channel-bus fraction an ingest stream actually occupies.

        A stream demanding ``raw_fraction`` of the bus in host writes
        costs ``raw_fraction * WA`` once GC relocations are counted —
        the measured coupling between write pressure and query
        interference.
        """
        if not 0 <= raw_fraction <= 1:
            raise IngestError("raw_fraction must be in [0, 1]")
        return min(0.95, raw_fraction * self.write_amplification)

    # ------------------------------------------------------------------
    def append(self, ids: Sequence[int]) -> WriteOp:
        """Program the rows ``ids`` (fresh feature ids) onto flash."""
        ids = [int(i) for i in ids]
        if not ids:
            raise IngestError("append needs at least one id")
        for fid in ids:
            if fid in self._row_lpn:
                raise IngestError(f"feature id {fid} already on flash")
        before = self._snapshot_stats()
        pages = 0
        remaining = ids
        while remaining:
            if self._open_lpn is None or self._open_count >= self.rows_per_page:
                self._open_lpn = self._allocate_lpn()
                self._open_count = 0
            take = min(len(remaining), self.rows_per_page - self._open_count)
            batch, remaining = remaining[:take], remaining[take:]
            # (re-)program the open page; extending a partially filled
            # page invalidates its previous version, which is the write
            # amplification small appends genuinely pay
            self._program(self._open_lpn)
            pages += 1
            for fid in batch:
                self._row_lpn[fid] = self._open_lpn
            self._lpn_live[self._open_lpn] = (
                self._lpn_live.get(self._open_lpn, 0) + take
            )
            self._open_count += take
        return self._measure(before, pages_written=pages, pages_trimmed=0,
                             rows=len(ids))

    def delete(self, ids: Sequence[int]) -> WriteOp:
        """Drop rows; TRIM pages whose rows are now all dead."""
        ids = [int(i) for i in ids]
        if not ids:
            raise IngestError("delete needs at least one id")
        before = self._snapshot_stats()
        trimmed = 0
        for fid in ids:
            lpn = self._row_lpn.pop(fid, None)
            if lpn is None:
                raise IngestError(f"feature id {fid} is not on flash")
            self._lpn_live[lpn] -= 1
            if self._lpn_live[lpn] == 0:
                del self._lpn_live[lpn]
                self.ftl.trim(lpn)
                trimmed += 1
                self._free_lpns.append(lpn)
                if lpn == self._open_lpn:
                    self._open_lpn = None
                    self._open_count = 0
        return self._measure(before, pages_written=0, pages_trimmed=trimmed,
                             rows=0)

    def rewrite(self, ids: Sequence[int]) -> WriteOp:
        """Compaction move: re-program rows densely packed.

        The old pages are released (TRIM once empty) and the rows land
        on fresh pages at full density — the bandwidth a compaction
        spends to shed tombstone scan cost.
        """
        ids = [int(i) for i in ids]
        if not ids:
            raise IngestError("rewrite needs at least one id")
        for fid in ids:
            if fid not in self._row_lpn:
                raise IngestError(f"feature id {fid} is not on flash")
        drop = self.delete(ids)
        add = self.append(ids)
        # compose the two halves so program-retry costs carry through
        return WriteOp(
            pages_written=add.pages_written,
            pages_trimmed=drop.pages_trimmed,
            host_seconds=drop.host_seconds + add.host_seconds,
            gc_seconds=drop.gc_seconds + add.gc_seconds,
            relocations=drop.relocations + add.relocations,
            erases=drop.erases + add.erases,
        )

    # ------------------------------------------------------------------
    def _program(self, lpn: int) -> None:
        self.ftl.write(lpn)
        if self.injector is None:
            return
        address = PhysicalPageAddress(
            channel=0,
            chip=0,
            plane=0,
            block=lpn // self._pages_per_block,
            page=lpn % self._pages_per_block,
        )
        retries = self.injector.page_program_retries(address)
        if retries:
            self._retry_seconds += (
                retries * self.ssd.config.timing.program_latency_s
            )

    def _allocate_lpn(self) -> int:
        if not self._free_lpns:
            raise IngestError(
                "logical flash space exhausted; compact before ingesting more"
            )
        return self._free_lpns.popleft()

    def _snapshot_stats(self) -> GcStats:
        s = self.ftl.stats
        return GcStats(
            host_writes=s.host_writes,
            relocations=s.relocations,
            erases=s.erases,
            gc_invocations=s.gc_invocations,
        )

    def _measure(
        self, before: GcStats, pages_written: int, pages_trimmed: int, rows: int
    ) -> WriteOp:
        after = self.ftl.stats
        relocations = after.relocations - before.relocations
        erases = after.erases - before.erases
        host_seconds = 0.0
        if rows > 0:
            meta = DatabaseMetadata(
                db_id=0,
                feature_bytes=self.feature_bytes,
                feature_count=rows,
                page_bytes=self.ssd.config.geometry.page_bytes,
            )
            host_seconds = self.ssd.database_write_seconds(meta)
        host_seconds += self._retry_seconds
        self._retry_seconds = 0.0
        gc_seconds = self.ssd.gc_seconds(relocations, erases)
        return WriteOp(
            pages_written=pages_written,
            pages_trimmed=pages_trimmed,
            host_seconds=host_seconds,
            gc_seconds=gc_seconds,
            relocations=relocations,
            erases=erases,
        )
