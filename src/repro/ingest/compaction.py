"""Index staleness and background compaction.

A clustered (IVF) layout is a bet that the database does not move.  Once
ingest is live the bet decays: inserted rows land in an **unclustered
delta region** the probe-selection rule never visits, and tombstoned
rows keep occupying clustered pages.  :class:`DeltaAwareSearch` makes
that decay *measurable* — probed recall against the exact snapshot
top-K drifts down as the delta fraction grows (scanning the delta too
buys recall back at latency cost).

:class:`CompactionJob` is the repair: a background job on the DES
timeline that re-clusters the delta back into the layout chunk by
chunk, through the measured write path (so the repair bandwidth shows
up as GC/WA, not as free work).  The job is **preemptible** — a
foreground query cancels the in-flight chunk and pushes it past the
query's completion, trading compaction progress for query latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.core.deepstore import DeepStoreSystem
from repro.core.reorganize import ClusteredLayout, kmeans_lite
from repro.core.topk import topk_select
from repro.ingest.store import IngestError, MutableFeatureStore, Snapshot
from repro.nn.graph import Graph
from repro.sim import Event, Simulator
from repro.ssd.ftl import DatabaseMetadata


# ----------------------------------------------------------------------
# delta-aware probed search
# ----------------------------------------------------------------------
@dataclass
class DeltaSearchResult:
    """Outcome of one probed query over a (possibly stale) layout."""

    feature_ids: np.ndarray
    scores: np.ndarray
    probed_rows: int
    delta_rows: int
    total_visible: int
    scan_seconds: float

    @property
    def scan_fraction(self) -> float:
        return self.probed_rows / max(1, self.total_visible)

    def recall_against(self, exact_ids: np.ndarray) -> float:
        """Fraction of the exact snapshot top-K this result recovered."""
        if len(exact_ids) == 0:
            return 1.0
        got = set(int(i) for i in self.feature_ids)
        return len(got & set(int(i) for i in exact_ids)) / len(exact_ids)


class DeltaAwareSearch:
    """Probed IVF search over a mutable store with a delta region.

    The layout clusters only the rows covered at the last compaction
    (``store.clustered_ids``); rows inserted since live in the delta and
    are *invisible* to probing unless ``include_delta=True`` — exactly
    the staleness/latency trade the lifecycle benchmark sweeps.
    """

    def __init__(
        self,
        store: MutableFeatureStore,
        graph: Graph,
        n_clusters: int = 16,
        system: Optional[DeepStoreSystem] = None,
        seed: int = 0,
    ):
        if n_clusters <= 0:
            raise IngestError("n_clusters must be positive")
        self.store = store
        self.graph = graph
        self.n_clusters = n_clusters
        self.system = system or DeepStoreSystem.at_level("channel")
        self.seed = seed
        self.layout: ClusteredLayout = self._cluster(store.clustered_ids)
        self.rebuilds = 0

    # ------------------------------------------------------------------
    def _cluster(self, ids: np.ndarray) -> ClusteredLayout:
        ids = np.asarray(ids, dtype=np.int64)
        if len(ids) == 0:
            raise IngestError("cannot cluster an empty id set")
        rows = self.store.rows(ids)
        k = min(self.n_clusters, len(ids))
        centroids, assignments = kmeans_lite(rows, k, seed=self.seed)
        clusters = [ids[assignments == j] for j in range(k)]
        return ClusteredLayout(centroids=centroids, clusters=clusters)

    def rebuild(self, snapshot: Snapshot) -> None:
        """Re-cluster everything visible at ``snapshot`` (compaction)."""
        self.layout = self._cluster(self.store.visible_ids(snapshot))
        self.rebuilds += 1

    # ------------------------------------------------------------------
    def _score_rows(self, qfv: np.ndarray, rows: np.ndarray) -> np.ndarray:
        q_id, d_id = self.graph.input_ids
        q_shape = self.graph.shape_of(q_id)
        d_shape = self.graph.shape_of(d_id)
        batch = rows.reshape((-1, *d_shape))
        tiled = np.broadcast_to(qfv.reshape(q_shape), (len(rows), *q_shape))
        out = self.graph.forward(
            {q_id: np.ascontiguousarray(tiled), d_id: np.ascontiguousarray(batch)}
        )
        return out.reshape(-1)

    def _score(self, qfv: np.ndarray, ids: np.ndarray) -> np.ndarray:
        return self._score_rows(qfv, self.store.rows(ids))

    def _probed_ids(self, qfv: np.ndarray, n_probe: int) -> np.ndarray:
        """Ids covered by the ``n_probe`` best clusters for this query.

        The SCN is non-metric, so nearest-centroid-by-distance probing
        (the classic IVF rule) is uncorrelated with the actual ranking;
        instead the **SCN itself scores the centroids** and the
        top-scoring clusters are probed — the centroid acts as a stand-in
        for its members under the real model.
        """
        if not 1 <= n_probe <= self.layout.n_clusters:
            raise IngestError(
                f"n_probe={n_probe} out of range [1, {self.layout.n_clusters}]"
            )
        scores = self._score_rows(
            qfv, self.layout.centroids.astype(np.float32)
        )
        order = np.argsort(-scores)[:n_probe]
        return np.concatenate([self.layout.clusters[j] for j in order])

    def _scan_seconds(self, n_rows: int) -> float:
        meta = DatabaseMetadata(
            db_id=0,
            feature_bytes=self.store.dim * 4,
            feature_count=max(1, n_rows),
            page_bytes=self.system.ssd.geometry.page_bytes,
        )
        meta.extents = []  # latency model only uses counts/ratios
        return self.system.latency_for(
            self.graph, meta, feature_bytes=self.store.dim * 4,
            name=self.graph.name,
        ).total_seconds

    def query(
        self,
        qfv: np.ndarray,
        k: int,
        n_probe: int,
        include_delta: bool = False,
        snapshot: Optional[Snapshot] = None,
    ) -> DeltaSearchResult:
        """Top-K over the probed clusters (optionally plus the delta)."""
        if k <= 0:
            raise IngestError("K must be positive")
        snap = snapshot or self.store.snapshot()
        qfv = np.asarray(qfv, dtype=np.float32).reshape(-1)
        probed = self._probed_ids(qfv, n_probe)
        # tombstones in probed clusters are filtered from results but
        # their pages were still read — count them in the scanned rows
        probed_cost = len(probed)
        alive = probed[
            np.fromiter(
                (self.store.is_visible(int(i), snap) for i in probed),
                dtype=bool,
                count=len(probed),
            )
        ] if len(probed) else probed
        delta = self.store.delta_ids(snap)
        delta_rows = len(delta)
        scanned_ids = alive
        scanned_cost = probed_cost
        if include_delta and delta_rows:
            scanned_ids = np.concatenate([alive, delta])
            scanned_cost += delta_rows
        if len(scanned_ids) == 0:
            raise IngestError("probed clusters hold no visible rows")
        scores = self._score(qfv, scanned_ids)
        pairs = [
            (float(scores[i]), int(scanned_ids[i]))
            for i in range(len(scanned_ids))
        ]
        best = topk_select(pairs, k)
        return DeltaSearchResult(
            feature_ids=np.asarray([fid for _, fid in best], dtype=np.int64),
            scores=np.asarray([s for s, _ in best], dtype=np.float32),
            probed_rows=scanned_cost,
            delta_rows=delta_rows,
            total_visible=len(self.store.visible_ids(snap)),
            scan_seconds=self._scan_seconds(scanned_cost),
        )

    def exact_topk(self, qfv: np.ndarray, k: int,
                   snapshot: Optional[Snapshot] = None) -> np.ndarray:
        """Ground truth: exact top-K over everything visible."""
        snap = snapshot or self.store.snapshot()
        visible = self.store.visible_ids(snap)
        qfv = np.asarray(qfv, dtype=np.float32).reshape(-1)
        scores = self._score(qfv, visible)
        pairs = [(float(scores[i]), int(visible[i])) for i in range(len(visible))]
        return np.asarray(
            [fid for _, fid in topk_select(pairs, k)], dtype=np.int64
        )


# ----------------------------------------------------------------------
# the background compaction job
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CompactionPolicy:
    """When and how aggressively to compact."""

    #: start a compaction once delta_fraction exceeds this
    delta_threshold: float = 0.25
    #: rows rewritten per DES chunk (smaller = more preemptible)
    chunk_rows: int = 256
    #: idle gap inserted after each chunk (bandwidth throttle)
    min_gap_s: float = 0.0

    def __post_init__(self) -> None:
        if not 0 < self.delta_threshold < 1:
            raise IngestError("delta_threshold must be in (0, 1)")
        if self.chunk_rows <= 0:
            raise IngestError("chunk_rows must be positive")
        if self.min_gap_s < 0:
            raise IngestError("min_gap_s cannot be negative")


@dataclass
class CompactionReport:
    """What one compaction run did and what it cost."""

    started_s: float
    finished_s: float
    rows_rewritten: int
    reclaimed_rows: int
    chunks: int
    preemptions: int
    write_seconds: float
    delta_before: float
    delta_after: float

    @property
    def duration_s(self) -> float:
        return self.finished_s - self.started_s


class CompactionJob:
    """Chunked, preemptible re-clustering on the DES timeline.

    The job snapshots the store when started; rows mutated *after* the
    snapshot simply land in the next delta.  Each chunk rewrites
    ``policy.chunk_rows`` rows through the device's write path and
    schedules the next chunk after the measured write time; a query can
    :meth:`preempt` the pending chunk to any later time.  On the last
    chunk the store is marked compacted and the search layout rebuilt.
    """

    def __init__(
        self,
        device,  # LifecycleDevice (kept untyped to avoid an import cycle)
        db_id: int,
        search: Optional[DeltaAwareSearch] = None,
        policy: Optional[CompactionPolicy] = None,
    ):
        self.device = device
        self.db_id = db_id
        self.search = search
        self.policy = policy or CompactionPolicy()
        self.active = False
        self.report: Optional[CompactionReport] = None
        self._sim: Optional[Simulator] = None
        self._event: Optional[Event] = None
        self._snapshot: Optional[Snapshot] = None
        self._pending: List[int] = []
        self._done_chunks = 0
        self._preemptions = 0
        self._write_seconds = 0.0
        self._started_s = 0.0
        self._delta_before = 0.0
        self._on_done: Optional[Callable[[CompactionReport], None]] = None

    # ------------------------------------------------------------------
    def due(self) -> bool:
        """Whether the policy says a compaction should start now."""
        state = self.device.lifecycle(self.db_id)
        return (
            not self.active
            and state.store.delta_fraction() > self.policy.delta_threshold
        )

    def start(
        self,
        sim: Simulator,
        on_done: Optional[Callable[[CompactionReport], None]] = None,
    ) -> None:
        """Snapshot the store and schedule the first chunk."""
        if self.active:
            raise IngestError("compaction already running")
        state = self.device.lifecycle(self.db_id)
        self._sim = sim
        self._snapshot = state.store.snapshot()
        self._delta_before = state.store.delta_fraction(self._snapshot)
        delta = state.store.delta_ids(self._snapshot)
        self._pending = [
            int(i) for i in delta if state.writepath.has_row(int(i))
        ]
        self._done_chunks = 0
        self._rows_rewritten = 0
        self._preemptions = 0
        self._write_seconds = 0.0
        self._started_s = sim.now
        self._on_done = on_done
        self.active = True
        self.report = None
        self._event = sim.schedule(sim.now, self._chunk, label="compact-chunk")

    def preempt(self, resume_at: float) -> bool:
        """A foreground query runs until ``resume_at``; yield to it.

        The in-flight chunk is suspended for the query's duration —
        its completion slips by ``resume_at - now`` — because the query
        owns the channels while it scans (the paper's busy-signal rule).
        Returns True if a chunk was actually displaced.
        """
        if not self.active or self._event is None or self._sim is None:
            return False
        delay = resume_at - self._sim.now
        if self._event.cancelled or delay <= 0:
            return False
        new_time = self._event.time + delay
        self._event.cancel()
        self._preemptions += 1
        self._event = self._sim.schedule(
            new_time, self._chunk, label="compact-chunk"
        )
        return True

    # ------------------------------------------------------------------
    def _chunk(self) -> None:
        assert self._sim is not None and self._snapshot is not None
        state = self.device.lifecycle(self.db_id)
        chunk = self._pending[: self.policy.chunk_rows]
        self._pending = self._pending[len(chunk) :]
        seconds = 0.0
        if chunk:
            op = state.writepath.rewrite(chunk)
            seconds = op.seconds
            self._write_seconds += seconds
            self._done_chunks += 1
            self._rows_rewritten += len(chunk)
        if self._pending:
            self._event = self._sim.schedule(
                self._sim.now + seconds + self.policy.min_gap_s,
                self._chunk,
                label="compact-chunk",
            )
            return
        self._finish(state, seconds)

    def _finish(self, state, last_chunk_seconds: float) -> None:
        assert self._sim is not None and self._snapshot is not None
        # reclaim tombstones covered by the snapshot
        dead = [
            fid
            for fid in range(self._snapshot.n_rows)
            if not state.store.is_visible(fid, self._snapshot)
            and state.writepath.has_row(fid)
        ]
        if dead:
            self._write_seconds += state.writepath.delete(dead).seconds
        reclaimed = state.store.mark_compacted(self._snapshot)
        if self.search is not None:
            self.search.rebuild(self._snapshot)
        state.write_seconds += self._write_seconds
        state.compactions += 1
        self.device.metrics.counter("ingest.compactions").inc()
        self.device.metrics.counter("ingest.reclaimed_rows").inc(reclaimed)
        self.active = False
        self._event = None
        self.report = CompactionReport(
            started_s=self._started_s,
            finished_s=self._sim.now + last_chunk_seconds,
            rows_rewritten=self._rows_rewritten,
            reclaimed_rows=reclaimed,
            chunks=self._done_chunks,
            preemptions=self._preemptions,
            write_seconds=self._write_seconds,
            delta_before=self._delta_before,
            delta_after=state.store.delta_fraction(),
        )
        if self._on_done is not None:
            self._on_done(self.report)
