"""A DeepStore device whose databases mutate while serving queries.

:class:`LifecycleDevice` extends :class:`repro.core.api.DeepStoreDevice`
with the data-lifecycle verbs — ``insert_db`` / ``delete_db_rows`` /
``update_db_row`` / ``compact_db`` — wired to three mechanisms:

1. **Epoch snapshots** (:class:`repro.ingest.store.MutableFeatureStore`)
   — every query scans a consistent view; tombstoned ids never appear
   in results, and results are exact top-K over the rows visible at the
   query's snapshot (property-tested against an oracle replay).
2. **The measured write path**
   (:class:`repro.ingest.writepath.IngestWritePath`) — inserts and
   compaction moves flow through the page-mapped FTL, so GC pressure
   and write amplification come from the FTL's own counters, and the
   resulting bus occupancy slows query scans through
   :class:`repro.ssd.host_io.InterferenceModel`.
3. **Epoch-tagged query-cache invalidation** (inherited) — a result
   cached before a mutation can never satisfy a query issued after it.

**Differential parity**: with ingest enabled but *zero mutations*, every
query delegates to the unmodified base-class path, so ids, scores,
latencies, and cache behaviour are bit-identical to a static device —
the lifecycle layer costs nothing until the database actually moves.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.api import DeepStoreApiError, DeepStoreDevice, QueryHandle
from repro.core.topk import topk_select
from repro.ingest.store import MutableFeatureStore, Snapshot
from repro.ingest.writepath import IngestWritePath, WriteOp
from repro.obs.metrics import MetricsRegistry
from repro.ssd.host_io import HostIoWorkload, InterferenceModel, POLICIES


@dataclass
class LifecycleState:
    """Per-database lifecycle machinery."""

    store: MutableFeatureStore
    writepath: IngestWritePath
    #: modelled seconds spent on mutations + compactions so far
    write_seconds: float = 0.0
    compactions: int = 0


@dataclass(frozen=True)
class DeviceCompaction:
    """Outcome of one device-level compaction pass."""

    seconds: float
    reclaimed_rows: int
    rewritten_rows: int
    write_amplification: float


@dataclass
class _BackgroundWrites:
    workload: HostIoWorkload
    policy: str = "share"


class LifecycleDevice(DeepStoreDevice):
    """``DeepStoreDevice`` + online ingest, one subclass."""

    def __init__(self, *args, metrics: Optional[MetricsRegistry] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self._lifecycles: Dict[int, LifecycleState] = {}
        self._background: Optional[_BackgroundWrites] = None
        self._interference = InterferenceModel(self.ssd.config)
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # ------------------------------------------------------------------
    # lifecycle management
    # ------------------------------------------------------------------
    def enable_ingest(
        self,
        db_id: int,
        op_fraction: float = 0.07,
        region_blocks: int = 64,
        region_pages_per_block: int = 64,
        injector=None,
    ) -> None:
        """Arm a database for mutation (idempotent until first mutation)."""
        if db_id in self._lifecycles:
            return
        meta = self.ssd.ftl.get(db_id)
        base = self._store(db_id)
        store = MutableFeatureStore(base)
        writepath = IngestWritePath(
            self.ssd,
            meta.feature_bytes,
            op_fraction=op_fraction,
            blocks=region_blocks,
            pages_per_block=region_pages_per_block,
        )
        # the base rows are already on flash (written by write_db); seed
        # the page map so deletes/compactions can address them, then
        # zero the counters so WA reflects mutation traffic only
        writepath.append(range(store.n_rows))
        writepath.reset_stats()
        # attach write faults only after seeding, so program-retry
        # counters reflect mutation traffic rather than the base load
        writepath.injector = injector
        self._lifecycles[db_id] = LifecycleState(store=store, writepath=writepath)

    def lifecycle(self, db_id: int) -> LifecycleState:
        """The lifecycle state of an ingest-enabled database."""
        state = self._lifecycles.get(db_id)
        if state is None:
            raise DeepStoreApiError(
                f"database {db_id} is not ingest-enabled (call enable_ingest)"
            )
        return state

    def ingest_enabled(self, db_id: int) -> bool:
        """Whether ``db_id`` has been armed for mutation."""
        return db_id in self._lifecycles

    # ------------------------------------------------------------------
    # mutation verbs
    # ------------------------------------------------------------------
    def insert_db(self, db_id: int, features: np.ndarray) -> np.ndarray:
        """Stream new rows in; returns their stable feature ids."""
        state = self.lifecycle(db_id)
        features = self._check_features(features)
        ids = state.store.insert(features)
        # keep the base functional store + block-FTL metadata in sync so
        # scans, readDB, and ObjectIDs cover the new rows
        super().append_db(db_id, features)
        op = state.writepath.append(ids)
        self._account(state, op)
        self.metrics.counter("ingest.inserts").inc(len(ids))
        self._publish_gauges(db_id, state)
        return ids

    def delete_db_rows(self, db_id: int, ids: Sequence[int]) -> None:
        """Tombstone rows; flash pages are reclaimed at compaction."""
        state = self.lifecycle(db_id)
        try:
            state.store.delete(ids)
        except Exception as exc:
            raise DeepStoreApiError(str(exc)) from exc
        self._note_mutation(db_id)
        self.metrics.counter("ingest.deletes").inc(len(list(ids)))
        self._publish_gauges(db_id, state)

    def update_db_row(self, db_id: int, fid: int, feature: np.ndarray) -> int:
        """Replace one row (tombstone + re-insert); returns the new id."""
        self.delete_db_rows(db_id, [fid])
        new_ids = self.insert_db(
            db_id, np.asarray(feature, dtype=np.float32).reshape(1, -1)
        )
        self.metrics.counter("ingest.updates").inc()
        return int(new_ids[0])

    def compact_db(self, db_id: int) -> DeviceCompaction:
        """Reclaim tombstones and densify the delta region on flash.

        Results are unaffected (compaction moves rows, it does not
        change visibility), so the epoch does not advance and cached
        results stay valid; what changes is the *cost*: scans stop
        paying for dead pages.
        """
        state = self.lifecycle(db_id)
        snap = state.store.snapshot()
        dead = [
            fid
            for fid in range(snap.n_rows)
            if not state.store.is_visible(fid, snap)
            and state.writepath.has_row(fid)
        ]
        delta = [
            int(fid)
            for fid in state.store.delta_ids(snap)
            if state.writepath.has_row(int(fid))
        ]
        seconds = 0.0
        if dead:
            seconds += state.writepath.delete(dead).seconds
        if delta:
            seconds += state.writepath.rewrite(delta).seconds
        reclaimed = state.store.mark_compacted(snap)
        state.write_seconds += seconds
        state.compactions += 1
        self.metrics.counter("ingest.compactions").inc()
        self.metrics.counter("ingest.reclaimed_rows").inc(reclaimed)
        self._publish_gauges(db_id, state)
        return DeviceCompaction(
            seconds=seconds,
            reclaimed_rows=reclaimed,
            rewritten_rows=len(delta),
            write_amplification=state.writepath.write_amplification,
        )

    # ------------------------------------------------------------------
    # interference coupling
    # ------------------------------------------------------------------
    def set_background_write_load(
        self, offered_load: float, policy: str = "share", read_fraction: float = 0.0
    ) -> None:
        """Declare the bus fraction background ingest currently occupies.

        Use :meth:`repro.ingest.writepath.IngestWritePath.offered_load`
        to turn a raw ingest bandwidth fraction into this number (it
        multiplies in the measured write amplification).  ``0`` clears
        the interference.
        """
        if policy not in POLICIES:
            raise DeepStoreApiError(
                f"unknown policy {policy!r}; choose from {POLICIES}"
            )
        if offered_load <= 0:
            self._background = None
            return
        self._background = _BackgroundWrites(
            workload=HostIoWorkload(
                offered_load=min(1.0, offered_load), read_fraction=read_fraction
            ),
            policy=policy,
        )

    def _interfered(self, latency):
        """Stretch the scan's I/O-bound share under background writes."""
        if self._background is None:
            return latency
        limiting = max(
            latency.compute_spf, latency.io_spf, latency.bus_weight_spf
        )
        io_fraction = latency.io_spf / limiting if limiting > 0 else 1.0
        result = self._interference.evaluate(
            self._background.workload,
            self._background.policy,
            scan_io_fraction=min(1.0, io_fraction),
        )
        return dataclasses.replace(
            latency, scan_seconds=latency.scan_seconds * result.scan_slowdown
        )

    # ------------------------------------------------------------------
    # query (snapshot-consistent path)
    # ------------------------------------------------------------------
    def query(
        self,
        qfv: np.ndarray,
        k: int,
        model_id: int,
        db_id: int,
        db_start: int = 0,
        db_end: Optional[int] = None,
        accel_level: Optional[str] = None,
    ) -> QueryHandle:
        state = self._lifecycles.get(db_id)
        if state is None or state.store.epoch == 0:
            # zero-mutation parity: the static path, bit for bit
            return super().query(
                qfv, k, model_id, db_id, db_start, db_end, accel_level
            )
        return self._query_mutable(
            state, qfv, k, model_id, db_id, db_start, db_end, accel_level
        )

    def _query_mutable(
        self,
        state: LifecycleState,
        qfv: np.ndarray,
        k: int,
        model_id: int,
        db_id: int,
        db_start: int,
        db_end: Optional[int],
        accel_level: Optional[str],
    ) -> QueryHandle:
        if k <= 0:
            raise DeepStoreApiError("K must be positive")
        graph = self._models.get(model_id)
        if graph is None:
            raise DeepStoreApiError(f"unknown model id {model_id}")
        store_rows = self._store(db_id)
        meta = self.ssd.ftl.get(db_id)
        db_end = len(store_rows) if db_end is None else db_end
        if not 0 <= db_start < db_end <= len(store_rows):
            raise DeepStoreApiError(f"bad db range [{db_start}, {db_end})")
        level = accel_level or self.level
        system = self._system(level)
        if not system.supports(graph):
            raise DeepStoreApiError(
                f"model {graph.name!r} is not supported at the {level} level"
            )
        qfv = np.asarray(qfv, dtype=np.float32).reshape(-1)
        if qfv.size * 4 != meta.feature_bytes:
            raise DeepStoreApiError(
                f"QFV size {qfv.size * 4} bytes does not match database "
                f"feature size {meta.feature_bytes}"
            )

        snap = state.store.snapshot()
        cache_tag = (db_id, self._db_epochs.get(db_id, 0))
        if self._cache is not None:
            lookup = self._cache.lookup(qfv, tag=cache_tag)
            if lookup.hit and lookup.entry is not None:
                candidates = lookup.entry.topk_feature_ids
                scores = self._score_features(graph, qfv, store_rows[candidates])
                order = np.argsort(-scores)[:k]
                result = self._build_result(
                    meta, candidates[order], scores[order],
                    self._hit_latency(graph, meta, lookup.entries_scanned, k),
                    cache_hit=True,
                )
                self.metrics.counter("ingest.query_cache_hits").inc()
                return self._register(result)

        ids, scores = self._scan_visible(
            graph, qfv, store_rows, state, snap, db_start, db_end, k
        )
        scanned_rows = self._scanned_rows(state, snap, db_start, db_end)
        sliced = self._sliced_meta(meta, max(1, scanned_rows))
        if self._failed_accels:
            count = system.placement.count(system.ssd)
            bad = {i for i in self._failed_accels if i < count}
            if len(bad) >= count:
                raise DeepStoreApiError(
                    "all accelerators failed; no degraded mode possible"
                )
            latency = system.degraded_latency_for(
                graph,
                sliced,
                feature_bytes=meta.feature_bytes,
                failed_accels=bad,
                name=graph.name,
            ).degraded
        else:
            latency = system.latency_for(
                graph, sliced, feature_bytes=meta.feature_bytes, name=graph.name
            )
        latency = self._interfered(latency)
        if self._cache is not None:
            self._cache.insert(qfv, scores, ids, tag=cache_tag)
            lookup_cost = len(self._cache) * self._cache_lookup_seconds_per_entry
            latency = dataclasses.replace(
                latency, engine_seconds=latency.engine_seconds + lookup_cost
            )
        result = self._build_result(meta, ids, scores, latency, cache_hit=False)
        self.metrics.counter("ingest.queries").inc()
        return self._register(result)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _scan_visible(
        self,
        graph,
        qfv: np.ndarray,
        store_rows: np.ndarray,
        state: LifecycleState,
        snap: Snapshot,
        start: int,
        end: int,
        k: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact top-K over the rows visible at ``snap`` in the range."""
        visible = state.store.visible_ids(snap)
        visible = visible[(visible >= start) & (visible < end)]
        if len(visible) == 0:
            raise DeepStoreApiError(
                f"no visible features in range [{start}, {end})"
            )
        pairs: List[Tuple[float, int]] = []
        for chunk_start in range(0, len(visible), self.SCAN_CHUNK):
            chunk_ids = visible[chunk_start : chunk_start + self.SCAN_CHUNK]
            scores = self._score_features(graph, qfv, store_rows[chunk_ids])
            take = min(k, len(scores))
            top = np.argpartition(-scores, take - 1)[:take]
            pairs.extend(
                (float(scores[i]), int(chunk_ids[i])) for i in top
            )
        best = topk_select(pairs, k)
        ids = np.asarray([fid for _, fid in best], dtype=np.int64)
        scores_out = np.asarray([s for s, _ in best], dtype=np.float32)
        return ids, scores_out

    def _scanned_rows(
        self, state: LifecycleState, snap: Snapshot, start: int, end: int
    ) -> int:
        """Rows the scan physically reads (tombstones included).

        Tombstoned rows cost flash reads until a compaction reclaims
        them; after one, the physically-present fraction shrinks and the
        charged scan shrinks with it.
        """
        span = end - start
        if state.store.n_rows == 0:
            return span
        density = state.store.physical_rows / state.store.n_rows
        return max(1, int(round(span * density)))

    def _account(self, state: LifecycleState, op: WriteOp) -> None:
        state.write_seconds += op.seconds
        self.metrics.counter("ingest.pages_written").inc(op.pages_written)
        self.metrics.counter("ingest.gc_relocations").inc(op.relocations)
        self.metrics.counter("ingest.gc_erases").inc(op.erases)

    def _publish_gauges(self, db_id: int, state: LifecycleState) -> None:
        self.metrics.gauge(f"ingest.db{db_id}.delta_fraction").set(
            state.store.delta_fraction()
        )
        self.metrics.gauge(f"ingest.db{db_id}.tombstones").set(
            float(state.store.n_tombstones)
        )
        self.metrics.gauge(f"ingest.db{db_id}.write_amplification").set(
            state.writepath.write_amplification
        )
