"""Epoch-versioned mutable feature store (tombstone + append).

The paper's database is write-once: ``writeDB`` lays features out, and
every query scans an immutable array.  A production retrieval service
ingests continuously, so :class:`MutableFeatureStore` upgrades the
functional half of the database to a **log-structured** store:

* **inserts append** — a feature id, once assigned, is stable forever
  (results, cache entries, and cluster membership all key on it);
* **deletes tombstone** — the row stays physically present (and is
  still *scanned*, costing flash reads) until a compaction reclaims it;
  logically it disappears at the epoch of the delete;
* **updates are delete + insert** — the old id is tombstoned and the
  new vector gets a fresh id, which is the only semantics compatible
  with offset-arithmetic addressing (paper §4.4: accelerators compute
  feature addresses from metadata, so in-place rewrites of a different
  epoch would race in-flight scans).

Every mutation advances the **epoch** counter.  A :class:`Snapshot` is
an O(1) handle (epoch + row high-water mark) whose visibility predicate
is stable under further mutation, because rows only ever *gain* a
deletion epoch: a row is visible at epoch ``e`` iff it was inserted at
or before ``e`` and not deleted at or before ``e``.  In-flight scans
therefore see a consistent view no matter how many mutations land while
they run — the property the oracle-replay tests assert exactly.

The mutation log is kept verbatim so tests can **replay** it through
:func:`oracle_replay`, an independent (deliberately naive) second
implementation of the same semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


class IngestError(RuntimeError):
    """Raised for invalid mutations (unknown ids, double deletes...)."""


@dataclass(frozen=True)
class Mutation:
    """One logged mutation (the replay log's unit)."""

    epoch: int
    op: str  # "insert" | "delete"
    #: ids assigned (insert) or tombstoned (delete)
    ids: Tuple[int, ...]


@dataclass(frozen=True)
class Snapshot:
    """A consistent read view: ``(epoch, rows inserted so far)``.

    The snapshot holds no row data — visibility is evaluated lazily
    against the store's append-only deletion records, which is what
    makes taking one O(1) and holding one free.
    """

    epoch: int
    n_rows: int


class MutableFeatureStore:
    """Append/tombstone feature rows under an epoch counter."""

    def __init__(self, base: np.ndarray):
        base = np.asarray(base, dtype=np.float32)
        if base.ndim != 2 or base.shape[0] == 0:
            raise IngestError("base features must be a non-empty (N, dim) array")
        self._chunks: List[np.ndarray] = [base.copy()]
        self._n_rows = base.shape[0]
        self._dim = base.shape[1]
        self._materialized: Optional[np.ndarray] = None
        #: row id -> epoch at which it was deleted (absent = live)
        self._deleted_at: Dict[int, int] = {}
        #: row id -> epoch at which it was inserted (base rows = epoch 0)
        self._inserted_at_boundaries: List[Tuple[int, int]] = [(0, base.shape[0])]
        self.epoch = 0
        self.log: List[Mutation] = []
        #: ids covered by the current clustered layout (compaction moves
        #: this forward); everything visible beyond it is the delta region
        self._clustered_ids: np.ndarray = np.arange(base.shape[0], dtype=np.int64)
        self.clustered_epoch = 0
        #: rows physically occupying flash (tombstones included until a
        #: compaction reclaims them)
        self._physical_rows = base.shape[0]

    # ------------------------------------------------------------------
    # durable state (checkpoint / recovery support)
    # ------------------------------------------------------------------
    def state_tuple(self) -> Tuple:
        """The store's complete logical state as plain values.

        Everything a bit-exact reconstruction needs: row data, epoch,
        tombstone map, insert boundaries, clustered/delta bookkeeping,
        and the mutation log.  :meth:`from_state` inverts it; the
        recovery property suite asserts the round trip is lossless.
        """
        return (
            self.features().copy(),
            self.epoch,
            tuple(sorted(self._deleted_at.items())),
            tuple(self._inserted_at_boundaries),
            self._clustered_ids.copy(),
            self.clustered_epoch,
            self._physical_rows,
            tuple(self.log),
        )

    @classmethod
    def from_state(
        cls,
        rows: np.ndarray,
        epoch: int,
        deleted_at: Sequence[Tuple[int, int]],
        boundaries: Sequence[Tuple[int, int]],
        clustered_ids: np.ndarray,
        clustered_epoch: int,
        physical_rows: int,
        log: Sequence[Mutation],
    ) -> "MutableFeatureStore":
        """Rebuild a store from a :meth:`state_tuple` image."""
        rows = np.asarray(rows, dtype=np.float32)
        store = cls(rows)
        store.epoch = int(epoch)
        store._deleted_at = {int(f): int(e) for f, e in deleted_at}
        store._inserted_at_boundaries = [
            (int(e), int(n)) for e, n in boundaries
        ]
        store._clustered_ids = np.asarray(clustered_ids, dtype=np.int64).copy()
        store.clustered_epoch = int(clustered_epoch)
        store._physical_rows = int(physical_rows)
        store.log = list(log)
        return store

    def state_equal(self, other: "MutableFeatureStore") -> bool:
        """Bit-exact logical equality (rows, epochs, tombstones, delta)."""
        a, b = self.state_tuple(), other.state_tuple()
        return (
            a[0].shape == b[0].shape
            and bool(np.array_equal(a[0], b[0]))
            and a[1:4] == b[1:4]
            and bool(np.array_equal(a[4], b[4]))
            and a[5:] == b[5:]
        )

    # ------------------------------------------------------------------
    # shape / accounting
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return self._dim

    @property
    def n_rows(self) -> int:
        """Rows ever inserted (tombstoned ones included)."""
        return self._n_rows

    @property
    def n_visible(self) -> int:
        return self._n_rows - len(self._deleted_at)

    @property
    def n_tombstones(self) -> int:
        return len(self._deleted_at)

    @property
    def physical_rows(self) -> int:
        """Rows occupying flash pages (scan cost is proportional to this)."""
        return self._physical_rows

    @property
    def clustered_ids(self) -> np.ndarray:
        """Ids covered by the clustered layout (read-only view)."""
        return self._clustered_ids

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def insert(self, features: np.ndarray) -> np.ndarray:
        """Append rows; returns the newly assigned (stable) ids."""
        features = np.asarray(features, dtype=np.float32)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        if features.ndim != 2 or features.shape[0] == 0:
            raise IngestError("insert needs a non-empty (N, dim) array")
        if features.shape[1] != self._dim:
            raise IngestError(
                f"insert dim {features.shape[1]} != store dim {self._dim}"
            )
        ids = np.arange(
            self._n_rows, self._n_rows + features.shape[0], dtype=np.int64
        )
        self._chunks.append(features.copy())
        self._materialized = None
        self._n_rows += features.shape[0]
        self._physical_rows += features.shape[0]
        self.epoch += 1
        self._inserted_at_boundaries.append((self.epoch, self._n_rows))
        self.log.append(Mutation(self.epoch, "insert", tuple(int(i) for i in ids)))
        return ids

    def delete(self, ids: Sequence[int]) -> None:
        """Tombstone rows; the ids must be currently visible."""
        ids = [int(i) for i in ids]
        if not ids:
            raise IngestError("delete needs at least one id")
        for fid in ids:
            if not 0 <= fid < self._n_rows:
                raise IngestError(f"unknown feature id {fid}")
            if fid in self._deleted_at:
                raise IngestError(f"feature id {fid} is already deleted")
        if len(set(ids)) != len(ids):
            raise IngestError("duplicate ids in one delete")
        self.epoch += 1
        for fid in ids:
            self._deleted_at[fid] = self.epoch
        self.log.append(Mutation(self.epoch, "delete", tuple(ids)))

    def update(self, fid: int, feature: np.ndarray) -> int:
        """Replace one row: tombstone ``fid``, insert the new vector.

        Returns the new id.  Two epochs are consumed (the delete and the
        insert), so a snapshot taken between them sees neither version —
        exactly the anomaly-free behaviour replay tests pin down.
        """
        self.delete([fid])
        return int(self.insert(np.asarray(feature).reshape(1, -1))[0])

    # ------------------------------------------------------------------
    # snapshots / visibility
    # ------------------------------------------------------------------
    def snapshot(self) -> Snapshot:
        """An O(1) consistent view as of the current epoch."""
        return Snapshot(epoch=self.epoch, n_rows=self._n_rows)

    def _rows_at_epoch(self, epoch: int) -> int:
        """Row high-water mark as of ``epoch``."""
        rows = 0
        for boundary_epoch, n_rows in self._inserted_at_boundaries:
            if boundary_epoch > epoch:
                break
            rows = n_rows
        return rows

    def snapshot_at(self, epoch: int) -> Snapshot:
        """Reconstruct the snapshot any past epoch would have taken."""
        if not 0 <= epoch <= self.epoch:
            raise IngestError(f"epoch {epoch} outside [0, {self.epoch}]")
        return Snapshot(epoch=epoch, n_rows=self._rows_at_epoch(epoch))

    def is_visible(self, fid: int, snapshot: Optional[Snapshot] = None) -> bool:
        """Whether a row is live in the given (default: current) view."""
        snap = snapshot or self.snapshot()
        if not 0 <= fid < snap.n_rows:
            return False
        deleted = self._deleted_at.get(fid)
        return deleted is None or deleted > snap.epoch

    def visible_ids(self, snapshot: Optional[Snapshot] = None) -> np.ndarray:
        """Ascending ids visible in the given (default: current) view."""
        snap = snapshot or self.snapshot()
        ids = np.arange(snap.n_rows, dtype=np.int64)
        if not self._deleted_at:
            return ids
        dead = np.fromiter(
            (
                fid
                for fid, at in self._deleted_at.items()
                if at <= snap.epoch and fid < snap.n_rows
            ),
            dtype=np.int64,
        )
        if len(dead) == 0:
            return ids
        mask = np.ones(snap.n_rows, dtype=bool)
        mask[dead] = False
        return ids[mask]

    def features(self) -> np.ndarray:
        """All rows ever inserted, id order (tombstones included)."""
        if self._materialized is None or len(self._materialized) != self._n_rows:
            self._materialized = (
                self._chunks[0]
                if len(self._chunks) == 1
                else np.concatenate(self._chunks, axis=0)
            )
            self._chunks = [self._materialized]
        return self._materialized

    def rows(self, ids: np.ndarray) -> np.ndarray:
        """Row data for specific ids."""
        return self.features()[np.asarray(ids, dtype=np.int64)]

    # ------------------------------------------------------------------
    # delta region / compaction bookkeeping
    # ------------------------------------------------------------------
    def delta_ids(self, snapshot: Optional[Snapshot] = None) -> np.ndarray:
        """Visible ids NOT covered by the clustered layout."""
        visible = self.visible_ids(snapshot)
        if len(self._clustered_ids) == 0:
            return visible
        boundary = int(self._clustered_ids.max()) + 1
        in_cluster = np.zeros(boundary, dtype=bool)
        in_cluster[self._clustered_ids] = True
        covered = (visible < boundary) & np.where(
            visible < boundary, in_cluster[np.minimum(visible, boundary - 1)], False
        )
        return visible[~covered]

    def delta_fraction(self, snapshot: Optional[Snapshot] = None) -> float:
        """Fraction of the visible database living outside the index.

        Tombstoned *clustered* rows count toward staleness too: they are
        covered pages that no longer hold an answer.
        """
        visible = self.visible_ids(snapshot)
        if len(visible) == 0:
            return 0.0
        return len(self.delta_ids(snapshot)) / len(visible)

    def mark_compacted(self, snapshot: Snapshot) -> int:
        """Record that a compaction re-clustered the view ``snapshot``.

        The clustered region becomes exactly the rows visible at the
        snapshot; tombstones at or before it are physically reclaimed
        (scan cost drops).  Returns the number of reclaimed rows.
        """
        visible = self.visible_ids(snapshot)
        reclaimed = self._physical_rows - (
            len(visible) + (self._n_rows - snapshot.n_rows)
        )
        self._clustered_ids = visible
        self.clustered_epoch = snapshot.epoch
        self._physical_rows = len(visible) + (self._n_rows - snapshot.n_rows)
        return max(0, reclaimed)


# ----------------------------------------------------------------------
# the independent oracle
# ----------------------------------------------------------------------
def oracle_replay(
    base: np.ndarray, log: Sequence[Mutation], epoch: int
) -> Tuple[np.ndarray, List[int]]:
    """Naive second implementation: replay the log up to ``epoch``.

    Returns ``(all_rows, visible_ids)`` where ``all_rows`` stacks every
    row ever inserted at or before ``epoch`` (id order) and
    ``visible_ids`` are the live ones.  Kept deliberately simple — a
    dict of id -> row and a set of dead ids — so a bug in the store's
    vectorized bookkeeping cannot also live here.
    """
    rows: List[np.ndarray] = [np.asarray(r, dtype=np.float32) for r in base]
    dead: set = set()
    next_id = len(rows)
    for mutation in log:
        if mutation.epoch > epoch:
            break
        if mutation.op == "insert":
            for _ in mutation.ids:
                next_id += 1
        elif mutation.op == "delete":
            dead.update(mutation.ids)
        else:  # pragma: no cover - the store only logs two ops
            raise IngestError(f"unknown op {mutation.op!r}")
    visible = [i for i in range(next_id) if i not in dead]
    return np.stack(rows) if rows else base, visible


def oracle_topk(
    features: np.ndarray,
    visible_ids: Sequence[int],
    scores: np.ndarray,
    k: int,
) -> List[Tuple[float, int]]:
    """Exact top-K over a visible set with the canonical tie-break.

    ``scores`` is indexed by global id; the canonical order (score
    descending, id ascending) matches :func:`repro.core.topk.topk_select`
    so store-vs-oracle comparisons are exact even under ties.
    """
    pairs = [(float(scores[i]), int(i)) for i in visible_ids]
    pairs.sort(key=lambda p: (-p[0], p[1]))
    return pairs[:k]
