"""The end-to-end data-lifecycle loop, deterministically.

:func:`run_lifecycle` drives one :class:`LifecycleDevice` database
through the whole story the subsystem exists to tell:

1. **Staleness** — rounds of inserts (a slice of them near-duplicates
   of current winners, so they *belong* in the exact top-K), deletes,
   and updates; after each round the stale probed search is scored
   against the exact snapshot top-K.  Recall drifts down as the delta
   fraction grows; scanning the delta too (``include_delta``) buys it
   back at measured latency cost.
2. **Compaction** — a :class:`CompactionJob` runs on a DES timeline
   while foreground queries preempt its chunks; afterwards the rebuilt
   layout's recall is compared against a freshly-clustered baseline.
3. **Interference** — a sweep of background ingest load (scaled by the
   *measured* write amplification) through the host-I/O interference
   model, yielding the query-slowdown-vs-write-pressure curve.

Everything is seeded and event-driven, so the report is bit-stable for
a given config — which is what lets the perf gate diff it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.ingest.compaction import (
    CompactionJob,
    CompactionPolicy,
    CompactionReport,
    DeltaAwareSearch,
)
from repro.ingest.device import LifecycleDevice
from repro.obs.dtrace import TraceCollector
from repro.obs.metrics import MetricsRegistry
from repro.sim import Simulator
from repro.workloads import get_app


@dataclass(frozen=True)
class LifecycleConfig:
    """One lifecycle experiment, fully specified."""

    app: str = "textqa"
    n_base: int = 2048
    rounds: int = 4
    #: per round: rows copied (with noise) from current exact winners
    planted_per_round: int = 96
    #: per round: unrelated random rows
    random_per_round: int = 64
    deletes_per_round: int = 32
    updates_per_round: int = 8
    probe_queries: int = 8
    k: int = 10
    n_clusters: int = 16
    n_probe: int = 4
    compaction: CompactionPolicy = field(default_factory=CompactionPolicy)
    #: raw ingest bus fractions swept in the interference phase
    interference_loads: tuple = (0.0, 0.25, 0.5, 0.75)
    #: ingest-region size (erase blocks x pages); small enough that GC
    #: genuinely fires at benchmark scale
    region_blocks: int = 8
    region_pages_per_block: int = 16
    seed: int = 0


@dataclass
class StalenessPoint:
    """One round's staleness measurement."""

    round: int
    delta_fraction: float
    stale_recall: float
    with_delta_recall: float
    stale_scan_seconds: float
    with_delta_scan_seconds: float


@dataclass
class InterferencePoint:
    """Query cost under one background ingest load."""

    raw_load: float
    offered_load: float
    query_seconds: float
    slowdown: float


@dataclass
class LifecycleReport:
    """Everything :func:`run_lifecycle` measured."""

    config: LifecycleConfig
    staleness: List[StalenessPoint]
    compaction: CompactionReport
    post_compaction_recall: float
    fresh_baseline_recall: float
    interference: List[InterferencePoint]
    write_amplification: float
    host_writes: int
    gc_relocations: int
    gc_erases: int
    mutations: int
    tombstones_reclaimed: int
    metrics: Dict[str, object]

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready scorecard fragment (sorted, scalar leaves)."""
        return {
            "staleness": {
                "initial_recall": self.staleness[0].stale_recall,
                "final_recall": self.staleness[-1].stale_recall,
                "final_delta_fraction": self.staleness[-1].delta_fraction,
                "final_with_delta_recall": self.staleness[-1].with_delta_recall,
            },
            "compaction": {
                "duration_s": self.compaction.duration_s,
                "rows_rewritten": self.compaction.rows_rewritten,
                "reclaimed_rows": self.compaction.reclaimed_rows,
                "preemptions": self.compaction.preemptions,
                "post_recall": self.post_compaction_recall,
                "baseline_recall": self.fresh_baseline_recall,
            },
            "writepath": {
                "write_amplification": self.write_amplification,
                "host_writes": self.host_writes,
                "gc_relocations": self.gc_relocations,
                "gc_erases": self.gc_erases,
            },
            "interference": {
                f"slowdown_at_{point.raw_load:g}": point.slowdown
                for point in self.interference
            },
            "mutations": self.mutations,
        }


def _measure_recall(
    search: DeltaAwareSearch,
    probes: np.ndarray,
    k: int,
    n_probe: int,
    include_delta: bool,
) -> tuple:
    """Mean probed recall (and scan seconds) over the probe set."""
    recalls = []
    seconds = []
    for qfv in probes:
        exact = search.exact_topk(qfv, k)
        result = search.query(qfv, k, n_probe, include_delta=include_delta)
        recalls.append(result.recall_against(exact))
        seconds.append(result.scan_seconds)
    return float(np.mean(recalls)), float(np.mean(seconds))


def run_lifecycle(
    config: Optional[LifecycleConfig] = None,
    metrics: Optional[MetricsRegistry] = None,
    dtrace: Optional["TraceCollector"] = None,
) -> LifecycleReport:
    """Run the staleness → compaction → interference loop.

    With ``dtrace`` attached, each staleness round and the compaction
    pass land as coarse spans on an ``ingest`` track — durations come
    from the measured scan/compaction seconds already in the report, so
    tracing reads state but never changes it.
    """
    config = config or LifecycleConfig()
    app = get_app(config.app)
    rng = np.random.default_rng(config.seed)
    dim = app.feature_floats

    device = LifecycleDevice(metrics=metrics)
    base = rng.normal(0, 1, (config.n_base, dim)).astype(np.float32)
    db = device.write_db(base)
    model = device.load_graph(app.build_scn(seed=config.seed + 1))
    device.enable_ingest(
        db,
        region_blocks=config.region_blocks,
        region_pages_per_block=config.region_pages_per_block,
    )
    state = device.lifecycle(db)
    search = DeltaAwareSearch(
        state.store,
        device._models[model],
        n_clusters=config.n_clusters,
        seed=config.seed,
    )
    probes = rng.normal(0, 1, (config.probe_queries, dim)).astype(np.float32)

    # ------------------------------------------------------------ phase 1
    staleness: List[StalenessPoint] = []
    recall0, seconds0 = _measure_recall(
        search, probes, config.k, config.n_probe, include_delta=False
    )
    staleness.append(
        StalenessPoint(0, state.store.delta_fraction(), recall0, recall0,
                       seconds0, seconds0)
    )
    for rnd in range(1, config.rounds + 1):
        # plant near-duplicates of current winners: they belong in the
        # exact top-K but the stale layout cannot reach them
        planted = []
        per_probe = max(1, config.planted_per_round // config.probe_queries)
        for qfv in probes:
            winners = search.exact_topk(qfv, per_probe)
            rows = state.store.rows(winners)
            planted.append(
                rows + rng.normal(0, 1e-3, rows.shape).astype(np.float32)
            )
        device.insert_db(db, np.concatenate(planted, axis=0))
        device.insert_db(
            db,
            rng.normal(0, 1, (config.random_per_round, dim)).astype(np.float32),
        )
        visible = state.store.visible_ids()
        clustered = set(int(i) for i in state.store.clustered_ids)
        victims = [int(i) for i in visible if int(i) in clustered]
        doomed = rng.choice(
            victims, size=min(config.deletes_per_round, len(victims)),
            replace=False,
        )
        device.delete_db_rows(db, [int(i) for i in doomed])
        for _ in range(config.updates_per_round):
            alive = state.store.visible_ids()
            target = int(alive[int(rng.integers(0, len(alive)))])
            device.update_db_row(
                db, target, rng.normal(0, 1, dim).astype(np.float32)
            )
        stale_r, stale_s = _measure_recall(
            search, probes, config.k, config.n_probe, include_delta=False
        )
        with_r, with_s = _measure_recall(
            search, probes, config.k, config.n_probe, include_delta=True
        )
        staleness.append(
            StalenessPoint(
                round=rnd,
                delta_fraction=state.store.delta_fraction(),
                stale_recall=stale_r,
                with_delta_recall=with_r,
                stale_scan_seconds=stale_s,
                with_delta_scan_seconds=with_s,
            )
        )

    # ------------------------------------------------------------ phase 2
    sim = Simulator()
    job = CompactionJob(device, db, search=search, policy=config.compaction)
    job.start(sim)
    # foreground queries land mid-compaction and preempt pending chunks
    for i, offset in enumerate((0.0005, 0.001, 0.0015)):
        def fire(qfv=probes[i % len(probes)]) -> None:
            handle = device.query(qfv, config.k, model, db)
            result = device.get_results(handle)
            job.preempt(sim.now + result.seconds)

        sim.schedule(offset, fire, label="fg-query")
    sim.run()
    report = job.report
    assert report is not None  # run() drains the job to completion
    post_recall, _ = _measure_recall(
        search, probes, config.k, config.n_probe, include_delta=False
    )
    # the freshly-clustered baseline: rebuild from scratch on the same
    # visible set and re-measure (the recovery target)
    baseline_search = DeltaAwareSearch(
        state.store,
        device._models[model],
        n_clusters=config.n_clusters,
        seed=config.seed,
    )
    baseline_search.rebuild(state.store.snapshot())
    baseline_recall, _ = _measure_recall(
        baseline_search, probes, config.k, config.n_probe, include_delta=False
    )

    # ------------------------------------------------------------ phase 3
    interference: List[InterferencePoint] = []
    isolated_seconds = 0.0
    for raw in config.interference_loads:
        offered = state.writepath.offered_load(raw)
        device.set_background_write_load(offered, policy="share")
        handle = device.query(probes[0], config.k, model, db)
        seconds = device.get_results(handle).seconds
        if raw == 0.0 or isolated_seconds == 0.0:
            isolated_seconds = seconds if raw == 0.0 else isolated_seconds
        slowdown = seconds / isolated_seconds if isolated_seconds else 1.0
        interference.append(
            InterferencePoint(
                raw_load=float(raw),
                offered_load=offered,
                query_seconds=seconds,
                slowdown=slowdown,
            )
        )
    device.set_background_write_load(0.0)

    if dtrace is not None:
        # lay the rounds out end-to-end from their measured scan costs,
        # then the compaction pass on its own DES timestamps
        root = dtrace.start_trace(
            "ingest lifecycle", 0.0, kind="ingest.lifecycle",
            track="ingest", app=config.app,
        )
        t = 0.0
        for point in staleness[1:]:
            dur = point.stale_scan_seconds + point.with_delta_scan_seconds
            dtrace.add_span(
                root, f"ingest round {point.round}", t, t + dur,
                kind="ingest.round", track="ingest",
                delta_fraction=point.delta_fraction,
                stale_recall=point.stale_recall,
                with_delta_recall=point.with_delta_recall,
            )
            t += dur
        dtrace.add_span(
            root, f"compaction x{report.chunks} chunks",
            t + report.started_s, t + report.finished_s,
            kind="ingest.compaction", track="ingest",
            preemptions=report.preemptions,
            rows_rewritten=report.rows_rewritten,
        )
        dtrace.end_span(root, t + report.finished_s)

    stats = state.writepath.stats
    return LifecycleReport(
        config=config,
        staleness=staleness,
        compaction=report,
        post_compaction_recall=post_recall,
        fresh_baseline_recall=baseline_recall,
        interference=interference,
        write_amplification=stats.write_amplification,
        host_writes=stats.host_writes,
        gc_relocations=stats.relocations,
        gc_erases=stats.erases,
        mutations=state.store.epoch,
        tombstones_reclaimed=device.metrics.counter(
            "ingest.reclaimed_rows"
        ).value,
        metrics=device.metrics.snapshot(),
    )
