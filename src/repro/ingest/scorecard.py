"""The ingest leg of the CI perf gate.

:func:`build_ingest_scorecard` runs the deterministic lifecycle loop at
a fixed, fast configuration and flattens the result into the same
nested-dict shape the other scorecard legs use, so
``benchmarks/perf_gate.py`` can diff it against the committed baseline
with the standard ±tolerance rule.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ingest.lifecycle import LifecycleConfig, run_lifecycle


#: the gate configuration: small enough for CI, big enough that the
#: staleness and interference signals are well away from noise
GATE_CONFIG = LifecycleConfig(
    app="textqa",
    n_base=1024,
    rounds=3,
    planted_per_round=64,
    random_per_round=48,
    deletes_per_round=24,
    updates_per_round=6,
    probe_queries=6,
    k=10,
    n_clusters=12,
    n_probe=3,
    seed=7,
)


def build_ingest_scorecard(
    config: Optional[LifecycleConfig] = None,
) -> Dict[str, object]:
    """Run the lifecycle loop and emit the perf-gate leg."""
    report = run_lifecycle(config or GATE_CONFIG)
    card = report.as_dict()
    card["meta"] = {
        "app": (config or GATE_CONFIG).app,
        "n_base": (config or GATE_CONFIG).n_base,
        "rounds": (config or GATE_CONFIG).rounds,
        "seed": (config or GATE_CONFIG).seed,
    }
    return card
