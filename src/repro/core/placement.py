"""Accelerator placements (paper Table 3).

DeepStore places accelerators at three levels of the SSD's internal
parallelism (paper Fig. 3):

=============  ==========  =========  ========  ===========  ========
Property       SSD-level   Channel    Chip
=============  ==========  =========  ========
Dataflow       OS          OS         WS
PEs            32 x 64     16 x 64    4 x 32
Frequency      800 MHz     800 MHz    400 MHz
Scratchpad     8 MB        512 KB     512 KB
Area (mm^2)    31.7        7.4        2.5
Power budget   55 W        1.71 W     0.43 W
=============  ==========  =========  ========

The channel-level accelerators use the SSD-level 8 MB scratchpad as a
shared second level for model weights; chip-level accelerators receive
weights over the flash channel bus, scheduled in lockstep by their
channel's accelerator, and therefore run weight-stationary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.graph import Graph
from repro.ssd.timing import SsdConfig
from repro.systolic import (
    ScratchpadHierarchy,
    ScratchpadLevel,
    SystolicArray,
    SystolicConfig,
)

KB = 1024
MB = 1024 * 1024


class UnsupportedModelError(ValueError):
    """Raised when a placement cannot execute a model (paper: the
    chip-level accelerator "can not execute ReId due to limited compute
    and on-chip memory resources")."""


@dataclass(frozen=True)
class AcceleratorPlacement:
    """One row of paper Table 3."""

    level: str  # "ssd" | "channel" | "chip"
    systolic: SystolicConfig
    scratchpad_bytes: int
    sram_model: str  # CACTI transistor model: itrs-hp or itrs-lop
    area_mm2: float  # published Table-3 area
    #: features the accelerator buffers while weights are broadcast
    #: (chip level only; bounds the lockstep scheduling window)
    dfv_window: int = 1

    def __post_init__(self) -> None:
        if self.level not in ("ssd", "channel", "chip"):
            raise ValueError(f"unknown level {self.level!r}")
        if self.scratchpad_bytes <= 0:
            raise ValueError("scratchpad must be positive")

    # ------------------------------------------------------------------
    def count(self, ssd: SsdConfig) -> int:
        """Number of accelerator instances in an SSD of this geometry."""
        geo = ssd.geometry
        if self.level == "ssd":
            return 1
        if self.level == "channel":
            return geo.channels
        return geo.channels * geo.chips_per_channel

    def power_budget_w(self, ssd: SsdConfig) -> float:
        """Per-accelerator share of the SSD's accelerator power budget."""
        return ssd.accelerator_power_budget_w / self.count(ssd)

    def build_array(self) -> SystolicArray:
        """A SystolicArray for this placement's configuration."""
        return SystolicArray(self.systolic)

    def build_hierarchy(self, ssd: SsdConfig) -> ScratchpadHierarchy:
        """The scratchpad hierarchy this placement sees."""
        l1 = ScratchpadLevel(
            name=f"{self.level}-l1",
            size_bytes=self.scratchpad_bytes,
            bandwidth_bytes_per_s=4 * self.systolic.frequency_hz
            * (self.systolic.rows + self.systolic.cols),
        )
        dram = ScratchpadLevel(
            name="dram",
            size_bytes=ssd.dram_bytes,
            # Non-resident weights are broadcast in lockstep to every
            # accelerator of the level, so each sees full DRAM bandwidth.
            bandwidth_bytes_per_s=ssd.dram_bandwidth,
        )
        if self.level == "channel":
            l2 = ScratchpadLevel(
                name="l2-ssd",
                size_bytes=SSD_LEVEL.scratchpad_bytes,
                bandwidth_bytes_per_s=ssd.dram_bandwidth,
            )
            return ScratchpadHierarchy(l1, l2=l2, dram=dram)
        if self.level == "chip":
            # Weights arrive over the channel bus; the DeepStore system
            # model charges that traffic to the bus explicitly, so the
            # mapper itself sees only L1 + a bus-backed stream level.
            bus = ScratchpadLevel(
                name="channel-bus",
                size_bytes=ssd.dram_bytes,
                bandwidth_bytes_per_s=ssd.timing.channel_bandwidth,
            )
            return ScratchpadHierarchy(l1, l2=None, dram=bus)
        return ScratchpadHierarchy(l1, l2=None, dram=dram)

    # ------------------------------------------------------------------
    def check_supported(self, graph: Graph) -> None:
        """Raise :class:`UnsupportedModelError` for infeasible models.

        The chip-level accelerator lacks the on-chip buffering for the
        im2col working sets of convolutional layers and the compute for
        large spatial models — the paper excludes ReId from the chip
        level for exactly this reason.
        """
        if self.level != "chip":
            return
        counts = graph.count_layers()
        if counts["conv"] > 0:
            raise UnsupportedModelError(
                f"chip-level accelerator cannot execute {graph.name!r}: "
                f"convolutional layers exceed its compute and on-chip "
                f"memory resources"
            )

    def supports(self, graph: Graph) -> bool:
        """Non-raising form of check_supported."""
        try:
            self.check_supported(graph)
        except UnsupportedModelError:
            return False
        return True

    def dfv_buffer_features(self, feature_bytes: int) -> int:
        """Features bufferable while a weight broadcast is in flight."""
        if feature_bytes <= 0:
            raise ValueError("feature_bytes must be positive")
        reserve = int(self.scratchpad_bytes * ScratchpadHierarchy.ACTIVATION_RESERVE
                      * 3)  # DFV staging may also spill into the weight space
        return max(1, min(self.dfv_window, reserve // feature_bytes))


SSD_LEVEL = AcceleratorPlacement(
    level="ssd",
    systolic=SystolicConfig(rows=32, cols=64, frequency_hz=800e6, dataflow="OS"),
    scratchpad_bytes=8 * MB,
    sram_model="itrs-hp",
    area_mm2=31.7,
)

CHANNEL_LEVEL = AcceleratorPlacement(
    level="channel",
    systolic=SystolicConfig(rows=16, cols=64, frequency_hz=800e6, dataflow="OS"),
    scratchpad_bytes=512 * KB,
    sram_model="itrs-hp",
    area_mm2=7.4,
)

CHIP_LEVEL = AcceleratorPlacement(
    level="chip",
    systolic=SystolicConfig(
        rows=4, cols=32, frequency_hz=400e6, dataflow="WS", ws_stream_batch=24
    ),
    scratchpad_bytes=512 * KB,
    sram_model="itrs-lop",
    area_mm2=2.5,
    dfv_window=24,
)

LEVELS = {"ssd": SSD_LEVEL, "channel": CHANNEL_LEVEL, "chip": CHIP_LEVEL}
