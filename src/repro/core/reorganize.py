"""In-storage feature reorganization (paper §7).

Related work the paper points at ("recent work has explored reorganizing
feature vectors in-storage for efficient search operations; such
techniques can also be exploited by DeepStore") groups feature vectors by
coarse similarity so a query can skip most of the database.  Intelligent
queries cannot use *exact* indexes (the SCN is non-metric), but a coarse
**inverted-file (IVF) layout** still works as a *candidate filter*: store
each feature in the cluster of its nearest coarse centroid, and at query
time scan only the ``n_probe`` clusters whose centroids sit closest to
the query — accepting a measurable recall loss in exchange for reading a
fraction of the flash.

This module provides both sides:

* :class:`ClusteredLayout` — k-means-lite clustering (deterministic
  Lloyd iterations), per-cluster extents on the simulated SSD, and the
  probe-selection rule;
* :class:`ReorganizedSearch` — functional top-K over the probed clusters
  (so recall against a full scan is measurable) plus the timing: the
  DeepStore scan model applied to only the probed fraction of pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.deepstore import DeepStoreSystem
from repro.nn.graph import Graph
from repro.ssd.ftl import BlockFtl, DatabaseMetadata
from repro.workloads.apps import AppSpec


class ReorganizeError(ValueError):
    """Raised for invalid clustering parameters."""


def kmeans_lite(
    data: np.ndarray, k: int, iterations: int = 8, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic Lloyd's k-means; returns (centroids, assignments)."""
    if k <= 0 or k > len(data):
        raise ReorganizeError(f"k={k} invalid for {len(data)} vectors")
    rng = np.random.default_rng(seed)
    centroids = data[rng.choice(len(data), size=k, replace=False)].astype(
        np.float64
    )
    assignments = np.zeros(len(data), dtype=np.int64)
    for _ in range(max(1, iterations)):
        # distance via (x - c)^2 = |x|^2 - 2 x.c + |c|^2
        dots = data @ centroids.T
        norms = (centroids * centroids).sum(axis=1)
        assignments = np.argmax(2 * dots - norms, axis=1)
        for j in range(k):
            members = data[assignments == j]
            if len(members):
                centroids[j] = members.mean(axis=0)
            else:
                # re-seed empty clusters from the densest cluster's
                # members so k distinct groups survive a bad init
                biggest = int(np.bincount(assignments, minlength=k).argmax())
                pool = np.flatnonzero(assignments == biggest)
                centroids[j] = data[pool[int(rng.integers(0, len(pool)))]]
    return centroids.astype(np.float32), assignments


@dataclass
class ClusteredLayout:
    """An IVF-style on-flash layout of a feature database."""

    centroids: np.ndarray
    #: feature indices of each cluster, in storage order
    clusters: List[np.ndarray]
    #: per-cluster database metadata (each cluster is its own extent run)
    cluster_metas: List[DatabaseMetadata] = field(default_factory=list)

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    @property
    def total_features(self) -> int:
        return int(sum(len(c) for c in self.clusters))

    def probe_order(self, qfv: np.ndarray) -> np.ndarray:
        """Clusters sorted by centroid distance to the query."""
        q = qfv.reshape(-1).astype(np.float64)
        dots = self.centroids @ q
        norms = (self.centroids * self.centroids).sum(axis=1)
        score = 2 * dots - norms  # monotone in -distance
        return np.argsort(-score)

    def probed_features(self, qfv: np.ndarray, n_probe: int) -> np.ndarray:
        """Feature indices covered by probing ``n_probe`` clusters."""
        if not 1 <= n_probe <= self.n_clusters:
            raise ReorganizeError(
                f"n_probe={n_probe} out of range [1, {self.n_clusters}]"
            )
        order = self.probe_order(qfv)[:n_probe]
        return np.concatenate([self.clusters[j] for j in order])

    def probed_fraction(self, qfv: np.ndarray, n_probe: int) -> float:
        """Fraction of the database covered by n_probe clusters."""
        return len(self.probed_features(qfv, n_probe)) / max(1, self.total_features)


def build_layout(
    features: np.ndarray,
    n_clusters: int,
    ftl: Optional[BlockFtl] = None,
    feature_bytes: Optional[int] = None,
    seed: int = 0,
) -> ClusteredLayout:
    """Cluster ``features`` and (optionally) lay each cluster on flash."""
    centroids, assignments = kmeans_lite(features, n_clusters, seed=seed)
    clusters = [
        np.flatnonzero(assignments == j).astype(np.int64)
        for j in range(n_clusters)
    ]
    layout = ClusteredLayout(centroids=centroids, clusters=clusters)
    if ftl is not None:
        nbytes = feature_bytes or features.shape[1] * 4
        for cluster in clusters:
            count = max(1, len(cluster))
            layout.cluster_metas.append(ftl.create_database(nbytes, count))
    return layout


@dataclass
class ReorganizedResult:
    """Outcome of a probed (partial-scan) query."""

    feature_ids: np.ndarray
    scores: np.ndarray
    probed_features: int
    total_features: int
    scan_seconds: float
    full_scan_seconds: float

    @property
    def scan_fraction(self) -> float:
        return self.probed_features / max(1, self.total_features)

    @property
    def speedup(self) -> float:
        return self.full_scan_seconds / self.scan_seconds if self.scan_seconds else 0.0

    def recall_against(self, full_topk: np.ndarray) -> float:
        """Fraction of the exact top-K recovered by the probed scan."""
        if len(full_topk) == 0:
            return 1.0
        return len(set(self.feature_ids.tolist()) & set(full_topk.tolist())) / len(
            full_topk
        )


class ReorganizedSearch:
    """Probed top-K search over a clustered layout."""

    def __init__(
        self,
        layout: ClusteredLayout,
        features: np.ndarray,
        app: AppSpec,
        graph: Graph,
        system: Optional[DeepStoreSystem] = None,
    ):
        if layout.total_features != len(features):
            raise ReorganizeError("layout does not cover the feature array")
        self.layout = layout
        self.features = features
        self.app = app
        self.graph = graph
        self.system = system or DeepStoreSystem.at_level("channel")

    # ------------------------------------------------------------------
    def _score(self, qfv: np.ndarray, subset: np.ndarray) -> np.ndarray:
        q_id, d_id = self.graph.input_ids
        q_shape = self.graph.shape_of(q_id)
        d_shape = self.graph.shape_of(d_id)
        batch = self.features[subset].reshape((-1, *d_shape))
        tiled = np.broadcast_to(
            qfv.reshape(q_shape), (len(subset), *q_shape)
        )
        out = self.graph.forward(
            {q_id: np.ascontiguousarray(tiled), d_id: np.ascontiguousarray(batch)}
        )
        return out.reshape(-1)

    def _scan_seconds(self, n_features: int) -> float:
        meta = DatabaseMetadata(
            db_id=0,
            feature_bytes=self.app.feature_bytes,
            feature_count=max(1, n_features),
            page_bytes=self.system.ssd.geometry.page_bytes,
        )
        meta.extents = []  # latency model only uses counts/ratios
        return self.system.latency_for(
            self.graph, meta, feature_bytes=self.app.feature_bytes,
            name=self.graph.name,
        ).total_seconds

    def query(self, qfv: np.ndarray, k: int, n_probe: int) -> ReorganizedResult:
        """Top-K over the probed clusters with modelled timing."""
        if k <= 0:
            raise ReorganizeError("K must be positive")
        subset = self.layout.probed_features(qfv, n_probe)
        scores = self._score(qfv, subset)
        take = min(k, len(scores))
        top = np.argsort(-scores)[:take]
        return ReorganizedResult(
            feature_ids=subset[top],
            scores=scores[top],
            probed_features=len(subset),
            total_features=self.layout.total_features,
            scan_seconds=self._scan_seconds(len(subset)),
            full_scan_seconds=self._scan_seconds(self.layout.total_features),
        )

    def exact_topk(self, qfv: np.ndarray, k: int) -> np.ndarray:
        """Ground-truth top-K from a full scan (for recall measurement)."""
        scores = self._score(qfv, np.arange(len(self.features)))
        return np.argsort(-scores)[:k]
