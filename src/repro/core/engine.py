"""The in-storage runtime's query engine (paper §4.7.1).

The query engine is software on the SSD's embedded cores.  Per query it
parses the request, checks the query cache, maps the SCN onto the
accelerators (map), collects and merges their top-K results (reduce), and
DMAs results to the host on ``getResults``.  These are small costs next
to a database scan, but they are real serial overheads — the model keeps
them explicit so cache-hit latencies (which skip the scan) are honest.

The engine is also where runtime robustness lives: accelerators are
programmed with a **dispatch timeout**, retried with exponential backoff
a bounded number of times, and declared dead when the ladder is
exhausted — at which point the query degrades gracefully (the dead
accelerator's stripe is remapped onto survivors, see
:mod:`repro.core.scheduler`) instead of hanging or failing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.topk import merge_topk
from repro.ssd.timing import SsdConfig


@dataclass(frozen=True)
class DispatchPolicy:
    """Timeout/retry policy for programming one accelerator.

    An accelerator that does not acknowledge its dispatch within
    ``timeout_seconds`` is retried with exponential backoff
    (``timeout * backoff**attempt``) up to ``max_retries`` times; once
    the ladder is exhausted the engine declares it dead and remaps its
    work.  The defaults bound failure detection to well under a
    millisecond — small against a database scan, visible against a
    cache hit, exactly the trade a production runtime makes.
    """

    #: first-attempt acknowledgement timeout
    timeout_seconds: float = 100e-6
    #: retries after the first attempt before declaring the accelerator dead
    max_retries: int = 3
    #: backoff multiplier applied per retry
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")

    def attempt_timeout_seconds(self, attempt: int) -> float:
        """Timeout of the ``attempt``-th try (0-based, backed off)."""
        if attempt < 0:
            raise ValueError("attempt cannot be negative")
        return self.timeout_seconds * self.backoff**attempt

    @property
    def attempts(self) -> int:
        """Total tries before giving up (first + retries)."""
        return 1 + self.max_retries

    def give_up_seconds(self) -> float:
        """Time burned before declaring one dead accelerator dead."""
        return sum(
            self.attempt_timeout_seconds(i) for i in range(self.attempts)
        )


@dataclass(frozen=True)
class EngineCosts:
    """Embedded-core runtime costs."""

    #: parsing a query command and metadata lookup in cached tables
    parse_seconds: float = 5e-6
    #: programming one accelerator (model address, db range, K)
    dispatch_per_accel_seconds: float = 1e-6
    #: merging one partial top-K entry on the embedded cores
    merge_per_entry_seconds: float = 0.2e-6
    #: query-cache bookkeeping (LRU promote/insert)
    cache_update_seconds: float = 2e-6
    #: power drawn by the embedded cores while the engine runs
    embedded_power_w: float = 4.0

    def __post_init__(self) -> None:
        for name in (
            "parse_seconds",
            "dispatch_per_accel_seconds",
            "merge_per_entry_seconds",
            "cache_update_seconds",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")


class QueryEngine:
    """Cost model + functional reduce step of the runtime."""

    def __init__(self, ssd: SsdConfig, costs: EngineCosts | None = None):
        self.ssd = ssd
        self.costs = costs or EngineCosts()

    # ------------------------------------------------------------------
    # cost model
    # ------------------------------------------------------------------
    def dispatch_seconds(self, n_accels: int) -> float:
        """Parse + per-accelerator programming time (map step)."""
        if n_accels <= 0:
            raise ValueError("n_accels must be positive")
        return (
            self.costs.parse_seconds
            + n_accels * self.costs.dispatch_per_accel_seconds
        )

    def merge_seconds(self, n_accels: int, k: int) -> float:
        """Reduce step: merge ``n_accels`` partial top-K lists."""
        if n_accels <= 0:
            raise ValueError("n_accels must be positive")
        if k <= 0:
            raise ValueError("K must be positive")
        return n_accels * k * self.costs.merge_per_entry_seconds

    def degraded_dispatch_seconds(
        self,
        n_accels: int,
        n_failed: int,
        policy: "DispatchPolicy | None" = None,
    ) -> float:
        """Map step with ``n_failed`` dead accelerators.

        The engine pays the normal dispatch for the survivors plus one
        full timeout/backoff ladder per dead accelerator before it can
        declare the failure and remap the stripe.
        """
        policy = policy or DispatchPolicy()
        if n_failed < 0:
            raise ValueError("n_failed cannot be negative")
        if n_failed >= n_accels:
            raise ValueError(
                f"cannot lose all accelerators ({n_failed} of {n_accels})"
            )
        return (
            self.dispatch_seconds(n_accels - n_failed)
            + n_failed * policy.give_up_seconds()
        )

    def result_transfer_seconds(self, k: int, feature_bytes: int) -> float:
        """``getResults`` DMA: top-K feature vectors + 8-byte ObjectIDs."""
        payload = k * (feature_bytes + 8)
        return payload / self.ssd.external_bandwidth

    def query_overhead_seconds(self, n_accels: int, k: int) -> float:
        """All serial engine costs of one query (excluding the scan)."""
        return (
            self.dispatch_seconds(n_accels)
            + self.merge_seconds(n_accels, k)
            + self.costs.cache_update_seconds
        )

    def energy_j(self, engine_seconds: float) -> float:
        """Embedded-core energy for the engine's share of a query."""
        if engine_seconds < 0:
            raise ValueError("negative engine time")
        return engine_seconds * self.costs.embedded_power_w

    # ------------------------------------------------------------------
    # functional reduce
    # ------------------------------------------------------------------
    @staticmethod
    def merge_results(
        partials: List[List[Tuple[float, int]]], k: int
    ) -> List[Tuple[float, int]]:
        """Merge per-accelerator top-K lists (delegates to topk)."""
        return merge_topk(partials, k)
