"""The in-storage runtime's query engine (paper §4.7.1).

The query engine is software on the SSD's embedded cores.  Per query it
parses the request, checks the query cache, maps the SCN onto the
accelerators (map), collects and merges their top-K results (reduce), and
DMAs results to the host on ``getResults``.  These are small costs next
to a database scan, but they are real serial overheads — the model keeps
them explicit so cache-hit latencies (which skip the scan) are honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.topk import merge_topk
from repro.ssd.timing import SsdConfig


@dataclass(frozen=True)
class EngineCosts:
    """Embedded-core runtime costs."""

    #: parsing a query command and metadata lookup in cached tables
    parse_seconds: float = 5e-6
    #: programming one accelerator (model address, db range, K)
    dispatch_per_accel_seconds: float = 1e-6
    #: merging one partial top-K entry on the embedded cores
    merge_per_entry_seconds: float = 0.2e-6
    #: query-cache bookkeeping (LRU promote/insert)
    cache_update_seconds: float = 2e-6
    #: power drawn by the embedded cores while the engine runs
    embedded_power_w: float = 4.0

    def __post_init__(self) -> None:
        for name in (
            "parse_seconds",
            "dispatch_per_accel_seconds",
            "merge_per_entry_seconds",
            "cache_update_seconds",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")


class QueryEngine:
    """Cost model + functional reduce step of the runtime."""

    def __init__(self, ssd: SsdConfig, costs: EngineCosts | None = None):
        self.ssd = ssd
        self.costs = costs or EngineCosts()

    # ------------------------------------------------------------------
    # cost model
    # ------------------------------------------------------------------
    def dispatch_seconds(self, n_accels: int) -> float:
        """Parse + per-accelerator programming time (map step)."""
        if n_accels <= 0:
            raise ValueError("n_accels must be positive")
        return (
            self.costs.parse_seconds
            + n_accels * self.costs.dispatch_per_accel_seconds
        )

    def merge_seconds(self, n_accels: int, k: int) -> float:
        """Reduce step: merge ``n_accels`` partial top-K lists."""
        if k <= 0:
            raise ValueError("K must be positive")
        return n_accels * k * self.costs.merge_per_entry_seconds

    def result_transfer_seconds(self, k: int, feature_bytes: int) -> float:
        """``getResults`` DMA: top-K feature vectors + 8-byte ObjectIDs."""
        payload = k * (feature_bytes + 8)
        return payload / self.ssd.external_bandwidth

    def query_overhead_seconds(self, n_accels: int, k: int) -> float:
        """All serial engine costs of one query (excluding the scan)."""
        return (
            self.dispatch_seconds(n_accels)
            + self.merge_seconds(n_accels, k)
            + self.costs.cache_update_seconds
        )

    def energy_j(self, engine_seconds: float) -> float:
        """Embedded-core energy for the engine's share of a query."""
        if engine_seconds < 0:
            raise ValueError("negative engine time")
        return engine_seconds * self.costs.embedded_power_w

    # ------------------------------------------------------------------
    # functional reduce
    # ------------------------------------------------------------------
    @staticmethod
    def merge_results(
        partials: List[List[Tuple[float, int]]], k: int
    ) -> List[Tuple[float, int]]:
        """Merge per-accelerator top-K lists (delegates to topk)."""
        return merge_topk(partials, k)
