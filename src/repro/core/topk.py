"""Hardware top-K sorter (paper §4.3).

The accelerator controller keeps the running top-K in a priority queue
implemented with a **sorted tag array** and a **mapping table**: tags are
kept sorted by score; the mapping table, indexed by tag, stores the score
and feature id.  A new score triggers a binary search over the tag array;
on insert, lower-priority tags shift down by one, the lowest is dropped,
and its tag is recycled for the new entry.

The functional model below mirrors that structure exactly (so behaviour
and cost can be tested against it), and exposes the cycle cost the
accelerator profile charges: a compare against the current minimum every
update, plus ``log2(K) + shift`` cycles on actual inserts.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from math import ceil, log2
from typing import List, Sequence, Tuple


@dataclass
class _MapEntry:
    score: float
    feature_id: int


class TopKSorter:
    """Sorted-tag-array top-K tracker with cycle accounting."""

    def __init__(self, k: int):
        if k <= 0:
            raise ValueError("K must be positive")
        self.k = k
        # tag_array[i] = tag of the i-th best entry; mapping_table[tag]
        self._tag_array: List[int] = []
        self._mapping_table: List[_MapEntry] = [
            _MapEntry(float("-inf"), -1) for _ in range(k)
        ]
        self._free_tags = list(range(k))
        self.updates = 0
        self.inserts = 0
        self.cycles = 0

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._tag_array)

    @property
    def min_score(self) -> float:
        if len(self._tag_array) < self.k:
            return float("-inf")
        return self._mapping_table[self._tag_array[-1]].score

    def update(self, score: float, feature_id: int) -> bool:
        """Offer one (score, feature) pair; returns True if inserted."""
        self.updates += 1
        self.cycles += 1  # compare against current minimum
        if len(self._tag_array) >= self.k and score <= self.min_score:
            return False
        self.inserts += 1
        position = self._binary_search(score)
        if len(self._tag_array) < self.k:
            tag = self._free_tags.pop()
        else:
            tag = self._tag_array.pop()  # evict the lowest priority entry
        self._mapping_table[tag] = _MapEntry(score, feature_id)
        self._tag_array.insert(position, tag)
        # binary search + shifting lower-priority tags down by one
        self.cycles += ceil(log2(self.k)) + (len(self._tag_array) - position)
        return True

    def _binary_search(self, score: float) -> int:
        lo, hi = 0, len(self._tag_array)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._mapping_table[self._tag_array[mid]].score >= score:
                lo = mid + 1
            else:
                hi = mid
        return lo

    # ------------------------------------------------------------------
    def results(self) -> List[Tuple[float, int]]:
        """Current top-K as (score, feature_id), best first."""
        return [
            (self._mapping_table[tag].score, self._mapping_table[tag].feature_id)
            for tag in self._tag_array
        ]

    def expected_cycles_per_update(self, n_candidates: int) -> float:
        """Analytic mean cycles/update over a random-score stream.

        For i.i.d. scores, candidate ``i`` enters the top-K with
        probability ``min(1, k/i)``; summing gives roughly
        ``k ln(n/k) + k`` inserts over ``n`` candidates.
        """
        if n_candidates <= 0:
            raise ValueError("n_candidates must be positive")
        import math

        n, k = n_candidates, self.k
        expected_inserts = k * (1 + math.log(max(1.0, n / k)))
        insert_cost = ceil(log2(k)) + k / 2
        return 1.0 + min(1.0, expected_inserts / n) * insert_cost


def merge_topk(partials: List[List[Tuple[float, int]]], k: int) -> List[Tuple[float, int]]:
    """Merge per-accelerator top-K lists into the final top-K.

    This is the reduce step of the query engine's map-reduce execution
    (paper §4.7.1): each accelerator writes its top-K to SSD DRAM and the
    engine merges them.
    """
    if k <= 0:
        raise ValueError("K must be positive")
    merged = [item for partial in partials for item in partial]
    merged.sort(key=lambda pair: (-pair[0], pair[1]))
    return merged[:k]


def topk_select(
    pairs: Sequence[Tuple[float, int]], k: int
) -> List[Tuple[float, int]]:
    """Canonical top-K of arbitrary (score, id) pairs.

    The canonical order — score descending, feature id ascending on
    ties — is the tie-break every layer of the stack agrees on, so a
    sharded computation and an unsharded one pick the *same* winners
    even when duplicate scores straddle the K-th place.
    """
    if k <= 0:
        raise ValueError("K must be positive")
    return sorted(pairs, key=lambda pair: (-pair[0], pair[1]))[:k]


@dataclass(frozen=True)
class KWayMergeStats:
    """Work accounting of one streaming K-way merge.

    ``heap_ops`` is what the coordinator's cost model charges: each
    pop/push against the ``lists``-wide heap costs ``log2(lists)``
    comparisons, and a merge over a single list is free (the degenerate
    one-shard cluster must add zero hidden cost).
    """

    lists: int
    entries_offered: int
    entries_popped: int
    heap_ops: int

    @property
    def comparisons(self) -> int:
        """Heap comparisons: ``heap_ops * ceil(log2(lists))``."""
        if self.lists <= 1:
            return 0
        return self.heap_ops * ceil(log2(self.lists))


def kway_merge_topk(
    partials: Sequence[Sequence[Tuple[float, int]]], k: int
) -> Tuple[List[Tuple[float, int]], KWayMergeStats]:
    """Exact global top-K of per-shard top-K lists, streamed.

    The scatter-gather reduce of the cluster layer: each partial must be
    sorted in the canonical order (score descending, id ascending on
    ties — :func:`topk_select` produces exactly that), and the merge
    then consumes at most ``k`` entries head-first from a ``len(
    partials)``-way heap instead of materializing and sorting the
    concatenation.  The result is identical to
    ``merge_topk(partials, k)`` for canonical inputs; the stats power
    the coordinator's gather cost model.
    """
    if k <= 0:
        raise ValueError("K must be positive")
    heads: List[Tuple[float, int, int, int]] = []
    offered = 0
    for which, partial in enumerate(partials):
        offered += len(partial)
        if partial:
            score, fid = partial[0]
            # negate the score: heapq is a min-heap, we pop best-first
            heads.append((-score, fid, which, 0))
    heapq.heapify(heads)
    heap_ops = len(heads)
    merged: List[Tuple[float, int]] = []
    while heads and len(merged) < k:
        neg_score, fid, which, pos = heapq.heappop(heads)
        heap_ops += 1
        merged.append((-neg_score, fid))
        nxt = pos + 1
        partial = partials[which]
        if nxt < len(partial):
            score, next_fid = partial[nxt]
            heapq.heappush(heads, (-score, next_fid, which, nxt))
            heap_ops += 1
    stats = KWayMergeStats(
        lists=len(partials),
        entries_offered=offered,
        entries_popped=len(merged),
        heap_ops=heap_ops,
    )
    return merged, stats
