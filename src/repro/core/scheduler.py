"""Multi-query scan sharing and degraded-mode scan planning.

The paper evaluates one query at a time; its query engine, however,
naturally admits an extension the flash layout makes attractive: when
several intelligent queries are pending against the same database, one
pass over the feature vectors can score *all* of them — each DFV read
from flash is compared against every outstanding QFV before being
discarded.  I/O-bound scans then serve extra queries almost for free
until the accelerators become compute-bound.

:class:`MultiQueryScheduler` models this: per-feature compute scales with
the number of co-scheduled queries while the flash feed and any
non-resident weight stream are paid once, and the crossover ("free"
concurrency) falls out of the same steady-state max() as everything else.

The second half of this module is the engine's **degraded-mode scan
planner**: when dispatch timeouts declare an accelerator dead
(:class:`~repro.core.engine.DispatchPolicy`), its slice of the database
is remapped onto the survivors so the query still returns the exact
same top-K — slower, never wrong.  :func:`plan_degraded_scan` does the
range arithmetic and :func:`degraded_topk` is the functional reduce the
correctness tests check against a healthy scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.deepstore import DeepStoreSystem
from repro.core.topk import merge_topk
from repro.nn.graph import Graph
from repro.ssd.ftl import DatabaseMetadata
from repro.workloads.apps import AppSpec


@dataclass
class SharedScanReport:
    """Cost of scanning once for ``n_queries`` concurrent queries."""

    app: str
    level: str
    n_queries: int
    scan_seconds: float
    single_query_seconds: float

    @property
    def batch_speedup(self) -> float:
        """Speedup over running the queries back-to-back."""
        return self.n_queries * self.single_query_seconds / self.scan_seconds

    @property
    def queries_per_second(self) -> float:
        return self.n_queries / self.scan_seconds if self.scan_seconds else 0.0

    @property
    def marginal_cost(self) -> float:
        """Extra time per additional query, as a fraction of one scan."""
        if self.n_queries <= 1:
            return 0.0
        return (self.scan_seconds - self.single_query_seconds) / (
            (self.n_queries - 1) * self.single_query_seconds
        )


class MultiQueryScheduler:
    """Scan sharing on top of a :class:`DeepStoreSystem`."""

    def __init__(self, system: Optional[DeepStoreSystem] = None):
        self.system = system or DeepStoreSystem.at_level("channel")

    def shared_scan(
        self,
        app: AppSpec,
        meta: DatabaseMetadata,
        n_queries: int,
        graph: Optional[Graph] = None,
    ) -> SharedScanReport:
        """Latency of one shared scan serving ``n_queries`` queries."""
        if n_queries <= 0:
            raise ValueError("n_queries must be positive")
        graph = graph or app.build_scn()
        system = self.system
        accel = system.accelerator_for(graph)
        geo = system.ssd.geometry
        count = system.placement.count(system.ssd)
        stripe = meta.feature_count / count

        io_spf = system.io_seconds_per_feature(meta)
        bus_spf = system.bus_weight_seconds_per_feature(graph, app.feature_bytes)
        profile = accel.profile
        # compute scales per query; weight streaming is paid once per
        # feature regardless of how many queries consume it
        compute_1 = profile.compute_seconds_per_feature \
            + accel.topk_seconds_per_feature(int(max(1, stripe)))
        stream_spf = sum(
            layer.stream_seconds_per_feature for layer in profile.layers
        )

        def per_feature(n: int) -> float:
            if system.placement.level == "chip":
                chips = geo.chips_per_channel
                return max(io_spf + bus_spf, n * compute_1 / chips, stream_spf)
            return max(io_spf, n * compute_1, stream_spf)

        def scan_seconds(n: int) -> float:
            if system.placement.level == "ssd":
                base = meta.feature_count * per_feature(n)
            elif system.placement.level == "chip":
                base = (meta.feature_count / geo.channels) * per_feature(n)
            else:
                base = stripe * per_feature(n)
            overhead = system.engine.dispatch_seconds(count) + n * (
                system.engine.merge_seconds(count, system.k)
            )
            return base + overhead + accel.query_setup_seconds()

        return SharedScanReport(
            app=app.name,
            level=system.placement.level,
            n_queries=n_queries,
            scan_seconds=scan_seconds(n_queries),
            single_query_seconds=scan_seconds(1),
        )

    def free_concurrency(
        self,
        app: AppSpec,
        meta: DatabaseMetadata,
        graph: Optional[Graph] = None,
        tolerance: float = 1.05,
        max_queries: int = 4096,
    ) -> int:
        """Largest query batch whose shared scan stays within
        ``tolerance`` of a single query's scan time — the concurrency the
        flash bottleneck hands out for free."""
        if tolerance < 1.0:
            raise ValueError("tolerance must be >= 1.0")
        graph = graph or app.build_scn()
        single = self.shared_scan(app, meta, 1, graph=graph).scan_seconds
        best = 1
        n = 1
        while n <= max_queries:
            report = self.shared_scan(app, meta, n, graph=graph)
            if report.scan_seconds <= single * tolerance:
                best = n
                n *= 2
            else:
                break
        # binary refine between best and n
        low, high = best, min(n, max_queries)
        while low + 1 < high:
            mid = (low + high) // 2
            report = self.shared_scan(app, meta, mid, graph=graph)
            if report.scan_seconds <= single * tolerance:
                low = mid
            else:
                high = mid
        return low


# ----------------------------------------------------------------------
# degraded-mode scan planning
# ----------------------------------------------------------------------
def partition_feature_ranges(
    n_features: int, n_accels: int
) -> List[Tuple[int, int]]:
    """Contiguous ``[start, end)`` feature ranges, one per accelerator.

    Mirrors the engine's healthy map step: the database splits into
    ``n_accels`` nearly equal stripes (the first ``n % accels`` stripes
    take one extra feature).  Ranges cover ``[0, n_features)`` exactly.
    """
    if n_features <= 0:
        raise ValueError("n_features must be positive")
    if n_accels <= 0:
        raise ValueError("n_accels must be positive")
    base, extra = divmod(n_features, n_accels)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for i in range(n_accels):
        size = base + (1 if i < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


@dataclass
class DegradedScanPlan:
    """Work assignment after remapping failed accelerators' stripes.

    ``assignments`` maps each *surviving* accelerator index to the list
    of feature ranges it scans: its own stripe first, then any adopted
    ranges.  The union of all assigned ranges is exactly the healthy
    partition, which is what makes degraded top-K results identical to
    healthy ones.
    """

    n_features: int
    n_accels: int
    failed: Tuple[int, ...]
    assignments: Dict[int, List[Tuple[int, int]]] = field(default_factory=dict)

    @property
    def survivors(self) -> List[int]:
        """Surviving accelerator indices, ascending."""
        return sorted(self.assignments)

    @property
    def max_load(self) -> int:
        """Features scanned by the most-loaded survivor."""
        return max(
            sum(end - start for start, end in ranges)
            for ranges in self.assignments.values()
        )

    @property
    def load_factor(self) -> float:
        """Slowest survivor's load relative to a healthy stripe.

        The scan finishes when the most-loaded survivor finishes, so
        degraded scan time is (to first order) healthy scan time times
        this factor.  1.0 with no failures.
        """
        healthy_stripe = self.n_features / self.n_accels
        return self.max_load / healthy_stripe if healthy_stripe else 1.0


def plan_degraded_scan(
    n_features: int, n_accels: int, failed: Iterable[int]
) -> DegradedScanPlan:
    """Remap failed accelerators' stripes round-robin onto survivors.

    Raises ``ValueError`` when every accelerator failed — there is no
    degraded mode without at least one survivor (the host fallback is a
    different system's job).
    """
    failed_set = set(failed)
    for index in failed_set:
        if not 0 <= index < n_accels:
            raise ValueError(f"failed index {index} out of range 0..{n_accels - 1}")
    survivors = [i for i in range(n_accels) if i not in failed_set]
    if not survivors:
        raise ValueError("all accelerators failed; no degraded mode possible")
    ranges = partition_feature_ranges(n_features, n_accels)
    assignments: Dict[int, List[Tuple[int, int]]] = {
        i: [ranges[i]] for i in survivors
    }
    for j, dead in enumerate(sorted(failed_set)):
        adopter = survivors[j % len(survivors)]
        assignments[adopter].append(ranges[dead])
    return DegradedScanPlan(
        n_features=n_features,
        n_accels=n_accels,
        failed=tuple(sorted(failed_set)),
        assignments=assignments,
    )


def degraded_topk(
    scores: np.ndarray, plan: DegradedScanPlan, k: int
) -> List[Tuple[float, int]]:
    """Functional degraded reduce: per-survivor partial top-K, merged.

    Each survivor scans its assigned ranges and keeps a local top-K;
    the engine merges the partials (same tie-breaking as
    :func:`~repro.core.topk.merge_topk`, so results are bit-identical
    to a healthy scan over the whole score array).
    """
    if k <= 0:
        raise ValueError("K must be positive")
    scores = np.asarray(scores)
    partials: List[List[Tuple[float, int]]] = []
    for accel in plan.survivors:
        local: List[Tuple[float, int]] = []
        for start, end in plan.assignments[accel]:
            window = scores[start:end]
            if window.size == 0:
                continue
            take = min(k, window.size)
            # lexsort by (score desc, index asc): ties must resolve the
            # same way merge_topk does, or a remapped range could keep a
            # different tied candidate than the healthy scan would
            top = np.lexsort((np.arange(window.size), -window))[:take]
            local.extend(
                (float(window[i]), int(start + i)) for i in top
            )
        partials.append(merge_topk([local], k))
    return merge_topk(partials, k)
