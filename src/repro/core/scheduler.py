"""Multi-query scan sharing.

The paper evaluates one query at a time; its query engine, however,
naturally admits an extension the flash layout makes attractive: when
several intelligent queries are pending against the same database, one
pass over the feature vectors can score *all* of them — each DFV read
from flash is compared against every outstanding QFV before being
discarded.  I/O-bound scans then serve extra queries almost for free
until the accelerators become compute-bound.

:class:`MultiQueryScheduler` models this: per-feature compute scales with
the number of co-scheduled queries while the flash feed and any
non-resident weight stream are paid once, and the crossover ("free"
concurrency) falls out of the same steady-state max() as everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.deepstore import DeepStoreSystem
from repro.nn.graph import Graph
from repro.ssd.ftl import DatabaseMetadata
from repro.workloads.apps import AppSpec


@dataclass
class SharedScanReport:
    """Cost of scanning once for ``n_queries`` concurrent queries."""

    app: str
    level: str
    n_queries: int
    scan_seconds: float
    single_query_seconds: float

    @property
    def batch_speedup(self) -> float:
        """Speedup over running the queries back-to-back."""
        return self.n_queries * self.single_query_seconds / self.scan_seconds

    @property
    def queries_per_second(self) -> float:
        return self.n_queries / self.scan_seconds if self.scan_seconds else 0.0

    @property
    def marginal_cost(self) -> float:
        """Extra time per additional query, as a fraction of one scan."""
        if self.n_queries <= 1:
            return 0.0
        return (self.scan_seconds - self.single_query_seconds) / (
            (self.n_queries - 1) * self.single_query_seconds
        )


class MultiQueryScheduler:
    """Scan sharing on top of a :class:`DeepStoreSystem`."""

    def __init__(self, system: Optional[DeepStoreSystem] = None):
        self.system = system or DeepStoreSystem.at_level("channel")

    def shared_scan(
        self,
        app: AppSpec,
        meta: DatabaseMetadata,
        n_queries: int,
        graph: Optional[Graph] = None,
    ) -> SharedScanReport:
        """Latency of one shared scan serving ``n_queries`` queries."""
        if n_queries <= 0:
            raise ValueError("n_queries must be positive")
        graph = graph or app.build_scn()
        system = self.system
        accel = system.accelerator_for(graph)
        geo = system.ssd.geometry
        count = system.placement.count(system.ssd)
        stripe = meta.feature_count / count

        io_spf = system.io_seconds_per_feature(meta)
        bus_spf = system.bus_weight_seconds_per_feature(graph, app.feature_bytes)
        profile = accel.profile
        # compute scales per query; weight streaming is paid once per
        # feature regardless of how many queries consume it
        compute_1 = profile.compute_seconds_per_feature \
            + accel.topk_seconds_per_feature(int(max(1, stripe)))
        stream_spf = sum(
            layer.stream_seconds_per_feature for layer in profile.layers
        )

        def per_feature(n: int) -> float:
            if system.placement.level == "chip":
                chips = geo.chips_per_channel
                return max(io_spf + bus_spf, n * compute_1 / chips, stream_spf)
            return max(io_spf, n * compute_1, stream_spf)

        def scan_seconds(n: int) -> float:
            if system.placement.level == "ssd":
                base = meta.feature_count * per_feature(n)
            elif system.placement.level == "chip":
                base = (meta.feature_count / geo.channels) * per_feature(n)
            else:
                base = stripe * per_feature(n)
            overhead = system.engine.dispatch_seconds(count) + n * (
                system.engine.merge_seconds(count, system.k)
            )
            return base + overhead + accel.query_setup_seconds()

        return SharedScanReport(
            app=app.name,
            level=system.placement.level,
            n_queries=n_queries,
            scan_seconds=scan_seconds(n_queries),
            single_query_seconds=scan_seconds(1),
        )

    def free_concurrency(
        self,
        app: AppSpec,
        meta: DatabaseMetadata,
        graph: Optional[Graph] = None,
        tolerance: float = 1.05,
        max_queries: int = 4096,
    ) -> int:
        """Largest query batch whose shared scan stays within
        ``tolerance`` of a single query's scan time — the concurrency the
        flash bottleneck hands out for free."""
        if tolerance < 1.0:
            raise ValueError("tolerance must be >= 1.0")
        graph = graph or app.build_scn()
        single = self.shared_scan(app, meta, 1, graph=graph).scan_seconds
        best = 1
        n = 1
        while n <= max_queries:
            report = self.shared_scan(app, meta, n, graph=graph)
            if report.scan_seconds <= single * tolerance:
                best = n
                n *= 2
            else:
                break
        # binary refine between best and n
        low, high = best, min(n, max_queries)
        while low + 1 < high:
            mid = (low + high) // 2
            report = self.shared_scan(app, meta, mid, graph=graph)
            if report.scan_seconds <= single * tolerance:
                low = mid
            else:
                high = mid
        return low
