"""Whole-device event-driven query execution.

The analytic :class:`~repro.core.deepstore.DeepStoreSystem` divides the
scan across channel accelerators and takes a steady-state max() per
channel.  This module checks that shortcut against a full discrete-event
execution: **every** channel controller, flash chip, plane, bus and
FLASH_DFV queue of the SSD simulated together, one accelerator consumer
per channel, with the query engine's merge as the closing barrier.

It is O(total pages), so it is used on scaled-down databases (tests) or
windows — but unlike the per-channel window probe it captures cross-
channel skew: the query finishes when the *slowest* stripe finishes.

With a :class:`~repro.faults.FaultInjector`, this is also the degraded-
mode execution path: NAND read-retries and CRC re-transfers stretch the
event timeline, dead chips drop their pages, and a dead channel-level
accelerator's stripe is remapped round-robin onto the surviving
channels' accelerators — the pages still stream off the dead channel's
(healthy) bus, but a survivor pays the compute, so the query completes
correctly at degraded speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.accelerator import InStorageAccelerator
from repro.core.engine import DispatchPolicy, QueryEngine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults import FaultInjector
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Tracer
from repro.core.placement import AcceleratorPlacement, CHANNEL_LEVEL
from repro.nn.graph import Graph
from repro.sim import BoundedQueue, Simulator, fastpath
from repro.ssd.controller import ChannelController
from repro.ssd.ftl import DatabaseMetadata
from repro.ssd.timing import SsdConfig
from repro.ssd.trace import scan_trace, scan_trace_bulk, scan_traces_by_channel
from repro.workloads.apps import AppSpec


@dataclass
class EventQueryResult:
    """Measured whole-device query execution."""

    total_seconds: float
    scan_seconds: float
    per_channel_seconds: List[float]
    pages: int
    #: pages lost to hard-failed chips/planes (fault injection only)
    pages_failed: int = 0
    #: channels whose accelerator was dead and remapped away
    failed_channels: List[int] = field(default_factory=list)
    #: pages a surviving channel scanned on a dead channel's behalf
    remapped_pages: int = 0
    #: serial engine overheads; ``scan + dispatch + merge + setup`` is
    #: exactly ``total_seconds`` (same floats, same add order)
    dispatch_seconds: float = 0.0
    merge_seconds: float = 0.0
    setup_seconds: float = 0.0

    @property
    def overhead_components(self) -> Dict[str, float]:
        """Named serial overheads for breakdown reporting."""
        return {
            "dispatch": self.dispatch_seconds,
            "merge": self.merge_seconds,
            "setup": self.setup_seconds,
        }

    @property
    def channel_skew(self) -> float:
        """Slowest / fastest stripe completion (1.0 = perfectly even)."""
        finite = [t for t in self.per_channel_seconds if t > 0]
        if not finite:
            return 1.0
        return max(finite) / min(finite)

    @property
    def availability(self) -> float:
        """Fraction of the database's pages actually scanned."""
        if self.pages == 0:
            return 1.0
        return (self.pages - self.pages_failed) / self.pages


class EventQuerySimulator:
    """Full-device DES execution of one channel-level query."""

    def __init__(
        self,
        ssd: Optional[SsdConfig] = None,
        placement: AcceleratorPlacement = CHANNEL_LEVEL,
        queue_depth: int = 8,
    ):
        if placement.level != "channel":
            raise ValueError("the event simulator models the channel level")
        if queue_depth <= 0:
            raise ValueError("queue_depth must be positive")
        self.ssd = ssd or SsdConfig()
        self.placement = placement
        self.queue_depth = queue_depth

    def run(
        self,
        app: AppSpec,
        meta: DatabaseMetadata,
        graph: Optional[Graph] = None,
        max_pages_per_channel: Optional[int] = None,
        injector: Optional["FaultInjector"] = None,
        policy: Optional[DispatchPolicy] = None,
        tracer: Optional["Tracer"] = None,
        metrics: Optional["MetricsRegistry"] = None,
        page_offsets: Optional[Sequence[int]] = None,
    ) -> EventQueryResult:
        """Simulate one query over every channel; returns measured times.

        ``page_offsets`` restricts the scan to those db page offsets —
        the index layer's routed probe on the DES timeline (only the
        probed lists' pages stream off flash).  ``None`` scans the full
        database, bit-identical to the pre-index behaviour.

        With ``injector`` set, faults perturb the event timeline (read
        retries, CRC re-transfers, lost pages on dead chips) and dead
        channel accelerators are detected via ``policy`` timeouts and
        remapped: their stripe's pages are adopted round-robin by
        surviving channels' accelerators.  Without an injector the
        execution is bit-identical to the fault-free path.

        ``tracer``/``metrics`` observe the run without perturbing it:
        spans land on one trace pid per channel (bus/chip/accelerator
        lanes) plus an engine pid for the query lifecycle, and counters
        and latency histograms register into the shared registry.
        Timings are bit-identical with either, both, or neither set.
        """
        graph = graph or app.build_scn()
        accel = InStorageAccelerator(self.placement, self.ssd, graph)
        geo = self.ssd.geometry
        sim = Simulator(tracer=tracer)
        tracing = sim.tracer is not None
        engine = QueryEngine(self.ssd)

        spf = accel.compute_seconds_per_feature(
            int(max(1, meta.feature_count / geo.channels))
        )
        if meta.page_aligned:
            compute_per_page = spf / meta.pages_per_feature
        else:
            compute_per_page = spf * meta.features_per_page

        per_channel_done: Dict[int, float] = {}
        if fastpath.enabled():
            # one enumeration + group-by instead of `channels` full
            # re-enumerations; produces identical PageAccess lists
            traces = scan_traces_by_channel(
                meta, geo, max_pages_per_channel=max_pages_per_channel
            )
        else:
            traces = {
                ch: list(
                    scan_trace(
                        meta, geo, channel=ch, max_pages=max_pages_per_channel
                    )
                )
                for ch in range(geo.channels)
            }
        if page_offsets is not None:
            wanted = set(int(o) for o in page_offsets)
            traces = {
                ch: [a for a in trace if a.db_page_offset in wanted]
                for ch, trace in traces.items()
            }
        total_pages = sum(len(t) for t in traces.values())

        # a dead channel accelerator loses its compute, not its data:
        # its stripe's pages still stream off its (healthy) bus but are
        # consumed by surviving channels' accelerators, round-robin
        failed_channels: List[int] = []
        remapped_pages = 0
        if injector is not None and injector.plan.injects_hard_failures:
            failed_channels = sorted(
                ch
                for ch in range(geo.channels)
                if injector.accelerator_dead(ch, 0.0)
            )
            survivors = [
                ch for ch in range(geo.channels) if ch not in failed_channels
            ]
            if not survivors:
                raise RuntimeError(
                    "all channel accelerators failed; no degraded mode"
                )
            orphaned = [
                access for ch in failed_channels for access in traces[ch]
            ]
            remapped_pages = len(orphaned)
            for ch in failed_channels:
                traces[ch] = []
            for j, access in enumerate(orphaned):
                traces[survivors[j % len(survivors)]].append(access)

        remaining_channels = {"n": sum(1 for t in traces.values() if t)}
        failed_pages = {"n": 0}
        controllers: Dict[int, ChannelController] = {}

        def controller_for(channel: int) -> ChannelController:
            controller = controllers.get(channel)
            if controller is None:
                controller = ChannelController(
                    sim, geo, self.ssd.timing, channel,
                    injector=injector, metrics=metrics,
                )
                controllers[channel] = controller
            return controller

        def start_channel(ch: int, trace: list) -> None:
            """Per-channel closures, bound via this factory (a plain loop
            body would late-bind the recursive `consume` reference to the
            last iteration's function)."""
            queue = BoundedQueue(sim, self.queue_depth, name=f"dfv-{ch}")
            cursor = {"next": 0}
            done = {"pages": 0}
            failed = {"pages": 0}
            accel_track = (
                sim.tracer.track(f"channel {ch}", "accelerator")
                if tracing
                else None
            )

            def channel_finished() -> None:
                per_channel_done[ch] = sim.now
                remaining_channels["n"] -= 1

            def page_failed(_addr) -> None:
                failed["pages"] += 1
                failed_pages["n"] += 1
                if done["pages"] + failed["pages"] >= len(trace):
                    channel_finished()
                else:
                    issue_next()

            def issue_next() -> None:
                i = cursor["next"]
                if i >= len(trace):
                    return
                cursor["next"] = i + 1
                # remapped pages are read through the bus of the channel
                # that stores them, not the consuming accelerator's
                controller_for(trace[i].address.channel).read_page(
                    trace[i].address,
                    lambda addr: queue.put(addr, issue_next),
                    on_failed=page_failed,
                )

            def consume() -> None:
                def got(_page) -> None:
                    if accel_track is not None:
                        # accelerator occupancy: one span per page's SCN
                        # compute (duration is predetermined)
                        sim.tracer.complete(
                            accel_track, "scn-compute", sim.now,
                            compute_per_page, cat="accel.compute",
                        )
                    sim.schedule_after(compute_per_page, finished)

                def finished() -> None:
                    done["pages"] += 1
                    if done["pages"] + failed["pages"] < len(trace):
                        consume()
                    else:
                        channel_finished()

                queue.get(got)

            for _ in range(min(self.queue_depth, len(trace))):
                issue_next()
            consume()

        for ch, trace in traces.items():
            if not trace:
                per_channel_done[ch] = 0.0
                continue
            start_channel(ch, trace)

        sim.run(stop_when=lambda: remaining_channels["n"] <= 0)
        scan_seconds = sim.now
        if failed_channels:
            policy = policy or DispatchPolicy()
            survivors_n = geo.channels - len(failed_channels)
            dispatch = engine.degraded_dispatch_seconds(
                geo.channels, len(failed_channels), policy
            )
            merge = engine.merge_seconds(survivors_n, 10)
        else:
            dispatch = engine.dispatch_seconds(geo.channels)
            merge = engine.merge_seconds(geo.channels, 10)
        setup = accel.query_setup_seconds()
        overhead = dispatch + merge + setup
        total_seconds = scan_seconds + overhead
        if tracing:
            # query lifecycle on the engine pid.  The simulator executes
            # the scan at t=0 and the model appends the serial engine
            # costs, so the trace shows them in composition order:
            # scan, then dispatch/merge/setup back to back.
            track = sim.tracer.track("engine", "query")
            sim.tracer.instant(track, "query-issued", 0.0, cat="engine.query")
            sim.tracer.complete(track, "query", 0.0, total_seconds,
                                cat="engine.query",
                                args={"pages": total_pages,
                                      "failed_channels": list(failed_channels)})
            phase_track = sim.tracer.track("engine", "phases")
            sim.tracer.complete(phase_track, "scan", 0.0, scan_seconds,
                                cat="engine.phase")
            sim.tracer.complete(phase_track, "dispatch", scan_seconds,
                                dispatch, cat="engine.phase")
            sim.tracer.complete(phase_track, "merge", scan_seconds + dispatch,
                                merge, cat="engine.phase")
            sim.tracer.complete(phase_track, "setup",
                                scan_seconds + dispatch + merge, setup,
                                cat="engine.phase")
        result = EventQueryResult(
            total_seconds=total_seconds,
            scan_seconds=scan_seconds,
            per_channel_seconds=[per_channel_done.get(ch, 0.0)
                                 for ch in range(geo.channels)],
            pages=total_pages,
            pages_failed=failed_pages["n"],
            failed_channels=failed_channels,
            remapped_pages=remapped_pages,
            dispatch_seconds=dispatch,
            merge_seconds=merge,
            setup_seconds=setup,
        )
        if metrics is not None:
            metrics.counter("engine.queries").inc()
            metrics.counter("engine.pages_scanned").inc(
                total_pages - failed_pages["n"]
            )
            metrics.histogram("engine.query_s").observe(total_seconds)
            metrics.gauge("engine.channel_skew").set(result.channel_skew)
        return result


@dataclass
class ChipChannelResult:
    """Measured event-driven execution of one chip-level channel."""

    seconds: float
    features: float
    pages: int
    weight_broadcasts: int
    bus_busy_seconds: float

    @property
    def seconds_per_feature(self) -> float:
        return self.seconds / self.features if self.features else 0.0


def simulate_chip_channel(
    app: AppSpec,
    meta: DatabaseMetadata,
    ssd: Optional[SsdConfig] = None,
    graph: Optional[Graph] = None,
    channel: int = 0,
    max_pages: int = 256,
    queue_depth: int = 4,
    tracer: Optional["Tracer"] = None,
    page_offsets: Optional[Sequence[int]] = None,
) -> ChipChannelResult:
    """Event-driven scan of one channel at the **chip** level.

    Four chip accelerators consume the pages stored on their own chip;
    the channel-level accelerator periodically broadcasts the model
    weights over the *same* channel bus (``occupy_bus``), once per
    lockstep window — so weight traffic and DFV traffic contend exactly
    as §4.5 describes.  Used to validate the analytic chip model's
    ``io + weight_broadcast`` bus accounting.
    """
    from repro.core.placement import CHIP_LEVEL

    ssd = ssd or SsdConfig()
    graph = graph or app.build_scn()
    accel = InStorageAccelerator(CHIP_LEVEL, ssd, graph)
    geo = ssd.geometry
    sim = Simulator(tracer=tracer)
    controller = ChannelController(sim, geo, ssd.timing, channel)

    spf = accel.compute_seconds_per_feature(
        int(max(1, meta.feature_count / (geo.channels * geo.chips_per_channel)))
    )
    if meta.page_aligned:
        compute_per_page = spf / meta.pages_per_feature
        features_per_page = 1.0 / meta.pages_per_feature
    else:
        compute_per_page = spf * meta.features_per_page
        features_per_page = float(meta.features_per_page)

    window = CHIP_LEVEL.dfv_buffer_features(app.feature_bytes)
    features_per_round = window * geo.chips_per_channel
    weight_bytes = graph.weight_bytes()

    if fastpath.enabled():
        trace = scan_trace_bulk(meta, geo, channel=channel, max_pages=max_pages)
    else:
        trace = list(scan_trace(meta, geo, channel=channel, max_pages=max_pages))
    if page_offsets is not None:
        wanted = set(int(o) for o in page_offsets)
        trace = [a for a in trace if a.db_page_offset in wanted]
    per_chip = {
        chip: [a for a in trace if a.address.chip == chip]
        for chip in range(geo.chips_per_channel)
    }
    state = {
        "pages_done": 0,
        "features_since_broadcast": 0.0,
        "broadcasts": 0,
        "remaining": sum(1 for t in per_chip.values() if t),
    }

    def maybe_broadcast() -> None:
        if state["features_since_broadcast"] >= features_per_round:
            state["features_since_broadcast"] -= features_per_round
            state["broadcasts"] += 1
            controller.occupy_bus(
                weight_bytes, lambda: None, label="weight-broadcast"
            )

    def start_chip(chip_index: int, chip_trace: list) -> None:
        """Factory-bound per-chip closures (avoids late-binding the
        recursive `consume`)."""
        queue = BoundedQueue(sim, queue_depth, name="chip-dfv")
        cursor = {"next": 0}
        done = {"pages": 0}
        accel_track = (
            sim.tracer.track(f"channel {channel}", f"chip {chip_index} accel")
            if sim.tracer is not None
            else None
        )

        def issue_next() -> None:
            i = cursor["next"]
            if i >= len(chip_trace):
                return
            cursor["next"] = i + 1
            controller.read_page(
                chip_trace[i].address, lambda addr: queue.put(addr, issue_next)
            )

        def consume() -> None:
            def got(_page) -> None:
                if accel_track is not None:
                    sim.tracer.complete(
                        accel_track, "scn-compute", sim.now,
                        compute_per_page, cat="accel.compute",
                    )
                sim.schedule_after(compute_per_page, finished)

            def finished() -> None:
                done["pages"] += 1
                state["pages_done"] += 1
                state["features_since_broadcast"] += features_per_page
                maybe_broadcast()
                if done["pages"] < len(chip_trace):
                    consume()
                else:
                    state["remaining"] -= 1

            queue.get(got)

        for _ in range(min(queue_depth, len(chip_trace))):
            issue_next()
        consume()

    for chip_index, chip_trace in per_chip.items():
        if chip_trace:
            start_chip(chip_index, chip_trace)

    sim.run(stop_when=lambda: state["remaining"] <= 0)
    return ChipChannelResult(
        seconds=sim.now,
        features=features_per_page * len(trace),
        pages=len(trace),
        weight_broadcasts=state["broadcasts"],
        bus_busy_seconds=controller.bus.busy_seconds,
    )
