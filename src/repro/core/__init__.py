"""DeepStore: the paper's primary contribution.

This package assembles the substrates into the in-storage acceleration
system:

* :mod:`placement` — the three accelerator placements of paper Table 3
  (SSD-level, channel-level, chip-level) with their dataflows, clocks,
  scratchpads, areas and power budgets;
* :mod:`topk` — the controller's hardware top-K sorter (sorted tag array
  + mapping table, paper §4.3);
* :mod:`accelerator` — one in-storage accelerator instance: systolic
  array + scratchpad hierarchy + controller, with analytic and
  event-driven (FLASH_DFV queue) execution models;
* :mod:`deepstore` — the whole-SSD system model producing per-query
  latency and energy at any placement level;
* :mod:`query_cache` — the similarity-based query cache (Algorithm 1);
* :mod:`engine` — the in-storage runtime's query engine (map-reduce
  scheduling, top-K merging, overhead model);
* :mod:`api` — the programming API of paper Table 2 (``readDB``,
  ``writeDB``, ``appendDB``, ``loadModel``, ``query``, ``getResults``,
  ``setQC``) over a functional device that really executes queries;
* :mod:`dse` — the design-space exploration of §4.5 / Fig. 6.
"""

from repro.core.placement import (
    CHANNEL_LEVEL,
    CHIP_LEVEL,
    LEVELS,
    SSD_LEVEL,
    AcceleratorPlacement,
    UnsupportedModelError,
)
from repro.core.topk import TopKSorter
from repro.core.accelerator import InStorageAccelerator
from repro.core.deepstore import DeepStoreSystem, QueryLatency
from repro.core.query_cache import (
    CacheEntry,
    EmbeddingComparator,
    QueryCache,
    QueryCacheSimulator,
)
from repro.core.engine import EngineCosts, QueryEngine
from repro.core.api import DeepStoreDevice, QueryHandle, QueryResult
from repro.core.dse import DesignPoint, explore_pe_scaling, search_configurations
from repro.core.scheduler import MultiQueryScheduler, SharedScanReport
from repro.core.commands import Command, CommandTransport, CompletionEntry
from repro.core.event_query import EventQueryResult, EventQuerySimulator
from repro.core.reorganize import (
    ClusteredLayout,
    ReorganizedSearch,
    build_layout,
)
from repro.core.capacity import DeploymentPlan, best_plan, plan_deployment

__all__ = [
    "AcceleratorPlacement",
    "UnsupportedModelError",
    "SSD_LEVEL",
    "CHANNEL_LEVEL",
    "CHIP_LEVEL",
    "LEVELS",
    "TopKSorter",
    "InStorageAccelerator",
    "DeepStoreSystem",
    "QueryLatency",
    "QueryCache",
    "CacheEntry",
    "EmbeddingComparator",
    "QueryCacheSimulator",
    "QueryEngine",
    "EngineCosts",
    "DeepStoreDevice",
    "QueryHandle",
    "QueryResult",
    "DesignPoint",
    "explore_pe_scaling",
    "search_configurations",
    "MultiQueryScheduler",
    "SharedScanReport",
    "Command",
    "CommandTransport",
    "CompletionEntry",
    "EventQuerySimulator",
    "EventQueryResult",
    "ClusteredLayout",
    "ReorganizedSearch",
    "build_layout",
    "DeploymentPlan",
    "plan_deployment",
    "best_plan",
]
