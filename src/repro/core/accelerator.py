"""One in-storage accelerator instance.

Binds a :class:`~repro.core.placement.AcceleratorPlacement` to a concrete
SCN graph and SSD configuration, exposing:

* the **analytic** steady-state per-feature time (systolic compute +
  weight streaming + top-K maintenance), and the per-feature energy; and
* an **event-driven** stripe scan that couples the flash timing model to
  the compute model through the bounded ``FLASH_DFV`` queue (paper
  Fig. 5), used to validate the analytic path and to answer latency-
  sensitivity questions with real queueing behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults import FaultInjector
    from repro.obs.tracer import Tracer

from repro.core.placement import AcceleratorPlacement
from repro.core.topk import TopKSorter
from repro.energy import EnergyBreakdown, EnergyModel
from repro.nn.graph import Graph
from repro.sim import BoundedQueue, Simulator, fastpath
from repro.ssd.controller import ChannelController
from repro.ssd.ftl import DatabaseMetadata
from repro.ssd.timing import SsdConfig
from repro.ssd.trace import scan_trace, scan_trace_bulk
from repro.systolic import GraphMapper, GraphProfile


@dataclass
class StripeScanResult:
    """Outcome of an event-driven stripe scan."""

    features: float
    pages: int
    seconds: float
    #: pages lost to hard-failed chips/planes (fault injection only)
    pages_failed: int = 0

    @property
    def seconds_per_feature(self) -> float:
        return self.seconds / self.features if self.features > 0 else 0.0

    @property
    def availability(self) -> float:
        """Fraction of the stripe's pages actually delivered."""
        if self.pages == 0:
            return 1.0
        return (self.pages - self.pages_failed) / self.pages


class InStorageAccelerator:
    """Systolic array + scratchpads + controller for one placement."""

    def __init__(
        self,
        placement: AcceleratorPlacement,
        ssd: SsdConfig,
        graph: Graph,
        k: int = 10,
        energy_model: Optional[EnergyModel] = None,
    ):
        placement.check_supported(graph)
        self.placement = placement
        self.ssd = ssd
        self.graph = graph
        self.k = k
        self.energy_model = energy_model or EnergyModel()
        # Quantized graphs (repro.nn.quantization) run with narrower PEs:
        # more MACs per cycle and cheaper memory traffic.
        from dataclasses import replace

        from repro.nn.quantization import graph_precision
        from repro.systolic.array import SystolicArray

        self.precision = graph_precision(graph)
        systolic = replace(placement.systolic, ops_per_pe=self.precision.ops_per_pe)
        hierarchy = placement.build_hierarchy(ssd)
        self._stream_window = self._dfv_stream_window(graph, hierarchy)
        self._mapper = GraphMapper(
            SystolicArray(systolic),
            hierarchy,
            stream_window=self._stream_window,
        )
        self._profile: Optional[GraphProfile] = None

    #: FLASH_DFV staging queue depth, in flash pages (paper Fig. 5)
    FLASH_DFV_QUEUE_PAGES = 8

    def _dfv_stream_window(self, graph: Graph, hierarchy) -> int:
        """Feature vectors bufferable while a weight stream is in flight.

        Prefetched DFVs sit in the bounded FLASH_DFV queue; a
        non-resident weight stream (e.g. ReId's 10 MB FC) can only
        amortize over the features the queue holds, regardless of how
        large the accelerator's scratchpad is.
        """
        input_ids = graph.input_ids
        if len(input_ids) < 2:
            return 1
        dfv_shape = graph.shape_of(input_ids[1])
        dfv_bytes = 4
        for s in dfv_shape:
            dfv_bytes *= int(s)
        queue_bytes = self.FLASH_DFV_QUEUE_PAGES * self.ssd.geometry.page_bytes
        reserve = hierarchy.l1.size_bytes - hierarchy.l1_weight_capacity_bytes
        return max(1, min(queue_bytes, reserve) // dfv_bytes)

    # ------------------------------------------------------------------
    @property
    def profile(self) -> GraphProfile:
        if self._profile is None:
            if fastpath.enabled():
                # the mapping is a pure function of (graph, placement,
                # ssd); serving sweeps and cluster fleets build one
                # accelerator per leg over the same few graphs, so the
                # memoized table turns the N-th mapping into a lookup
                self._profile = fastpath.profile_table(
                    self.graph,
                    (self.placement, self.ssd, self._stream_window),
                    lambda: self._mapper.map_graph(self.graph),
                )
            else:
                self._profile = self._mapper.map_graph(self.graph)
        return self._profile

    def topk_seconds_per_feature(self, stripe_features: int) -> float:
        """Controller top-K maintenance cost per candidate."""
        n_candidates = max(self.k, stripe_features)
        if fastpath.enabled():
            cycles = fastpath.expected_topk_cycles(self.k, n_candidates)
        else:
            cycles = TopKSorter(self.k).expected_cycles_per_update(n_candidates)
        return cycles / self.placement.systolic.frequency_hz

    def compute_seconds_per_feature(self, stripe_features: int = 1_000_000) -> float:
        """Steady-state per-feature time excluding flash I/O."""
        return self.profile.seconds_per_feature + self.topk_seconds_per_feature(
            stripe_features
        )

    def query_setup_seconds(self) -> float:
        """One-time per-query cost: loading resident weights."""
        return self.profile.query_setup_seconds

    # ------------------------------------------------------------------
    def feature_energy(self, meta: DatabaseMetadata) -> EnergyBreakdown:
        """Energy to process one database feature vector."""
        pages_per_feature = meta.total_pages / meta.feature_count
        l2_bytes = None
        if self._mapper.scratchpads.l2 is not None:
            l2_bytes = self._mapper.scratchpads.l2.size_bytes
        return self.energy_model.accelerator_feature_energy(
            self.profile,
            scratchpad_bytes=self.placement.scratchpad_bytes,
            sram_model=self.placement.sram_model,
            l2_bytes=l2_bytes,
            flash_pages_per_feature=pages_per_feature,
            area_mm2=self.placement.area_mm2,
            precision=self.precision.name,
        )

    def average_power_w(self, meta: DatabaseMetadata, seconds_per_feature: float) -> float:
        """Average accelerator power at the given feature rate."""
        if seconds_per_feature <= 0:
            raise ValueError("seconds_per_feature must be positive")
        return self.feature_energy(meta).total_j / seconds_per_feature

    # ------------------------------------------------------------------
    # event-driven stripe scan (channel-level fidelity path)
    # ------------------------------------------------------------------
    def simulate_stripe_scan(
        self,
        meta: DatabaseMetadata,
        channel: int = 0,
        max_pages: int = 256,
        queue_depth: int = 8,
        injector: Optional["FaultInjector"] = None,
        tracer: Optional["Tracer"] = None,
    ) -> StripeScanResult:
        """Scan a window of this channel's stripe with full event timing.

        The flash controller prefetches pages into a bounded FLASH_DFV
        queue while the systolic model consumes them — a full queue
        stalls prefetch (compute-bound), an empty queue stalls compute
        (flash-bound), exactly as in hardware.  With ``injector`` set,
        NAND read-retries and bus CRC re-transfers stretch the event
        timeline and dead chips drop their pages (counted in the
        result); without one the timing is bit-identical to before.
        """
        if self.placement.level != "channel":
            raise ValueError("stripe scans model channel-level accelerators")
        sim = Simulator(tracer=tracer)
        controller = ChannelController(
            sim, self.ssd.geometry, self.ssd.timing, channel, injector=injector
        )
        accel_track = (
            sim.tracer.track(f"channel {channel}", "accelerator")
            if sim.tracer is not None
            else None
        )
        queue = BoundedQueue(sim, queue_depth, name="FLASH_DFV")
        if fastpath.enabled():
            trace = scan_trace_bulk(
                meta, self.ssd.geometry, channel=channel, max_pages=max_pages
            )
        else:
            trace = list(
                scan_trace(
                    meta, self.ssd.geometry, channel=channel, max_pages=max_pages
                )
            )
        if not trace:
            return StripeScanResult(0.0, 0, 0.0)

        cursor = {"next": 0}
        done = {"pages": 0}
        failed = {"pages": 0}

        def page_failed(_addr) -> None:
            failed["pages"] += 1
            issue_next()

        def issue_next() -> None:
            i = cursor["next"]
            if i >= len(trace):
                return
            cursor["next"] = i + 1
            controller.read_page(
                trace[i].address,
                lambda addr: queue.put(addr, issue_next),
                on_failed=page_failed,
            )

        # Per page, the accelerator computes over the features it holds.
        if meta.page_aligned:
            compute_per_page = (
                self.compute_seconds_per_feature() / meta.pages_per_feature
            )
            features_per_page = 1.0 / meta.pages_per_feature
        else:
            compute_per_page = (
                self.compute_seconds_per_feature() * meta.features_per_page
            )
            features_per_page = float(meta.features_per_page)

        def consume() -> None:
            def got(_page) -> None:
                if accel_track is not None:
                    sim.tracer.complete(
                        accel_track, "scn-compute", sim.now,
                        compute_per_page, cat="accel.compute",
                    )
                sim.schedule_after(compute_per_page, finished)

            def finished() -> None:
                done["pages"] += 1
                if done["pages"] + failed["pages"] < len(trace):
                    consume()

            queue.get(got)

        for _ in range(min(queue_depth, len(trace))):
            issue_next()
        consume()
        sim.run(
            stop_when=lambda: done["pages"] + failed["pages"] >= len(trace)
        )
        return StripeScanResult(
            features=features_per_page * done["pages"],
            pages=len(trace),
            seconds=sim.now,
            pages_failed=failed["pages"],
        )
