"""Vendor-specific NVMe command layer (paper §4.7.2).

"These APIs internally use new NVMe commands to interact with the query
engine."  This module implements that wire boundary: each Table-2 call is
encoded as a fixed 64-byte command header (modeled on an NVMe submission
queue entry: opcode + command id + dword parameters) plus an optional
data payload, and decoded back on the device side.  The
:class:`CommandTransport` pairs with :class:`~repro.core.api.
DeepStoreDevice` to execute commands, and accounts the transfer time of
command + payload over the host link — so using the API through the
transport costs what a real submission would.

Commands (vendor-specific opcode space 0xC0+):

=========  =====  ==============================================
READ_DB    0xC0   db_id, start, num -> features payload
WRITE_DB   0xC1   feature payload -> db_id
APPEND_DB  0xC2   db_id + feature payload
LOAD_MODEL 0xC3   model blob -> model_id
QUERY      0xC4   qfv payload + (k, model, db, range, level)
GET_RESULT 0xC5   query_id -> result payload
SET_QC     0xC6   threshold, capacity, accuracy
=========  =====  ==============================================
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

HEADER_FORMAT = "<BxHIQQQQQQQ"  # opcode, pad, flags, cid, 7 qword params
HEADER_BYTES = struct.calcsize(HEADER_FORMAT)
assert HEADER_BYTES == 64

OP_READ_DB = 0xC0
OP_WRITE_DB = 0xC1
OP_APPEND_DB = 0xC2
OP_LOAD_MODEL = 0xC3
OP_QUERY = 0xC4
OP_GET_RESULT = 0xC5
OP_SET_QC = 0xC6

OPCODES = {
    OP_READ_DB: "READ_DB",
    OP_WRITE_DB: "WRITE_DB",
    OP_APPEND_DB: "APPEND_DB",
    OP_LOAD_MODEL: "LOAD_MODEL",
    OP_QUERY: "QUERY",
    OP_GET_RESULT: "GET_RESULT",
    OP_SET_QC: "SET_QC",
}

_LEVEL_CODES = {"ssd": 0, "channel": 1, "chip": 2}
_LEVEL_NAMES = {v: k for k, v in _LEVEL_CODES.items()}


class CommandError(ValueError):
    """Raised for malformed commands."""


@dataclass(frozen=True)
class Command:
    """One encoded submission: 64-byte header + optional payload."""

    opcode: int
    command_id: int
    params: Tuple[int, ...]  # up to 7 unsigned qwords
    payload: bytes = b""

    def __post_init__(self) -> None:
        if self.opcode not in OPCODES:
            raise CommandError(f"unknown opcode 0x{self.opcode:02x}")
        if len(self.params) > 7:
            raise CommandError("at most 7 qword parameters")
        if any(p < 0 for p in self.params):
            raise CommandError("parameters are unsigned")

    @property
    def name(self) -> str:
        return OPCODES[self.opcode]

    def encode(self) -> bytes:
        """Pack the 64-byte header and append the payload."""
        params = tuple(self.params) + (0,) * (7 - len(self.params))
        header = struct.pack(
            HEADER_FORMAT, self.opcode, 0, self.command_id, *params
        )
        return header + self.payload

    @classmethod
    def decode(cls, blob: bytes) -> "Command":
        if len(blob) < HEADER_BYTES:
            raise CommandError(f"short command: {len(blob)} bytes")
        opcode, _flags, cid, *params = struct.unpack_from(HEADER_FORMAT, blob)
        return cls(
            opcode=opcode,
            command_id=cid,
            params=tuple(params),
            payload=blob[HEADER_BYTES:],
        )

    @property
    def total_bytes(self) -> int:
        return HEADER_BYTES + len(self.payload)


@dataclass
class CompletionEntry:
    """Device response: status + result parameters + optional payload."""

    command_id: int
    status: int  # 0 = success
    result: Tuple[int, ...] = ()
    payload: bytes = b""

    @property
    def ok(self) -> bool:
        return self.status == 0


class CommandTransport:
    """Executes encoded commands against a :class:`DeepStoreDevice`.

    Time accounting: the command header and any payload cross the host
    link at the SSD's external bandwidth; responses likewise.  The
    returned completion carries ``transfer_seconds`` in its result when
    relevant (the functional outcome is authoritative; the latency model
    remains the QueryLatency attached to query results).
    """

    STATUS_OK = 0
    STATUS_INVALID = 1
    STATUS_UNSUPPORTED = 2

    def __init__(self, device):
        self.device = device
        self._next_cid = 1
        self.commands_processed = 0
        self.bytes_transferred = 0

    # ------------------------------------------------------------------
    def next_cid(self) -> int:
        """Allocate the next command identifier."""
        cid = self._next_cid
        self._next_cid += 1
        return cid

    def transfer_seconds(self, nbytes: int) -> float:
        """Host-link time to move nbytes (3.2 GB/s external)."""
        return nbytes / self.device.ssd.config.external_bandwidth

    def submit(self, command: Command) -> CompletionEntry:
        """Decode-and-dispatch one command (already-encoded bytes are
        accepted via :meth:`submit_bytes`)."""
        from repro.core.api import DeepStoreApiError

        self.commands_processed += 1
        self.bytes_transferred += command.total_bytes
        try:
            return self._dispatch(command)
        except (DeepStoreApiError, CommandError, ValueError) as exc:
            return CompletionEntry(
                command_id=command.command_id,
                status=self.STATUS_INVALID,
                payload=str(exc).encode(),
            )

    def submit_bytes(self, blob: bytes) -> CompletionEntry:
        """Decode an encoded submission and dispatch it."""
        return self.submit(Command.decode(blob))

    # ------------------------------------------------------------------
    #: opcode -> unbound handler; built once at class definition instead
    #: of one dict per submitted command (ingest replays submit millions)
    _HANDLERS = {
        OP_READ_DB: "_read_db",
        OP_WRITE_DB: "_write_db",
        OP_APPEND_DB: "_append_db",
        OP_LOAD_MODEL: "_load_model",
        OP_QUERY: "_query",
        OP_GET_RESULT: "_get_result",
        OP_SET_QC: "_set_qc",
    }

    def _dispatch(self, command: Command) -> CompletionEntry:
        handler = getattr(self, self._HANDLERS[command.opcode])
        return handler(command)

    def _read_db(self, c: Command) -> CompletionEntry:
        db_id, start, num = c.params[:3]
        data = self.device.read_db(int(db_id), int(start), int(num))
        payload = data.tobytes()
        self.bytes_transferred += len(payload)
        return CompletionEntry(c.command_id, 0, (len(data),), payload)

    def _write_db(self, c: Command) -> CompletionEntry:
        (dim,) = c.params[:1]
        if dim == 0:
            raise CommandError("WRITE_DB needs a feature dimension")
        features = np.frombuffer(c.payload, dtype=np.float32).reshape(-1, int(dim))
        db_id = self.device.write_db(features.copy())
        return CompletionEntry(c.command_id, 0, (db_id,))

    def _append_db(self, c: Command) -> CompletionEntry:
        db_id, dim = c.params[:2]
        features = np.frombuffer(c.payload, dtype=np.float32).reshape(-1, int(dim))
        self.device.append_db(int(db_id), features.copy())
        return CompletionEntry(c.command_id, 0, ())

    def _load_model(self, c: Command) -> CompletionEntry:
        model_id = self.device.load_model(c.payload)
        return CompletionEntry(c.command_id, 0, (model_id,))

    def _query(self, c: Command) -> CompletionEntry:
        k, model_id, db_id, db_start, db_end, level_code = c.params[:6]
        qfv = np.frombuffer(c.payload, dtype=np.float32)
        handle = self.device.query(
            qfv.copy(),
            k=int(k),
            model_id=int(model_id),
            db_id=int(db_id),
            db_start=int(db_start),
            db_end=int(db_end) if db_end else None,
            accel_level=_LEVEL_NAMES.get(int(level_code)),
        )
        return CompletionEntry(c.command_id, 0, (handle.query_id,))

    def _get_result(self, c: Command) -> CompletionEntry:
        from repro.core.api import QueryHandle

        (query_id,) = c.params[:1]
        result = self.device.get_results(QueryHandle(query_id=int(query_id)))
        payload = (
            result.feature_ids.astype(np.int64).tobytes()
            + result.object_ids.astype(np.int64).tobytes()
            + result.scores.astype(np.float32).tobytes()
        )
        self.bytes_transferred += len(payload)
        latency_us = int(result.latency.total_seconds * 1e6)
        return CompletionEntry(
            c.command_id, 0,
            (result.k, int(result.cache_hit), latency_us),
            payload,
        )

    def _set_qc(self, c: Command) -> CompletionEntry:
        threshold_milli, capacity, accuracy_milli = c.params[:3]
        self.device.set_qc(
            threshold=threshold_milli / 1000.0,
            capacity=int(capacity),
            qcn_accuracy=accuracy_milli / 1000.0,
        )
        return CompletionEntry(c.command_id, 0, ())


# ----------------------------------------------------------------------
# convenience encoders (the host-side library a Table-2 binding would use)
# ----------------------------------------------------------------------
def encode_query(
    cid: int,
    qfv: np.ndarray,
    k: int,
    model_id: int,
    db_id: int,
    db_start: int = 0,
    db_end: int = 0,
    accel_level: Optional[str] = None,
) -> Command:
    """Host-side helper: build a QUERY submission for a QFV."""
    if accel_level is not None and accel_level not in _LEVEL_CODES:
        raise CommandError(f"unknown accelerator level {accel_level!r}")
    level = _LEVEL_CODES[accel_level] if accel_level is not None else 0xFF
    return Command(
        opcode=OP_QUERY,
        command_id=cid,
        params=(k, model_id, db_id, db_start, db_end, level),
        payload=np.ascontiguousarray(qfv, dtype=np.float32).tobytes(),
    )


def decode_result_payload(entry: CompletionEntry) -> dict:
    """Unpack a GET_RESULT completion payload."""
    k = entry.result[0]
    ids = np.frombuffer(entry.payload[: 8 * k], dtype=np.int64)
    objs = np.frombuffer(entry.payload[8 * k: 16 * k], dtype=np.int64)
    scores = np.frombuffer(entry.payload[16 * k: 16 * k + 4 * k], dtype=np.float32)
    return {
        "feature_ids": ids,
        "object_ids": objs,
        "scores": scores,
        "cache_hit": bool(entry.result[1]),
        "latency_us": entry.result[2],
    }
