"""Design-space exploration (paper §4.5, Fig. 6, Table 3).

Two explorations drive DeepStore's accelerator sizing:

* :func:`explore_pe_scaling` — vary the PE count (128 to 32 K) with the
  best aspect ratio at each point and unbounded memory bandwidth, for the
  largest convolutional and fully-connected layers in the studied
  applications.  Fig. 6 shows FC saturating around 512 PEs and ConvD
  around 1024 PEs.
* :func:`search_configurations` — enumerate array shapes and scratchpad
  sizes, estimate per-accelerator power with the energy model, keep
  designs within the level's power budget, and rank by performance over
  the five applications.  This is the procedure that justifies Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.placement import AcceleratorPlacement
from repro.energy import EnergyModel
from repro.ssd.timing import SsdConfig
from repro.systolic import (
    GraphMapper,
    ScratchpadHierarchy,
    ScratchpadLevel,
    SystolicArray,
    SystolicConfig,
)
from repro.systolic.array import best_aspect_ratio
from repro.workloads.apps import ALL_APPS

#: the largest ConvD layer among the studied apps (ReId conv1: 1024
#: output pixels, 16 output channels, K = 11*3*3)
LARGEST_CONV = (1024, 16, 99)
#: the largest FC layer shape quoted by the paper (TIR: 512 x 512), with
#: one feature vector in flight (m = 1)
LARGEST_FC = (1, 512, 512)


@dataclass(frozen=True)
class DesignPoint:
    """One point of the Fig. 6 sweep."""

    num_pes: int
    rows: int
    cols: int
    cycles: float
    speedup: float


def explore_pe_scaling(
    layer: str = "fc",
    pe_counts: Sequence[int] = (128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768),
    dims: Optional[Tuple[int, int, int]] = None,
) -> List[DesignPoint]:
    """Speedup vs PE count at the best aspect ratio (Fig. 6)."""
    if layer not in ("fc", "conv") and dims is None:
        raise ValueError("layer must be 'fc' or 'conv' (or pass dims)")
    m, n, k = dims or (LARGEST_FC if layer == "fc" else LARGEST_CONV)
    points: List[DesignPoint] = []
    base_cycles: Optional[float] = None
    for pes in pe_counts:
        cfg, cycles = best_aspect_ratio(pes, m, n, k, dataflow="OS")
        if base_cycles is None:
            base_cycles = cycles
        points.append(
            DesignPoint(
                num_pes=pes,
                rows=cfg.rows,
                cols=cfg.cols,
                cycles=cycles,
                speedup=base_cycles / cycles,
            )
        )
    return points


@dataclass
class ConfigCandidate:
    """One evaluated accelerator configuration."""

    systolic: SystolicConfig
    scratchpad_bytes: int
    mean_seconds_per_feature: float
    power_w: float
    feasible: bool

    @property
    def perf_per_watt(self) -> float:
        if self.mean_seconds_per_feature <= 0 or self.power_w <= 0:
            return 0.0
        return 1.0 / (self.mean_seconds_per_feature * self.power_w)


def search_configurations(
    level: str,
    power_budget_w: float,
    ssd: Optional[SsdConfig] = None,
    pe_options: Sequence[Tuple[int, int]] = (
        (4, 32), (8, 32), (8, 64), (16, 64), (16, 128), (32, 64), (32, 128),
    ),
    scratchpad_options: Sequence[int] = (256 * 1024, 512 * 1024, 8 * 1024 * 1024),
    frequency_hz: float = 800e6,
    dataflow: str = "OS",
) -> List[ConfigCandidate]:
    """Enumerate configurations, mark power feasibility, rank by speed.

    Power is the energy model's average over the five applications at the
    configuration's own steady-state rate; the returned list is sorted
    with feasible candidates first, fastest first — the paper's Table-3
    design is the head of the feasible list under each level's budget.
    """
    if power_budget_w <= 0:
        raise ValueError("power budget must be positive")
    ssd = ssd or SsdConfig()
    energy_model = EnergyModel()
    candidates: List[ConfigCandidate] = []
    for rows, cols in pe_options:
        for sp_bytes in scratchpad_options:
            systolic = SystolicConfig(
                rows=rows, cols=cols, frequency_hz=frequency_hz, dataflow=dataflow
            )
            hierarchy = ScratchpadHierarchy(
                ScratchpadLevel(
                    name=f"{level}-l1",
                    size_bytes=sp_bytes,
                    bandwidth_bytes_per_s=4 * frequency_hz * (rows + cols),
                ),
                dram=ScratchpadLevel(
                    name="dram",
                    size_bytes=ssd.dram_bytes,
                    bandwidth_bytes_per_s=ssd.dram_bandwidth,
                ),
            )
            mapper = GraphMapper(SystolicArray(systolic), hierarchy)
            total_spf, total_power, supported = 0.0, 0.0, 0
            for app in ALL_APPS.values():
                graph = app.build_scn()
                profile = mapper.map_graph(graph)
                # the accelerator can never stream features faster than
                # its flash feed, so power is assessed at the real rate
                feed_spf = app.feature_bytes / ssd.timing.channel_bandwidth
                spf = max(profile.seconds_per_feature, feed_spf)
                power = energy_model.accelerator_power_w(
                    profile,
                    scratchpad_bytes=sp_bytes,
                    seconds_per_feature=spf,
                    include_dram=False,
                )
                total_spf += spf
                total_power = max(total_power, power)
                supported += 1
            mean_spf = total_spf / supported
            candidates.append(
                ConfigCandidate(
                    systolic=systolic,
                    scratchpad_bytes=sp_bytes,
                    mean_seconds_per_feature=mean_spf,
                    power_w=total_power,
                    feasible=total_power <= power_budget_w,
                )
            )
    candidates.sort(key=lambda c: (not c.feasible, c.mean_seconds_per_feature))
    return candidates


def validate_placement_power(
    placement: AcceleratorPlacement, ssd: Optional[SsdConfig] = None
) -> Dict[str, float]:
    """Per-app average power of a Table-3 placement (tests assert these
    stay within the level's budget)."""
    ssd = ssd or SsdConfig()
    energy_model = EnergyModel()
    mapper = GraphMapper(placement.build_array(), placement.build_hierarchy(ssd))
    result: Dict[str, float] = {}
    for app in ALL_APPS.values():
        graph = app.build_scn()
        if not placement.supports(graph):
            continue
        profile = mapper.map_graph(graph)
        feed_spf = app.feature_bytes / ssd.timing.channel_bandwidth
        result[app.name] = energy_model.accelerator_power_w(
            profile,
            scratchpad_bytes=placement.scratchpad_bytes,
            seconds_per_feature=max(profile.seconds_per_feature, feed_spf),
            sram_model=placement.sram_model,
            area_mm2=placement.area_mm2,
            include_dram=False,
        )
    return result
