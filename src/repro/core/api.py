"""The DeepStore programming API (paper Table 2).

:class:`DeepStoreDevice` is a functional stand-in for a DeepStore SSD: it
implements ``readDB`` / ``writeDB`` / ``appendDB`` / ``loadModel`` /
``query`` / ``getResults`` / ``setQC`` with real behaviour (feature data
is stored, models execute in numpy, top-K results are genuinely the
highest-scoring features) *and* simulated cost (every query carries the
:class:`~repro.core.deepstore.QueryLatency` the hardware model predicts).

This is the public surface examples and downstream users program against:

>>> device = DeepStoreDevice()                      # doctest: +SKIP
>>> db = device.write_db(features)                  # doctest: +SKIP
>>> model = device.load_model(graph_to_bytes(scn))  # doctest: +SKIP
>>> handle = device.query(qfv, k=10, model_id=model, db_id=db)
>>> result = device.get_results(handle)             # doctest: +SKIP

Method names follow Python conventions; each maps 1:1 to a Table-2 call
(``write_db`` = ``writeDB``, etc.).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.deepstore import DeepStoreSystem, QueryLatency
from repro.core.placement import LEVELS
from repro.core.query_cache import EmbeddingComparator, QueryCache
from repro.nn import Graph, graph_from_bytes
from repro.ssd.ftl import DatabaseMetadata
from repro.ssd.ssd import Ssd
from repro.ssd.timing import SsdConfig


class DeepStoreApiError(RuntimeError):
    """Raised for invalid handles or malformed requests."""


@dataclass
class QueryHandle:
    """Opaque handle returned by ``query`` (the paper's query_id)."""

    query_id: int


@dataclass
class QueryResult:
    """Top-K results plus the modelled execution cost."""

    query_id: int
    feature_ids: np.ndarray  # indices into the database
    scores: np.ndarray  # SCN similarity scores, best first
    object_ids: np.ndarray  # physical flash addresses of the features
    latency: QueryLatency
    cache_hit: bool = False
    #: DMA time for getResults to copy the top-K (feature vectors +
    #: ObjectIDs) to host memory (paper §4.2)
    transfer_seconds: float = 0.0
    #: index-layer annotations (zero on the exhaustive-scan path):
    #: centroid-routing time already included in the latency's engine
    #: share, rows the probe actually scanned, and the nprobe used
    routing_seconds: float = 0.0
    probed_rows: int = 0
    nprobe: int = 0

    @property
    def k(self) -> int:
        return len(self.feature_ids)

    @property
    def seconds(self) -> float:
        return self.latency.total_seconds

    @property
    def seconds_to_host(self) -> float:
        """Query latency plus the result DMA."""
        return self.latency.total_seconds + self.transfer_seconds

    def span_args(self) -> Dict[str, object]:
        """Small args dict for a distributed-trace leaf span."""
        return {
            "query_id": self.query_id,
            "k": self.k,
            "cache_hit": self.cache_hit,
            "seconds_to_host": self.seconds_to_host,
        }


class DeepStoreDevice:
    """A DeepStore-enabled SSD, functional + timed."""

    #: features scored per numpy chunk during a functional scan
    SCAN_CHUNK = 8192

    def __init__(
        self,
        ssd: Optional[SsdConfig] = None,
        level: str = "channel",
        seed: int = 0,
    ):
        if level not in LEVELS:
            raise DeepStoreApiError(f"unknown accelerator level {level!r}")
        self.ssd = Ssd(ssd)
        self.level = level
        self._systems: Dict[str, DeepStoreSystem] = {}
        self._feature_store: Dict[int, np.ndarray] = {}
        self._models: Dict[int, Graph] = {}
        self._next_model_id = 1
        self._next_query_id = 1
        self._results: Dict[int, QueryResult] = {}
        self._cache: Optional[QueryCache] = None
        self._cache_lookup_seconds_per_entry = 0.0
        self._ingest_seconds: Dict[int, float] = {}
        #: per-database mutation epoch; query-cache entries are tagged
        #: ``(db_id, epoch)`` so results cached before a mutation can
        #: never satisfy queries issued after it
        self._db_epochs: Dict[int, int] = {}
        self._failed_accels: set = set()
        self.seed = seed

    # ------------------------------------------------------------------
    # reliability controls
    # ------------------------------------------------------------------
    def fail_accelerator(self, index: int) -> None:
        """Hard-fail one accelerator of the device's placement level.

        Subsequent queries run in degraded mode: the dead accelerator's
        stripe is remapped onto the survivors, so results are unchanged
        but the modelled latency reflects the detection timeouts and
        the survivors' extra load.
        """
        if index < 0:
            raise DeepStoreApiError("accelerator index cannot be negative")
        self._failed_accels.add(index)

    def repair_accelerator(self, index: int) -> None:
        """Bring a previously failed accelerator back into service."""
        self._failed_accels.discard(index)

    @property
    def failed_accelerators(self) -> frozenset:
        """Indices of currently hard-failed accelerators."""
        return frozenset(self._failed_accels)

    # ------------------------------------------------------------------
    # database management (writeDB / appendDB / readDB)
    # ------------------------------------------------------------------
    def write_db(self, features: np.ndarray) -> int:
        """``writeDB``: create a database from an (N, dim) feature array."""
        features = self._check_features(features)
        meta = self.ssd.ftl.create_database(
            feature_bytes=features.shape[1] * 4, feature_count=features.shape[0]
        )
        self._feature_store[meta.db_id] = features.copy()
        self.ssd.dram.allocate(f"db{meta.db_id}-metadata", meta.METADATA_BYTES)
        self._ingest_seconds[meta.db_id] = self.ssd.database_write_seconds(meta)
        self._db_epochs[meta.db_id] = 0
        return meta.db_id

    def append_db(self, db_id: int, features: np.ndarray) -> None:
        """``appendDB``: append features to an existing database."""
        features = self._check_features(features)
        meta = self.ssd.ftl.get(db_id)
        if features.shape[1] * 4 != meta.feature_bytes:
            raise DeepStoreApiError(
                f"feature size {features.shape[1] * 4} does not match "
                f"database {db_id}'s {meta.feature_bytes} bytes"
            )
        self.ssd.ftl.append(db_id, features.shape[0])
        self._feature_store[db_id] = np.concatenate(
            [self._feature_store[db_id], features]
        )
        appended = DatabaseMetadata(
            db_id=db_id,
            feature_bytes=meta.feature_bytes,
            feature_count=max(1, features.shape[0]),
            page_bytes=meta.page_bytes,
        )
        self._ingest_seconds[db_id] = (
            self._ingest_seconds.get(db_id, 0.0)
            + self.ssd.database_write_seconds(appended)
        )
        self._note_mutation(db_id)

    def read_db(self, db_id: int, start: int = 0, num: Optional[int] = None) -> np.ndarray:
        """``readDB``: read ``num`` features starting at ``start``."""
        store = self._store(db_id)
        if num is None:
            num = len(store) - start
        if start < 0 or num < 0 or start + num > len(store):
            raise DeepStoreApiError(
                f"range [{start}, {start + num}) out of bounds for db {db_id}"
            )
        return store[start : start + num].copy()

    def database_metadata(self, db_id: int) -> DatabaseMetadata:
        """The FTL's metadata record for a database."""
        return self.ssd.ftl.get(db_id)

    def ingest_seconds(self, db_id: int) -> float:
        """Modelled time spent writing/appending this database to flash."""
        self.ssd.ftl.get(db_id)  # validate the handle
        return self._ingest_seconds.get(db_id, 0.0)

    def db_epoch(self, db_id: int) -> int:
        """The database's mutation epoch (0 = never mutated)."""
        self.ssd.ftl.get(db_id)  # validate the handle
        return self._db_epochs.get(db_id, 0)

    def _note_mutation(self, db_id: int) -> None:
        """Advance the epoch and drop now-stale query-cache entries."""
        self._db_epochs[db_id] = self._db_epochs.get(db_id, 0) + 1
        if self._cache is not None:
            self._cache.invalidate_tag_prefix((db_id,))

    # ------------------------------------------------------------------
    # models (loadModel)
    # ------------------------------------------------------------------
    def load_model(self, blob: bytes) -> int:
        """``loadModel``: register an ONNX-format model blob."""
        graph = graph_from_bytes(blob)
        model_id = self._next_model_id
        self._next_model_id += 1
        self._models[model_id] = graph
        self.ssd.dram.allocate(f"model{model_id}", len(blob))
        return model_id

    def load_graph(self, graph: Graph) -> int:
        """Convenience: register an in-memory graph directly."""
        model_id = self._next_model_id
        self._next_model_id += 1
        self._models[model_id] = graph
        self.ssd.dram.allocate(f"model{model_id}", graph.weight_bytes())
        return model_id

    # ------------------------------------------------------------------
    # query cache (setQC)
    # ------------------------------------------------------------------
    def set_qc(
        self,
        threshold: float,
        capacity: int = 1024,
        qcn_accuracy: float = 0.98,
        comparator: Optional[EmbeddingComparator] = None,
        lookup_seconds_per_entry: float = 0.3e-6,
    ) -> None:
        """``setQC``: configure the similarity query cache."""
        self._cache = QueryCache(
            capacity=capacity,
            comparator=comparator or EmbeddingComparator(),
            qcn_accuracy=qcn_accuracy,
            threshold=threshold,
        )
        self._cache_lookup_seconds_per_entry = lookup_seconds_per_entry

    @property
    def query_cache(self) -> Optional[QueryCache]:
        return self._cache

    # ------------------------------------------------------------------
    # query / getResults
    # ------------------------------------------------------------------
    def query(
        self,
        qfv: np.ndarray,
        k: int,
        model_id: int,
        db_id: int,
        db_start: int = 0,
        db_end: Optional[int] = None,
        accel_level: Optional[str] = None,
    ) -> QueryHandle:
        """``query``: scan (a sub-range of) a database with one QFV."""
        if k <= 0:
            raise DeepStoreApiError("K must be positive")
        graph = self._models.get(model_id)
        if graph is None:
            raise DeepStoreApiError(f"unknown model id {model_id}")
        store = self._store(db_id)
        meta = self.ssd.ftl.get(db_id)
        db_end = len(store) if db_end is None else db_end
        if not 0 <= db_start < db_end <= len(store):
            raise DeepStoreApiError(f"bad db range [{db_start}, {db_end})")
        level = accel_level or self.level
        system = self._system(level)
        if not system.supports(graph):
            raise DeepStoreApiError(
                f"model {graph.name!r} is not supported at the {level} level"
            )

        qfv = np.asarray(qfv, dtype=np.float32).reshape(-1)
        if qfv.size * 4 != meta.feature_bytes:
            raise DeepStoreApiError(
                f"QFV size {qfv.size * 4} bytes does not match database "
                f"feature size {meta.feature_bytes}"
            )

        cache_hit = False
        cache_tag = (db_id, self._db_epochs.get(db_id, 0))
        if self._cache is not None:
            lookup = self._cache.lookup(qfv, tag=cache_tag)
            if lookup.hit and lookup.entry is not None:
                candidates = lookup.entry.topk_feature_ids
                scores = self._score_features(graph, qfv, store[candidates])
                order = np.argsort(-scores)[:k]
                result = self._build_result(
                    meta, candidates[order], scores[order],
                    self._hit_latency(graph, meta, lookup.entries_scanned, k),
                    cache_hit=True,
                )
                return self._register(result)

        # full scan (the map-reduce path)
        ids, scores = self._scan(graph, qfv, store, db_start, db_end, k)
        sliced = self._sliced_meta(meta, db_end - db_start)
        if self._failed_accels:
            # degraded mode: same results, honest (slower) cost model
            count = system.placement.count(system.ssd)
            bad = {i for i in self._failed_accels if i < count}
            if len(bad) >= count:
                raise DeepStoreApiError(
                    "all accelerators failed; no degraded mode possible"
                )
            latency = system.degraded_latency_for(
                graph,
                sliced,
                feature_bytes=meta.feature_bytes,
                failed_accels=bad,
                name=graph.name,
            ).degraded
        else:
            latency = system.latency_for(
                graph, sliced, feature_bytes=meta.feature_bytes, name=graph.name
            )
        if self._cache is not None:
            self._cache.insert(qfv, scores, ids, tag=cache_tag)
            lookup_cost = len(self._cache) * self._cache_lookup_seconds_per_entry
            latency = dataclasses.replace(
                latency, engine_seconds=latency.engine_seconds + lookup_cost
            )
        result = self._build_result(meta, ids, scores, latency, cache_hit)
        return self._register(result)

    def get_results(self, handle: QueryHandle) -> QueryResult:
        """``getResults``: fetch a completed query's top-K."""
        result = self._results.get(handle.query_id)
        if result is None:
            raise DeepStoreApiError(f"unknown query id {handle.query_id}")
        return result

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _system(self, level: str) -> DeepStoreSystem:
        system = self._systems.get(level)
        if system is None:
            system = DeepStoreSystem(self.ssd.config, placement=LEVELS[level])
            self._systems[level] = system
        return system

    def _store(self, db_id: int) -> np.ndarray:
        store = self._feature_store.get(db_id)
        if store is None:
            raise DeepStoreApiError(f"unknown database id {db_id}")
        return store

    @staticmethod
    def _check_features(features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float32)
        if features.ndim != 2 or features.shape[0] == 0:
            raise DeepStoreApiError("features must be a non-empty (N, dim) array")
        return features

    def _scan(
        self,
        graph: Graph,
        qfv: np.ndarray,
        store: np.ndarray,
        start: int,
        end: int,
        k: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Chunked functional SCN scan; returns top-K (ids, scores)."""
        best_ids: List[int] = []
        best_scores: List[float] = []
        for chunk_start in range(start, end, self.SCAN_CHUNK):
            chunk_end = min(end, chunk_start + self.SCAN_CHUNK)
            chunk = store[chunk_start:chunk_end]
            scores = self._score_features(graph, qfv, chunk)
            take = min(k, len(scores))
            top = np.argpartition(-scores, take - 1)[:take]
            best_ids.extend((top + chunk_start).tolist())
            best_scores.extend(scores[top].tolist())
        order = np.argsort(-np.asarray(best_scores))[:k]
        ids = np.asarray(best_ids, dtype=np.int64)[order]
        scores = np.asarray(best_scores, dtype=np.float32)[order]
        return ids, scores

    def _scan_ids(
        self,
        graph: Graph,
        qfv: np.ndarray,
        store: np.ndarray,
        ids: np.ndarray,
        k: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Chunked functional SCN scan over explicit row ids.

        Mirrors :meth:`_scan` operation for operation — same chunk
        boundaries, same per-chunk ``argpartition``, same closing
        ``argsort`` — so when ``ids == arange(start, end)`` the output
        is bit-identical to ``_scan(graph, qfv, store, start, end, k)``.
        """
        best_ids: List[int] = []
        best_scores: List[float] = []
        for chunk_start in range(0, len(ids), self.SCAN_CHUNK):
            chunk_ids = ids[chunk_start : chunk_start + self.SCAN_CHUNK]
            scores = self._score_features(graph, qfv, store[chunk_ids])
            take = min(k, len(scores))
            top = np.argpartition(-scores, take - 1)[:take]
            best_ids.extend(chunk_ids[top].tolist())
            best_scores.extend(scores[top].tolist())
        order = np.argsort(-np.asarray(best_scores))[:k]
        out_ids = np.asarray(best_ids, dtype=np.int64)[order]
        out_scores = np.asarray(best_scores, dtype=np.float32)[order]
        return out_ids, out_scores

    def _score_features(
        self, graph: Graph, qfv: np.ndarray, features: np.ndarray
    ) -> np.ndarray:
        q_id, d_id = graph.input_ids
        n = len(features)
        q_shape = graph.shape_of(q_id)
        d_shape = graph.shape_of(d_id)
        q_batch = np.broadcast_to(qfv.reshape(q_shape), (n, *q_shape))
        d_batch = features.reshape((n, *d_shape))
        out = graph.forward(
            {q_id: np.ascontiguousarray(q_batch), d_id: np.ascontiguousarray(d_batch)}
        )
        return out.reshape(-1)

    def _sliced_meta(self, meta: DatabaseMetadata, count: int) -> DatabaseMetadata:
        if count == meta.feature_count:
            return meta
        sliced = DatabaseMetadata(
            db_id=meta.db_id,
            feature_bytes=meta.feature_bytes,
            feature_count=count,
            page_bytes=meta.page_bytes,
        )
        sliced.extents = meta.extents
        return sliced

    def _hit_latency(
        self, graph: Graph, meta: DatabaseMetadata, entries_scanned: int, k: int
    ) -> QueryLatency:
        """Cache-hit cost: QCN lookup + SCN over the cached top-K."""
        system = self._system(self.level)
        tiny = self._sliced_meta(meta, max(1, k))
        latency = system.latency_for(
            graph, tiny, feature_bytes=meta.feature_bytes, name=graph.name
        )
        lookup_cost = entries_scanned * self._cache_lookup_seconds_per_entry
        return dataclasses.replace(
            latency, engine_seconds=latency.engine_seconds + lookup_cost
        )

    def _build_result(
        self,
        meta: DatabaseMetadata,
        ids: np.ndarray,
        scores: np.ndarray,
        latency: QueryLatency,
        cache_hit: bool,
    ) -> QueryResult:
        object_ids = np.asarray(
            [self._object_id(meta, int(i)) for i in ids], dtype=np.int64
        )
        query_id = self._next_query_id
        self._next_query_id += 1
        transfer = self._system(self.level).engine.result_transfer_seconds(
            max(1, len(ids)), meta.feature_bytes
        )
        return QueryResult(
            query_id=query_id,
            feature_ids=np.asarray(ids, dtype=np.int64),
            scores=np.asarray(scores, dtype=np.float32),
            object_ids=object_ids,
            latency=latency,
            cache_hit=cache_hit,
            transfer_seconds=transfer,
        )

    def _object_id(self, meta: DatabaseMetadata, feature_index: int) -> int:
        """Physical byte address of a feature (the paper's ObjectID)."""
        page_offset, _ = meta.feature_page_span(feature_index)
        ppn = meta.page_offset_to_ppn(page_offset)
        if meta.page_aligned:
            in_page = 0
        else:
            in_page = (feature_index % meta.features_per_page) * meta.feature_bytes
        return ppn * meta.page_bytes + in_page

    def _register(self, result: QueryResult) -> QueryHandle:
        self._results[result.query_id] = result
        return QueryHandle(query_id=result.query_id)
