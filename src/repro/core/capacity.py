"""Deployment capacity planning.

A downstream user of DeepStore has a corpus, an application, and a target
query rate; the models in this repo answer the provisioning question
directly: *which accelerator level, how many SSDs, and how much query
cache does that workload need?*

:func:`plan_deployment` walks the feasible configurations in cost order
(devices are the expensive resource, cache DRAM is nearly free) and
returns the cheapest plan meeting the target, with its predicted
latency/utilization — or the closest-miss plan flagged infeasible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.deepstore import DeepStoreSystem
from repro.core.placement import LEVELS
from repro.ssd import Ssd, SsdConfig
from repro.workloads.apps import AppSpec, get_app


@dataclass
class DeploymentPlan:
    """One provisioning option and its predicted behaviour."""

    app: str
    level: str
    num_ssds: int
    cache_entries: int
    expected_miss_rate: float
    query_seconds: float  # full-scan (miss) latency with this provisioning
    effective_qps: float  # sustainable rate at the expected miss rate
    target_qps: float
    feasible: bool

    @property
    def utilization(self) -> float:
        if self.effective_qps <= 0:
            return float("inf")
        return self.target_qps / self.effective_qps

    def describe(self) -> str:
        """One-line human-readable summary of the plan."""
        status = "OK" if self.feasible else "INSUFFICIENT"
        return (
            f"[{status}] {self.app} @ {self.level} level x{self.num_ssds} "
            f"SSD(s), {self.cache_entries}-entry cache "
            f"(miss {self.expected_miss_rate * 100:.0f}%): scan "
            f"{self.query_seconds * 1e3:.1f} ms, sustains "
            f"{self.effective_qps:.2f} qps vs target {self.target_qps:.2f} "
            f"({self.utilization * 100:.0f}% utilization)"
        )


class PlanningError(ValueError):
    """Raised for impossible inputs."""


def _miss_rate_estimate(cache_entries: int, n_intents: int,
                        zipf_alpha: float) -> float:
    """Closed-form steady-state miss estimate for a Zipf intent stream.

    A cache of ``E`` entries under LRU holds roughly the ``E`` most
    popular intents; the miss rate is the tail mass of the Zipf law.
    """
    if cache_entries <= 0:
        return 1.0
    if cache_entries >= n_intents:
        return 0.0
    import numpy as np

    ranks = np.arange(1, n_intents + 1, dtype=np.float64)
    weights = ranks ** (-zipf_alpha)
    probs = weights / weights.sum()
    return float(probs[cache_entries:].sum())


def plan_deployment(
    app: AppSpec | str,
    corpus_features: int,
    target_qps: float,
    n_intents: int = 5000,
    zipf_alpha: float = 0.7,
    max_ssds: int = 16,
    cache_options: tuple = (0, 256, 1024, 4096),
    ssd_config: Optional[SsdConfig] = None,
) -> List[DeploymentPlan]:
    """All evaluated plans, cheapest-feasible first.

    Cost order: fewer SSDs beat more SSDs; within a device count, larger
    caches are free enough to prefer whenever they help.  Levels are
    ranked by measured query time, not assumed.
    """
    if isinstance(app, str):
        app = get_app(app)
    if corpus_features <= 0:
        raise PlanningError("corpus_features must be positive")
    if target_qps <= 0:
        raise PlanningError("target_qps must be positive")
    ssd_config = ssd_config or SsdConfig()

    capacity_features = int(
        ssd_config.geometry.capacity_bytes * 0.9 / app.feature_bytes
    )
    min_ssds_for_capacity = max(1, -(-corpus_features // capacity_features))
    if min_ssds_for_capacity > max_ssds:
        raise PlanningError(
            f"corpus of {corpus_features} x {app.feature_bytes} B features "
            f"needs at least {min_ssds_for_capacity} SSDs for capacity "
            f"alone (max_ssds={max_ssds})"
        )

    plans: List[DeploymentPlan] = []
    graph = app.build_scn()
    for num_ssds in range(min_ssds_for_capacity, max_ssds + 1):
        per_ssd_features = -(-corpus_features // num_ssds)
        ssd = Ssd(ssd_config)
        meta = ssd.ftl.create_database(app.feature_bytes, per_ssd_features)
        level_costs: Dict[str, float] = {}
        for level, placement in LEVELS.items():
            if not placement.supports(graph):
                continue
            system = DeepStoreSystem(ssd_config, placement=placement)
            level_costs[level] = system.query_latency(
                app, meta, graph=graph
            ).total_seconds
        best_level = min(level_costs, key=level_costs.get)
        scan_seconds = level_costs[best_level]
        for cache_entries in cache_options:
            miss = _miss_rate_estimate(cache_entries, n_intents, zipf_alpha)
            lookup = cache_entries * 0.3e-6
            hit_seconds = 300e-6
            mean = lookup + miss * scan_seconds + (1 - miss) * hit_seconds
            qps = 1.0 / mean if mean > 0 else float("inf")
            plans.append(
                DeploymentPlan(
                    app=app.name,
                    level=best_level,
                    num_ssds=num_ssds,
                    cache_entries=cache_entries,
                    expected_miss_rate=miss,
                    query_seconds=scan_seconds,
                    effective_qps=qps,
                    target_qps=target_qps,
                    feasible=qps >= target_qps,
                )
            )
        if any(p.feasible and p.num_ssds == num_ssds for p in plans):
            break  # cheapest device count found; no need to add more

    plans.sort(key=lambda p: (not p.feasible, p.num_ssds, p.cache_entries))
    return plans


def best_plan(*args, **kwargs) -> DeploymentPlan:
    """The cheapest feasible plan (or the closest miss, flagged)."""
    plans = plan_deployment(*args, **kwargs)
    return plans[0]
