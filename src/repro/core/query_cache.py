"""Similarity-based in-storage query cache (paper §4.6, Algorithm 1).

Unlike a conventional result cache that needs exact key matches, the
DeepStore query cache tags each entry with a **query feature vector** and
looks up new queries by *semantic similarity*: a query comparison network
(QCN) scores the new QFV against every cached QFV, the best score is
scaled by the QCN's model accuracy, and the entry hits when
``1 - qcn_score * QCN_Acc <= threshold``.  On a hit, the SCN re-ranks
only the cached entry's top-K features; on a miss, the full database is
scanned and the result inserted (LRU replacement).

The paper's TIR evaluation uses the Universal Sentence Encoder as the
QCN.  Our substitute, :class:`EmbeddingComparator`, scores cosine
similarity of the synthetic query embeddings through a calibrated
logistic — it consumes exactly what Algorithm 1 consumes (a similarity
score in [0, 1] plus a fixed accuracy), so hit/miss behaviour versus
threshold and query locality is preserved.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim import fastpath


@dataclass
class EmbeddingComparator:
    """QCN substitute: logistic over cosine similarity.

    ``score = sigmoid(steepness * (cos(q1, q2) - midpoint))`` maps
    same-intent paraphrases (high cosine) toward 1 and unrelated queries
    toward 0, with a soft boundary so the error-threshold sweep of
    Fig. 13 moves the hit rate smoothly.
    """

    steepness: float = 80.0
    midpoint: float = 0.92

    def score(self, a: np.ndarray, b: np.ndarray) -> float:
        """Similarity score of one query pair in [0, 1]."""
        return float(self.score_many(a, b.reshape(1, -1))[0])

    def score_many(self, query: np.ndarray, entries: np.ndarray) -> np.ndarray:
        """Vectorized scores of ``query`` against rows of ``entries``."""
        q = query.reshape(-1).astype(np.float64)
        e = entries.reshape(entries.shape[0], -1).astype(np.float64)
        qn = np.linalg.norm(q)
        en = np.linalg.norm(e, axis=1)
        denom = np.maximum(qn * en, 1e-12)
        cos = (e @ q) / denom
        z = self.steepness * (cos - self.midpoint)
        return 1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))

    def score_rows(
        self, query: np.ndarray, entries64: np.ndarray, norms64: np.ndarray
    ) -> np.ndarray:
        """:meth:`score_many` over a pre-converted float64 matrix.

        ``entries64`` must be C-contiguous float64 with per-row norms in
        ``norms64`` computed by :func:`row_norm64`.  Bit-identical to
        ``score_many(query, float32_rows)``: the float64 conversion and
        the row norms are the exact operations score_many performs, just
        done once at insert instead of on every lookup.
        """
        q = query.reshape(-1).astype(np.float64)
        qn = np.linalg.norm(q)
        denom = np.maximum(qn * norms64, 1e-12)
        cos = (entries64 @ q) / denom
        z = self.steepness * (cos - self.midpoint)
        # min(max(...)) is bit-equal to np.clip for finite input and
        # skips the dispatch wrapper this per-lookup path can't afford
        return 1.0 / (1.0 + np.exp(-np.minimum(np.maximum(z, -60.0), 60.0)))


def row_norm64(row64: np.ndarray) -> float:
    """Norm of one matrix row, via the same reduction as the batch.

    ``np.linalg.norm(matrix, axis=1)`` and ``np.linalg.norm(vector)``
    use different reduction kernels (``add.reduce`` vs BLAS ``dot``)
    whose float results can differ in the last ulp; computing the
    stored norm through the axis-1 path on a 1-row matrix keeps cached
    norms bit-equal to what a fresh ``score_many`` stack would compute.
    """
    return float(np.linalg.norm(row64.reshape(1, -1), axis=1)[0])


@dataclass
class CacheEntry:
    """One query-cache entry (paper Fig. 7)."""

    qfv: np.ndarray
    topk_scores: np.ndarray  # similarity scores of the cached top-K
    topk_feature_ids: np.ndarray  # feature indices ("TopKFV")
    object_ids: np.ndarray  # physical addresses of the features
    valid: bool = True
    #: provenance tag, e.g. ``(db_id, epoch)`` — lookups filtered by tag
    #: only hit entries produced against the same database state
    tag: Optional[Tuple] = None

    def nbytes(self) -> int:
        """DRAM footprint of this entry."""
        return (
            self.qfv.nbytes
            + self.topk_scores.nbytes
            + self.topk_feature_ids.nbytes
            + self.object_ids.nbytes
            + 1
        )


@dataclass
class LookupResult:
    """Outcome of Algorithm 1's lookup loop."""

    hit: bool
    entry: Optional[CacheEntry]
    best_score: float
    entries_scanned: int


class QueryCache:
    """LRU similarity cache over query feature vectors."""

    def __init__(
        self,
        capacity: int,
        comparator: EmbeddingComparator,
        qcn_accuracy: float = 0.98,
        threshold: float = 0.10,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < qcn_accuracy <= 1:
            raise ValueError("qcn_accuracy must be in (0, 1]")
        if not 0 <= threshold <= 1:
            raise ValueError("threshold must be in [0, 1]")
        self.capacity = capacity
        self.comparator = comparator
        self.qcn_accuracy = qcn_accuracy
        self.threshold = threshold
        self._entries: "OrderedDict[int, CacheEntry]" = OrderedDict()
        self._next_id = 0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        # Fast-path lookup matrix: row i holds the float64 QFV of the
        # i-th entry in dict order, with its norm alongside, so a lookup
        # is one matrix-vector product instead of stack+convert+norm
        # over every entry.  Maintained unconditionally (mutations are
        # rare next to lookups); consulted only when the fast path is
        # on.  Same floats, same contiguous layout as a fresh
        # ``np.stack(...).astype(float64)``, so scores are bit-equal.
        self._fm: Optional[np.ndarray] = None
        self._fnorm: Optional[np.ndarray] = None
        self._fm_dim = 0
        #: cleared on a dimension mismatch — heterogeneous QFVs fall
        #: back to the stacking path forever (never happens in practice)
        self._fm_ok = True
        #: entry keys in dict order, so the fast lookup path never has
        #: to materialize ``list(self._entries.keys())`` per lookup
        self._keys: List[int] = []

    # ------------------------------------------------------------------
    # lookup-matrix maintenance (mirrors every OrderedDict mutation)
    # ------------------------------------------------------------------
    def _fm_append(self, qfv32: np.ndarray) -> None:
        """Add the new last entry's row; called after the dict insert."""
        if not self._fm_ok:
            return
        row = qfv32.reshape(1, -1).astype(np.float64)
        dim = row.shape[1]
        if self._fm is None:
            self._fm = np.empty((self.capacity, dim), dtype=np.float64)
            self._fnorm = np.empty(self.capacity, dtype=np.float64)
            self._fm_dim = dim
        elif dim != self._fm_dim:
            self._fm_ok = False
            self._fm = None
            self._fnorm = None
            return
        index = len(self._entries) - 1
        self._fm[index] = row[0]
        self._fnorm[index] = row_norm64(row[0])

    def _fm_pop_front(self) -> None:
        """Drop row 0 (LRU eviction); called before the dict popitem."""
        if self._fm is None or not self._fm_ok:
            return
        n = len(self._entries)
        self._fm[: n - 1] = self._fm[1:n]
        self._fnorm[: n - 1] = self._fnorm[1:n]

    def _fm_promote(self, index: int) -> None:
        """Move row ``index`` to the end (LRU promote on a hit)."""
        if self._fm is None or not self._fm_ok:
            return
        n = len(self._entries)
        if index >= n - 1:
            return
        row = self._fm[index].copy()
        norm = self._fnorm[index]
        self._fm[index : n - 1] = self._fm[index + 1 : n]
        self._fnorm[index : n - 1] = self._fnorm[index + 1 : n]
        self._fm[n - 1] = row
        self._fnorm[n - 1] = norm

    def _fm_rebuild(self) -> None:
        """Re-derive every row from the dict (after bulk invalidation)."""
        if self._fm is None or not self._fm_ok:
            return
        for i, entry in enumerate(self._entries.values()):
            row = entry.qfv.reshape(1, -1).astype(np.float64)
            if row.shape[1] != self._fm_dim:
                self._fm_ok = False
                self._fm = None
                self._fnorm = None
                return
            self._fm[i] = row[0]
            self._fnorm[i] = row_norm64(row[0])

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.lookups if self.lookups else 0.0

    def nbytes(self) -> int:
        """Total DRAM footprint of the cached entries."""
        return sum(entry.nbytes() for entry in self._entries.values())

    # ------------------------------------------------------------------
    def lookup(self, qfv: np.ndarray, tag: Optional[Tuple] = None) -> LookupResult:
        """Algorithm 1: scan entries, scale by accuracy, threshold.

        With ``tag`` given, only entries carrying an equal tag are
        candidates — the epoch-tagged lookup a mutable database needs so
        a result cached before a mutation can never satisfy a query
        issued after it.  ``tag=None`` scans every entry (the static,
        pre-ingest behaviour).
        """
        use_matrix = (
            tag is None
            and self._fm is not None
            and self._fm_ok
            and fastpath.enabled()
        )
        if tag is None:
            keys = self._keys if use_matrix else list(self._entries.keys())
        else:
            keys = [k for k, e in self._entries.items() if e.tag == tag]
        if not keys:
            self.misses += 1
            return LookupResult(False, None, 0.0, 0)
        if use_matrix:
            scores = self.comparator.score_rows(
                qfv, self._fm[: len(keys)], self._fnorm[: len(keys)]
            ) * self.qcn_accuracy
        else:
            matrix = np.stack([self._entries[k].qfv for k in keys])
            scores = self.comparator.score_many(qfv, matrix) * self.qcn_accuracy
        best_index = int(scores.argmax())
        best_score = float(scores[best_index])
        if (1.0 - best_score) <= self.threshold:
            key = keys[best_index]
            entry = self._entries[key]
            index = best_index if tag is None else self._keys.index(key)
            self._fm_promote(index)
            self._keys.append(self._keys.pop(index))
            self._entries.move_to_end(key)  # LRU promote
            self.hits += 1
            return LookupResult(True, entry, best_score, len(keys))
        self.misses += 1
        return LookupResult(False, None, best_score, len(keys))

    def insert(
        self,
        qfv: np.ndarray,
        topk_scores: Sequence[float],
        topk_feature_ids: Sequence[int],
        object_ids: Optional[Sequence[int]] = None,
        tag: Optional[Tuple] = None,
    ) -> None:
        """Insert a query and its results, evicting LRU if full."""
        if object_ids is None:
            object_ids = topk_feature_ids
        entry = CacheEntry(
            qfv=np.asarray(qfv, dtype=np.float32).copy(),
            topk_scores=np.asarray(topk_scores, dtype=np.float32),
            topk_feature_ids=np.asarray(topk_feature_ids, dtype=np.int64),
            object_ids=np.asarray(object_ids, dtype=np.int64),
            tag=tag,
        )
        if len(self._entries) >= self.capacity:
            self._fm_pop_front()
            self._entries.popitem(last=False)
            del self._keys[0]
        self._entries[self._next_id] = entry
        self._keys.append(self._next_id)
        self._next_id += 1
        self._fm_append(entry.qfv)

    def invalidate(self, match: Callable[[Optional[Tuple]], bool]) -> int:
        """Drop every entry whose tag satisfies ``match``; return count.

        Mutations call this with a predicate over the entry tag (e.g.
        "same db_id") so stale top-K lists are removed outright rather
        than lingering until LRU eviction — the lookup cost a device
        pays is proportional to live entries, so correctness *and* cost
        stay honest after a mutation.
        """
        doomed = [k for k, e in self._entries.items() if match(e.tag)]
        for key in doomed:
            del self._entries[key]
        if doomed:
            self._keys = list(self._entries.keys())
            self._fm_rebuild()
        self.invalidations += len(doomed)
        return len(doomed)

    def invalidate_tag_prefix(self, prefix: Tuple) -> int:
        """Drop entries whose tag starts with ``prefix`` (e.g. a db_id)."""
        n = len(prefix)
        return self.invalidate(
            lambda tag: tag is not None and tuple(tag[:n]) == tuple(prefix)
        )

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (after warm-up)."""
        self.hits = 0
        self.misses = 0


# ----------------------------------------------------------------------
# timing simulation (Fig. 13 / Fig. 14)
# ----------------------------------------------------------------------
@dataclass
class CacheTimingModel:
    """Costs of the cache path on a given backend.

    ``lookup_seconds_per_entry`` covers fetching one cached QFV from SSD
    DRAM and running the QCN on the channel-level accelerators (the paper
    measures 0.3 ms for a 1 K-entry TIR cache); ``hit_seconds`` re-ranks
    the cached top-K with the SCN; ``miss_seconds`` is the full database
    scan on the backend (GPU+SSD or DeepStore).
    """

    lookup_seconds_per_entry: float
    hit_seconds: float
    miss_seconds: float
    insert_seconds: float = 2e-6

    def query_seconds(self, hit: bool, entries_scanned: int) -> float:
        """Total time of one query under this hit/miss outcome."""
        base = entries_scanned * self.lookup_seconds_per_entry
        if hit:
            return base + self.hit_seconds
        return base + self.miss_seconds + self.insert_seconds


@dataclass
class CacheSimReport:
    """Aggregate outcome of a query-stream simulation."""

    queries: int
    miss_rate: float
    mean_seconds: float
    total_seconds: float
    cache_entries: int

    def speedup_over(self, baseline_seconds_per_query: float) -> float:
        """Mean-latency speedup against a cache-less baseline."""
        if self.mean_seconds <= 0:
            return float("inf")
        return baseline_seconds_per_query / self.mean_seconds


class QueryCacheSimulator:
    """Runs a query stream against a cache + timing model."""

    def __init__(
        self,
        cache: QueryCache,
        timing: CacheTimingModel,
        k: int = 10,
    ):
        self.cache = cache
        self.timing = timing
        self.k = k

    def run(self, queries: Sequence, warmup: int = 0) -> CacheSimReport:
        """Process ``queries`` (QueryRecord or raw arrays).

        The first ``warmup`` queries populate the cache without being
        measured (the paper warms the cache with the trace before
        measuring, §6.5).
        """
        measured_seconds: List[float] = []
        for i, record in enumerate(queries):
            qfv = getattr(record, "qfv", record)
            result = self.cache.lookup(qfv)
            seconds = self.timing.query_seconds(result.hit, result.entries_scanned)
            if not result.hit:
                # Fabricate result ids; the simulator measures time, the
                # functional path lives in repro.core.api.
                ids = np.arange(self.k, dtype=np.int64)
                self.cache.insert(qfv, np.zeros(self.k, dtype=np.float32), ids)
            if i >= warmup:
                measured_seconds.append(seconds)
            elif i == warmup - 1:
                self.cache.reset_stats()
        n = len(measured_seconds)
        total = float(np.sum(measured_seconds)) if measured_seconds else 0.0
        return CacheSimReport(
            queries=n,
            miss_rate=self.cache.miss_rate,
            mean_seconds=total / n if n else 0.0,
            total_seconds=total,
            cache_entries=len(self.cache),
        )
