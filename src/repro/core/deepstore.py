"""Whole-system DeepStore performance/energy model.

:class:`DeepStoreSystem` combines one accelerator placement with the SSD
model and the query engine to answer: *how long does one intelligent
query (a full database scan) take, and what does it cost in energy?*

Per level, the steady-state per-feature time is the max of the flash
feed rate and the accelerator's compute/weight-stream rate:

* **SSD level** — one accelerator fed by all channels through DRAM; the
  feed rate is ``min(internal bandwidth, DRAM bandwidth)``.
* **channel level** — one accelerator per channel, each consuming its
  800 MB/s channel; non-resident weights broadcast from DRAM in lockstep.
* **chip level** — four accelerators per channel behind the shared bus;
  the bus carries both the DFV pages *and* the weight broadcasts the
  channel accelerator schedules (WS dataflow), so models with large
  weights pay bus time per scheduling window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Sequence

from repro.core.accelerator import InStorageAccelerator
from repro.core.engine import DispatchPolicy, EngineCosts, QueryEngine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.scheduler import DegradedScanPlan
from repro.core.placement import LEVELS, AcceleratorPlacement, CHANNEL_LEVEL
from repro.energy import EnergyBreakdown, EnergyModel
from repro.nn.graph import Graph
from repro.ssd.ftl import DatabaseMetadata
from repro.ssd.timing import SsdConfig
from repro.workloads.apps import AppSpec


@dataclass
class QueryLatency:
    """Latency/energy decomposition of one in-storage query."""

    app: str
    level: str
    n_features: int
    accel_count: int
    # per-accelerator steady-state rates (seconds per feature)
    compute_spf: float
    io_spf: float
    bus_weight_spf: float
    # serial components
    engine_seconds: float
    setup_seconds: float
    scan_seconds: float
    merge_seconds: float
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    #: stock SSD hardware power (controller, DRAM, interfaces) drawn for
    #: the whole query duration; part of DeepStore's Fig. 11 denominator
    base_power_w: float = 0.0

    @property
    def total_seconds(self) -> float:
        return (
            self.engine_seconds
            + self.setup_seconds
            + self.scan_seconds
            + self.merge_seconds
        )

    @property
    def seconds_per_feature(self) -> float:
        return self.total_seconds / self.n_features if self.n_features else 0.0

    @property
    def bound(self) -> str:
        """What limits the steady-state scan."""
        rates = {
            "compute": self.compute_spf,
            "flash": self.io_spf,
            "weight-broadcast": self.bus_weight_spf,
        }
        return max(rates, key=rates.get)

    @property
    def accelerator_power_w(self) -> float:
        """Dynamic accelerator (+flash access) power alone."""
        return self.energy.total_j / self.total_seconds if self.total_seconds else 0.0

    @property
    def power_w(self) -> float:
        """Whole-device power: dynamic accelerator energy + SSD base."""
        return self.accelerator_power_w + self.base_power_w


@dataclass
class DegradedQuery:
    """A query's cost healthy vs. with failed accelerators remapped."""

    healthy: QueryLatency
    degraded: QueryLatency
    plan: "DegradedScanPlan"
    policy: DispatchPolicy

    @property
    def slowdown(self) -> float:
        """Degraded over healthy query latency (>= 1.0)."""
        if self.healthy.total_seconds <= 0:
            return 1.0
        return self.degraded.total_seconds / self.healthy.total_seconds

    @property
    def survivors(self) -> int:
        """Accelerators still serving the query."""
        return len(self.plan.assignments)


class DeepStoreSystem:
    """DeepStore at one placement level inside one SSD."""

    #: FLASH_DFV queue depth used by the latency-hiding model
    QUEUE_DEPTH = 8

    def __init__(
        self,
        ssd: Optional[SsdConfig] = None,
        placement: AcceleratorPlacement = CHANNEL_LEVEL,
        k: int = 10,
        engine_costs: Optional[EngineCosts] = None,
        energy_model: Optional[EnergyModel] = None,
    ):
        self.ssd = ssd or SsdConfig()
        self.placement = placement
        self.k = k
        self.engine = QueryEngine(self.ssd, engine_costs)
        self.energy_model = energy_model or EnergyModel()
        self._accel_cache: Dict[str, InStorageAccelerator] = {}

    @classmethod
    def at_level(cls, level: str, **kwargs) -> "DeepStoreSystem":
        if level not in LEVELS:
            raise ValueError(f"unknown level {level!r}; choose from {list(LEVELS)}")
        return cls(placement=LEVELS[level], **kwargs)

    # ------------------------------------------------------------------
    def accelerator_for(self, graph: Graph) -> InStorageAccelerator:
        """The (cached) accelerator instance bound to a graph."""
        accel = self._accel_cache.get(graph.name)
        if accel is None:
            accel = InStorageAccelerator(
                self.placement, self.ssd, graph, k=self.k,
                energy_model=self.energy_model,
            )
            self._accel_cache[graph.name] = accel
        return accel

    # ------------------------------------------------------------------
    # steady-state rates
    # ------------------------------------------------------------------
    def _page_feed_seconds(self, outstanding: int) -> float:
        """Steady per-page delivery time on one channel."""
        timing = self.ssd.timing
        geo = self.ssd.geometry
        page_time = timing.transfer_seconds(geo.page_bytes) + timing.command_overhead_s
        latency_limit = timing.array_read_latency_s / max(1, outstanding)
        return max(page_time, latency_limit)

    def io_seconds_per_feature(self, meta: DatabaseMetadata) -> float:
        """Flash feed time per feature for this placement."""
        geo = self.ssd.geometry
        pages_per_feature = meta.total_pages / meta.feature_count
        if self.placement.level == "ssd":
            # All channels feed one accelerator through SSD DRAM.
            per_channel = self._page_feed_seconds(
                min(geo.planes_per_channel, 4 * self.QUEUE_DEPTH)
            )
            page_feed = per_channel / geo.channels
            dram_limit = geo.page_bytes / self.ssd.dram_bandwidth
            return pages_per_feature * max(page_feed, dram_limit)
        # channel and chip level: the channel bus feeds the accelerators
        # attached to it; per-channel stripes scan in parallel.  The
        # FLASH_DFV queue bounds the reads in flight, so very slow flash
        # (4x the 53 us baseline) becomes partially visible to I/O-bound
        # apps — the modest sensitivity of paper Fig. 9.
        outstanding = min(geo.planes_per_channel, self.QUEUE_DEPTH)
        return pages_per_feature * self._page_feed_seconds(outstanding)

    def bus_weight_seconds_per_feature(
        self, graph: Graph, feature_bytes: int
    ) -> float:
        """Chip level only: weight-broadcast bus time per feature."""
        if self.placement.level != "chip":
            return 0.0
        geo = self.ssd.geometry
        window = self.placement.dfv_buffer_features(feature_bytes)
        features_per_round = geo.chips_per_channel * window
        weight_bytes = graph.weight_bytes()
        return (
            weight_bytes
            / self.ssd.timing.channel_bandwidth
            / features_per_round
        )

    # ------------------------------------------------------------------
    # the headline number
    # ------------------------------------------------------------------
    def query_latency(
        self,
        app: AppSpec,
        meta: DatabaseMetadata,
        graph: Optional[Graph] = None,
        fidelity: str = "analytic",
    ) -> QueryLatency:
        """Latency/energy of one query scanning database ``meta``.

        ``fidelity="event"`` replays a stripe window through the
        event-driven flash model instead of the closed-form feed rate
        (channel level only; other levels fall back to analytic).
        """
        graph = graph or app.build_scn()
        return self.latency_for(
            graph, meta, feature_bytes=app.feature_bytes, name=app.name,
            fidelity=fidelity,
        )

    def latency_for(
        self,
        graph: Graph,
        meta: DatabaseMetadata,
        feature_bytes: int,
        name: str = "",
        fidelity: str = "analytic",
    ) -> QueryLatency:
        """Like :meth:`query_latency` but without an :class:`AppSpec`."""
        if fidelity not in ("analytic", "event"):
            raise ValueError(f"unknown fidelity {fidelity!r}")
        accel = self.accelerator_for(graph)
        geo = self.ssd.geometry
        count = self.placement.count(self.ssd)
        n = meta.feature_count
        stripe_features = n / count

        compute_spf = accel.compute_seconds_per_feature(int(max(1, stripe_features)))
        io_spf = self.io_seconds_per_feature(meta)
        bus_spf = self.bus_weight_seconds_per_feature(graph, feature_bytes)

        if self.placement.level == "chip":
            # Per channel: 4 chips compute in parallel behind one bus.
            chips = geo.chips_per_channel
            per_channel_spf = max(io_spf + bus_spf, compute_spf / chips)
            scan = (n / geo.channels) * per_channel_spf
        elif self.placement.level == "channel":
            per_accel_spf = max(io_spf, compute_spf)
            if fidelity == "event":
                window = accel.simulate_stripe_scan(
                    meta, channel=0, max_pages=256, queue_depth=self.QUEUE_DEPTH
                )
                if window.features > 0:
                    per_accel_spf = window.seconds_per_feature
            scan = stripe_features * per_accel_spf
        else:  # ssd level
            per_accel_spf = max(io_spf, compute_spf)
            scan = n * per_accel_spf

        engine = self.engine.dispatch_seconds(count)
        setup = accel.query_setup_seconds()
        merge = self.engine.merge_seconds(count, self.k)

        energy = self._query_energy(accel, meta, n, engine + merge)
        return QueryLatency(
            app=name,
            level=self.placement.level,
            n_features=n,
            accel_count=count,
            compute_spf=compute_spf / (geo.chips_per_channel if self.placement.level == "chip" else 1),
            io_spf=io_spf,
            bus_weight_spf=bus_spf,
            engine_seconds=engine,
            setup_seconds=setup,
            scan_seconds=scan,
            merge_seconds=merge,
            energy=energy,
            base_power_w=self.ssd.base_power_w,
        )

    # ------------------------------------------------------------------
    # degraded mode
    # ------------------------------------------------------------------
    def degraded_query_latency(
        self,
        app: AppSpec,
        meta: DatabaseMetadata,
        failed_accels: Sequence[int],
        graph: Optional[Graph] = None,
        policy: Optional[DispatchPolicy] = None,
    ) -> DegradedQuery:
        """Query cost with ``failed_accels`` dead and their work remapped.

        The surviving accelerators adopt the failed stripes
        (:func:`~repro.core.scheduler.plan_degraded_scan`), so the scan
        finishes when the most-loaded survivor finishes; the engine
        additionally pays one dispatch timeout/backoff ladder per dead
        accelerator before it can remap.  Top-K results are unchanged —
        only time degrades.
        """
        graph = graph or app.build_scn()
        return self.degraded_latency_for(
            graph,
            meta,
            feature_bytes=app.feature_bytes,
            failed_accels=failed_accels,
            name=app.name,
            policy=policy,
        )

    def degraded_latency_for(
        self,
        graph: Graph,
        meta: DatabaseMetadata,
        feature_bytes: int,
        failed_accels: Sequence[int],
        name: str = "",
        policy: Optional[DispatchPolicy] = None,
    ) -> DegradedQuery:
        """Like :meth:`degraded_query_latency` without an AppSpec."""
        import dataclasses

        from repro.core.scheduler import plan_degraded_scan

        policy = policy or DispatchPolicy()
        count = self.placement.count(self.ssd)
        plan = plan_degraded_scan(meta.feature_count, count, failed_accels)
        healthy = self.latency_for(graph, meta, feature_bytes, name=name)
        survivors = len(plan.assignments)
        degraded = dataclasses.replace(
            healthy,
            accel_count=survivors,
            scan_seconds=healthy.scan_seconds * plan.load_factor,
            engine_seconds=self.engine.degraded_dispatch_seconds(
                count, count - survivors, policy
            ),
            merge_seconds=self.engine.merge_seconds(survivors, self.k),
        )
        return DegradedQuery(
            healthy=healthy, degraded=degraded, plan=plan, policy=policy
        )

    def _query_energy(
        self,
        accel: InStorageAccelerator,
        meta: DatabaseMetadata,
        n_features: int,
        engine_seconds: float,
    ) -> EnergyBreakdown:
        per_feature = accel.feature_energy(meta)
        total = per_feature.scaled(n_features)
        total.compute_j += self.engine.energy_j(engine_seconds)
        return total

    # ------------------------------------------------------------------
    def scan_power_w(self, app: AppSpec, meta: DatabaseMetadata) -> float:
        """Aggregate accelerator power during a scan (all instances)."""
        latency = self.query_latency(app, meta)
        return latency.power_w

    def supports(self, graph: Graph) -> bool:
        """Whether this placement can execute the model."""
        return self.placement.supports(graph)
