"""Centroid probe routing, scored by the SCN at the SSD level.

The SCN is a learned, non-metric comparator, so geometric
nearest-centroid routing would be uncorrelated with the ranking the
scan actually produces.  The router therefore scores the **centroid
table with the query's own SCN** — the same trick
:class:`repro.ingest.compaction.DeltaAwareSearch` uses — and probes the
``nprobe`` best lists under the canonical ``(-score, list_id)`` order.

Cost model: the centroid table is tiny and lives in SSD DRAM next to
the database metadata, so routing is priced as an SSD-level accelerator
pass over ``n_lists`` features.  At ``nprobe >= n_lists`` routing is a
no-op — every list is probed regardless of centroid order — and costs
exactly ``0.0`` seconds, which is what keeps the full-probe path
bit-identical to the exhaustive scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core.deepstore import DeepStoreSystem
from repro.nn.graph import Graph
from repro.ssd.ftl import DatabaseMetadata


@dataclass(frozen=True)
class RoutingDecision:
    """Which lists one query probes, and what deciding cost."""

    list_ids: np.ndarray
    nprobe: int
    routing_seconds: float
    #: SCN scores of every centroid (``None`` on the full-probe shortcut)
    centroid_scores: Optional[np.ndarray] = None

    @property
    def full_probe(self) -> bool:
        return self.centroid_scores is None


class CentroidRouter:
    """Route queries to inverted lists via SCN-scored centroids."""

    def __init__(
        self,
        centroids: np.ndarray,
        system: DeepStoreSystem,
        graph: Graph,
        feature_bytes: int,
        page_bytes: int = 16 * 1024,
    ):
        self.centroids = np.asarray(centroids, dtype=np.float32)
        self.system = system
        self.graph = graph
        self.feature_bytes = feature_bytes
        self.page_bytes = page_bytes

    @property
    def n_lists(self) -> int:
        return len(self.centroids)

    def routing_seconds(self) -> float:
        """SSD-level accelerator pass over the centroid table."""
        centroid_meta = DatabaseMetadata(
            db_id=0,
            feature_bytes=self.feature_bytes,
            feature_count=self.n_lists,
            page_bytes=self.page_bytes,
        )
        centroid_meta.extents = []
        return self.system.latency_for(
            self.graph,
            centroid_meta,
            feature_bytes=self.feature_bytes,
            name=self.graph.name,
        ).total_seconds

    def route(
        self,
        qfv: np.ndarray,
        nprobe: int,
        score_fn: Callable[[Graph, np.ndarray, np.ndarray], np.ndarray],
    ) -> RoutingDecision:
        """Pick ``nprobe`` lists for one query.

        ``score_fn(graph, qfv, rows)`` is the device's SCN scorer, so
        centroids are ranked by exactly the comparator the scan uses.
        """
        nprobe = max(1, min(int(nprobe), self.n_lists))
        if nprobe >= self.n_lists:
            return RoutingDecision(
                list_ids=np.arange(self.n_lists, dtype=np.int64),
                nprobe=self.n_lists,
                routing_seconds=0.0,
            )
        scores = np.asarray(score_fn(self.graph, qfv, self.centroids))
        # stable sort on -score = canonical (-score, list_id) tie-break
        order = np.argsort(-scores, kind="stable")[:nprobe]
        return RoutingDecision(
            list_ids=np.sort(order).astype(np.int64),
            nprobe=nprobe,
            routing_seconds=self.routing_seconds(),
            centroid_scores=scores,
        )
