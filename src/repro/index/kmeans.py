"""Deterministic k-means with the canonical assignment tie-break.

:func:`repro.core.reorganize.kmeans_lite` returns the assignments of the
*last Lloyd iteration before* the final centroid update, which is fine
for a coarse layout but not for an index whose membership rule must be
reproducible from the centroids alone.  :func:`train_kmeans` runs the
same deterministic Lloyd loop and then re-assigns once against the final
centroids, so the returned assignment *is* :func:`assign_canonical` of
the returned centroids — the property the index test suite pins down.

The canonical rule: a vector belongs to the centroid maximizing
``score = 2·(x·c) − |c|²`` (monotone in negative squared distance),
ties broken toward the **lowest centroid id** — i.e. the argmin centroid
under the ``(-score, id)`` order used everywhere else in the codebase.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


class IndexError_(ValueError):
    """Raised for invalid index-training parameters."""


def centroid_scores(data: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """``(n, k)`` canonical scores: ``2·(x·c) − |c|²`` in float64."""
    data = np.asarray(data, dtype=np.float64)
    centroids = np.asarray(centroids, dtype=np.float64)
    dots = data @ centroids.T
    norms = (centroids * centroids).sum(axis=1)
    return 2.0 * dots - norms


def assign_canonical(data: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Argmax-score centroid per row, ties to the lowest centroid id.

    ``np.argmax`` returns the first occurrence of the maximum, which is
    exactly the ``(-score, id)`` tie-break.
    """
    return np.argmax(centroid_scores(data, centroids), axis=1).astype(np.int64)


def train_kmeans(
    data: np.ndarray, n_lists: int, iterations: int = 8, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic Lloyd's k-means; returns ``(centroids, assignments)``.

    The returned assignments are the canonical assignment of the
    returned centroids (a closing re-assignment pass runs after the last
    centroid update).  Empty clusters are re-seeded from the densest
    cluster's members, deterministically in ``seed``.
    """
    data = np.asarray(data, dtype=np.float32)
    if data.ndim != 2 or len(data) == 0:
        raise IndexError_("training data must be a non-empty (N, dim) array")
    if n_lists <= 0 or n_lists > len(data):
        raise IndexError_(f"n_lists={n_lists} invalid for {len(data)} vectors")
    if iterations <= 0:
        raise IndexError_("iterations must be positive")
    rng = np.random.default_rng(seed)
    centroids = data[rng.choice(len(data), size=n_lists, replace=False)].astype(
        np.float64
    )
    for _ in range(iterations):
        assignments = assign_canonical(data, centroids)
        for j in range(n_lists):
            members = data[assignments == j]
            if len(members):
                centroids[j] = members.astype(np.float64).mean(axis=0)
            else:
                biggest = int(
                    np.bincount(assignments, minlength=n_lists).argmax()
                )
                pool = np.flatnonzero(assignments == biggest)
                centroids[j] = data[pool[int(rng.integers(0, len(pool)))]]
    centroids32 = centroids.astype(np.float32)
    return centroids32, assign_canonical(data, centroids32)
