"""Inverted lists and their post-build flash layout.

An IVF build clusters the indexed rows and rewrites them **in list
order** onto flash (priced in :mod:`repro.index.build`), so a probed
list is a *contiguous* run of the database layout.  That contiguity is
what lets the probe drive the existing scan machinery: a list maps to a
range of layout positions, positions map to db page offsets via the
database's packing rule, and the DES scan
(:class:`repro.core.event_query.EventQuerySimulator` with
``page_offsets``) streams exactly those pages.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.ssd.ftl import DatabaseMetadata


class InvertedLists:
    """Feature ids grouped by centroid assignment.

    Each list holds its ids **ascending** (ascending id = storage order,
    which keeps the probe's chunked scan bit-compatible with the
    exhaustive scan when every list is probed).
    """

    def __init__(self, ids: np.ndarray, assignments: np.ndarray, n_lists: int):
        ids = np.asarray(ids, dtype=np.int64)
        assignments = np.asarray(assignments, dtype=np.int64)
        if ids.shape != assignments.shape:
            raise ValueError("ids and assignments must align")
        if n_lists <= 0:
            raise ValueError("n_lists must be positive")
        self._lists: List[np.ndarray] = [
            np.sort(ids[assignments == j]) for j in range(n_lists)
        ]
        sizes = np.asarray([len(lst) for lst in self._lists], dtype=np.int64)
        #: layout position where each list starts after the build's
        #: list-ordered rewrite (cumulative sizes)
        self.layout_offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(sizes)]
        )

    # ------------------------------------------------------------------
    @property
    def n_lists(self) -> int:
        return len(self._lists)

    @property
    def sizes(self) -> List[int]:
        return [len(lst) for lst in self._lists]

    @property
    def indexed_count(self) -> int:
        return int(self.layout_offsets[-1])

    def list_ids(self, list_id: int) -> np.ndarray:
        """The feature ids posted to one list, in ascending id order."""
        return self._lists[list_id]

    # ------------------------------------------------------------------
    def probed_ids(self, list_ids: Sequence[int]) -> np.ndarray:
        """Ascending union of the probed lists' feature ids."""
        parts = [self._lists[int(j)] for j in list_ids]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(parts))

    def probed_positions(self, list_ids: Sequence[int]) -> np.ndarray:
        """Ascending layout positions covered by the probed lists."""
        parts = [
            np.arange(
                self.layout_offsets[int(j)],
                self.layout_offsets[int(j) + 1],
                dtype=np.int64,
            )
            for j in list_ids
        ]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(parts))

    def probed_page_offsets(
        self, list_ids: Sequence[int], meta: DatabaseMetadata
    ) -> List[int]:
        """Sorted db page offsets the probe touches in the built layout.

        Uses the database's own packing rule: page-aligned features span
        ``pages_per_feature`` whole pages each; sub-page features pack
        ``features_per_page`` to a page.
        """
        positions = self.probed_positions(list_ids)
        if len(positions) == 0:
            return []
        if meta.page_aligned:
            ppf = meta.pages_per_feature
            offsets = (
                positions[:, None] * ppf + np.arange(ppf, dtype=np.int64)
            ).reshape(-1)
        else:
            offsets = np.unique(positions // meta.features_per_page)
        offsets = offsets[offsets < meta.total_pages]
        return [int(o) for o in np.unique(offsets)]
