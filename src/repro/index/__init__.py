"""ANN index layer: IVF routing on the accelerator hierarchy.

Every query the reproduction runs today scans the full database — the
clustered layout (:mod:`repro.core.reorganize`) changes *where* rows
live, not *how many* are touched.  This package adds the missing layer:
a real **inverted-file (IVF) index** whose probe is executed against
the in-storage accelerator hierarchy:

* :mod:`repro.index.kmeans` — deterministic k-means training with the
  canonical ``(-score, id)`` assignment tie-break;
* :mod:`repro.index.lists` — the inverted lists and their post-build
  contiguous flash layout (page offsets per probed list);
* :mod:`repro.index.router` — centroid routing scored **by the SCN
  itself** (the SCN is non-metric, so geometric nearest-centroid would
  be uncorrelated with the real ranking), priced as an SSD-level scan
  over the centroid table;
* :mod:`repro.index.build` — index construction priced through the real
  page-mapped FTL write path, with a region-sizing audit so scaled
  builds cannot exhaust logical flash space;
* :mod:`repro.index.device` — :class:`IndexedDevice`, a drop-in
  :class:`~repro.ingest.device.LifecycleDevice` whose ``index_mode=off``
  path is bit-identical to the exhaustive scan;
* :mod:`repro.index.sweep` — recall-vs-latency Pareto curves per
  accelerator level (``nprobe`` sweep), validated on the DES timeline;
* :mod:`repro.index.scorecard` — the perf-gate index leg.
"""

from repro.index.build import (
    IndexBuildConfig,
    IndexBuildReport,
    IvfIndex,
    build_ivf_index,
    region_blocks_for,
)
from repro.index.device import IndexedDevice
from repro.index.kmeans import assign_canonical, centroid_scores, train_kmeans
from repro.index.lists import InvertedLists
from repro.index.router import CentroidRouter, RoutingDecision
from repro.index.scorecard import build_index_scorecard
from repro.index.sweep import ParetoPoint, des_validation, sweep_pareto

__all__ = [
    "CentroidRouter",
    "IndexBuildConfig",
    "IndexBuildReport",
    "IndexedDevice",
    "InvertedLists",
    "IvfIndex",
    "ParetoPoint",
    "RoutingDecision",
    "assign_canonical",
    "build_index_scorecard",
    "build_ivf_index",
    "centroid_scores",
    "des_validation",
    "region_blocks_for",
    "sweep_pareto",
    "train_kmeans",
]
