"""Recall-vs-latency Pareto sweeps across the accelerator hierarchy.

For each accelerator level, :func:`sweep_pareto` measures the routed
probe at every ``nprobe`` against that level's exhaustive scan —
recall@K of the ids the probe returns, modelled seconds (routing
included), and the speedup the probe buys.  :func:`des_validation`
re-measures the channel-level point on the event-driven timeline:
the same probe expressed as ``page_offsets`` handed to
:class:`repro.core.event_query.EventQuerySimulator`, so the claimed
speedup survives queueing, bus contention, and cross-channel skew.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.event_query import EventQuerySimulator
from repro.index.device import IndexedDevice
from repro.ssd.ftl import DatabaseMetadata
from repro.workloads.apps import AppSpec


@dataclass(frozen=True)
class ParetoPoint:
    """One (level, nprobe) point of the recall/latency frontier."""

    level: str
    nprobe: int
    recall_at_k: float
    seconds: float
    routing_seconds: float
    probed_rows: float
    #: exhaustive-scan seconds at the same level / ivf seconds
    speedup: float


@dataclass(frozen=True)
class DesValidation:
    """Channel-level DES measurement of one routed probe."""

    nprobe: int
    full_seconds: float
    probed_seconds: float
    full_pages: int
    probed_pages: int

    @property
    def speedup(self) -> float:
        return self.full_seconds / self.probed_seconds


def _exhaustive(
    device: IndexedDevice,
    qfv: np.ndarray,
    k: int,
    model_id: int,
    db_id: int,
    level: str,
):
    """One query down the inherited exhaustive path (index off)."""
    prev = device.index_mode
    device.index_mode = "off"
    try:
        handle = device.query(qfv, k, model_id, db_id, accel_level=level)
    finally:
        device.index_mode = prev
    return device.get_results(handle)


def sweep_pareto(
    device: IndexedDevice,
    db_id: int,
    model_id: int,
    queries: Sequence[np.ndarray],
    k: int = 10,
    nprobes: Sequence[int] = (1, 2, 4, 8),
    levels: Sequence[str] = ("ssd", "channel", "chip"),
) -> List[ParetoPoint]:
    """The full frontier: every (level, nprobe) averaged over queries."""
    points: List[ParetoPoint] = []
    for level in levels:
        exact = [
            _exhaustive(device, qfv, k, model_id, db_id, level)
            for qfv in queries
        ]
        exact_ids = [set(r.feature_ids.tolist()) for r in exact]
        exact_seconds = float(np.mean([r.seconds for r in exact]))
        for nprobe in nprobes:
            recalls, seconds, routing, probed = [], [], [], []
            for qfv, truth in zip(queries, exact_ids):
                res = device.get_results(
                    device.query(
                        qfv, k, model_id, db_id,
                        accel_level=level, nprobe=nprobe,
                    )
                )
                recalls.append(
                    len(set(res.feature_ids.tolist()) & truth) / len(truth)
                )
                seconds.append(res.seconds)
                routing.append(res.routing_seconds)
                probed.append(res.probed_rows)
            mean_seconds = float(np.mean(seconds))
            points.append(
                ParetoPoint(
                    level=level,
                    nprobe=int(nprobe),
                    recall_at_k=float(np.mean(recalls)),
                    seconds=mean_seconds,
                    routing_seconds=float(np.mean(routing)),
                    probed_rows=float(np.mean(probed)),
                    speedup=exact_seconds / mean_seconds,
                )
            )
    return points


def des_validation(
    device: IndexedDevice,
    db_id: int,
    app: AppSpec,
    qfv: np.ndarray,
    model_id: int,
    nprobe: int,
    meta: Optional[DatabaseMetadata] = None,
) -> DesValidation:
    """Replay one routed probe on the event-driven channel timeline.

    Routes exactly as the query path does, converts the probed lists to
    db page offsets of the built layout, and runs the whole-device DES
    twice: full scan vs probed pages.  The event-time ratio is the
    speedup claim the acceptance gate checks.
    """
    index = device.index_for(db_id)
    meta = meta if meta is not None else device.ssd.ftl.get(db_id)
    graph = device._models[model_id]
    from repro.index.router import CentroidRouter

    router = CentroidRouter(
        index.centroids, device._system("ssd"), graph,
        feature_bytes=meta.feature_bytes, page_bytes=meta.page_bytes,
    )
    decision = router.route(qfv, nprobe, device._score_features)
    offsets = index.lists.probed_page_offsets(decision.list_ids, meta)
    sim = EventQuerySimulator(device.ssd.config)
    full = sim.run(app, meta, graph=graph)
    probed = sim.run(app, meta, graph=graph, page_offsets=offsets)
    return DesValidation(
        nprobe=int(decision.nprobe),
        full_seconds=full.total_seconds,
        probed_seconds=probed.total_seconds,
        full_pages=full.pages,
        probed_pages=probed.pages,
    )
