"""The index leg of the CI perf gate.

:func:`build_index_scorecard` builds one IVF index over a clustered
TextQA workload, sweeps the full (level × nprobe) Pareto frontier, and
replays the operating point — the smallest ``nprobe`` whose recall@K
clears the gate threshold — on the DES timeline.  Everything is
deterministic in the seed, so the emitted card is bit-stable and
``benchmarks/perf_gate.py`` can diff it against the committed baseline
with the standard ±tolerance rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.index.device import IndexedDevice
from repro.index.sweep import des_validation, sweep_pareto
from repro.workloads import (
    FeatureDatasetSpec,
    get_app,
    make_clustered_features,
    plant_neighbors,
    train_scn,
)

#: recall@K the operating point must clear (the acceptance gate)
RECALL_GATE = 0.95


@dataclass(frozen=True)
class IndexGateConfig:
    """The gate workload: small enough for CI, clustered enough that
    routing has real structure to exploit."""

    app: str = "textqa"
    n_features: int = 65536
    n_intents: int = 32
    n_lists: int = 32
    nprobes: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)
    levels: Tuple[str, ...] = ("ssd", "channel", "chip")
    k: int = 10
    n_queries: int = 4
    #: planted close neighbors per query (> k so the exhaustive top-K
    #: is dominated by rows that cluster together)
    planted: int = 16
    iterations: int = 6
    seed: int = 7


GATE_CONFIG = IndexGateConfig()


def make_index_workload(
    config: IndexGateConfig = GATE_CONFIG,
) -> Tuple[np.ndarray, list]:
    """Clustered features plus queries anchored at intent centers.

    Each query is a perturbed empirical cluster center with ``planted``
    tight neighbors planted around it — so the exhaustive top-K
    concentrates in one k-means list and routing has a right answer.
    """
    app = get_app(config.app)
    rng = np.random.default_rng(config.seed)
    spec = FeatureDatasetSpec(
        n_features=config.n_features,
        dim=app.feature_floats,
        n_intents=config.n_intents,
        seed=config.seed,
    )
    features, labels = make_clustered_features(spec)
    queries = []
    for q in range(config.n_queries):
        label = q % config.n_intents
        center = features[labels == label].mean(axis=0)
        anchor = (center + rng.normal(0, 0.05, center.shape)).astype(np.float32)
        features, _ = plant_neighbors(
            features, anchor, k=config.planted, noise=0.05,
            seed=config.seed + 1 + q,
        )
        queries.append(anchor)
    return features, queries


def build_index_scorecard(
    config: Optional[IndexGateConfig] = None,
) -> Dict[str, object]:
    """Build, sweep, and DES-validate; emit the perf-gate leg."""
    config = config or GATE_CONFIG
    app = get_app(config.app)
    graph = train_scn(app, seed=0)
    features, queries = make_index_workload(config)

    device = IndexedDevice(level="channel")
    db = device.write_db(features)
    model = device.load_graph(graph)
    index = device.build_index(
        db, model, config.n_lists,
        iterations=config.iterations, seed=config.seed,
    )

    points = sweep_pareto(
        device, db, model, queries,
        k=config.k, nprobes=config.nprobes, levels=config.levels,
    )
    pareto: Dict[str, Dict[str, Dict[str, float]]] = {}
    for p in points:
        pareto.setdefault(p.level, {})[f"nprobe={p.nprobe}"] = {
            "recall_at_k": p.recall_at_k,
            "seconds": p.seconds,
            "routing_seconds": p.routing_seconds,
            "probed_rows": p.probed_rows,
            "speedup": p.speedup,
        }

    # operating point: smallest nprobe clearing the recall gate at the
    # device's own (channel) level
    channel_points = [p for p in points if p.level == "channel"]
    operating = None
    for p in sorted(channel_points, key=lambda p: p.nprobe):
        if p.recall_at_k >= RECALL_GATE:
            operating = p
            break
    if operating is None:  # pragma: no cover - workload regression guard
        operating = max(channel_points, key=lambda p: p.recall_at_k)

    des = des_validation(
        device, db, app, queries[0], model, nprobe=operating.nprobe
    )

    return {
        "build": {
            "train_seconds": index.report.train_seconds,
            "layout_write_seconds": index.report.layout_write_seconds,
            "total_seconds": index.report.total_seconds,
            "write_amplification": index.report.write_amplification,
            "region_blocks": index.report.region_blocks,
            "rows": index.report.rows,
            "list_size_max": max(index.lists.sizes),
            "list_size_min": min(index.lists.sizes),
        },
        "pareto": pareto,
        "operating_point": {
            "level": operating.level,
            "nprobe": operating.nprobe,
            "recall_at_k": operating.recall_at_k,
            "speedup": operating.speedup,
        },
        "des": {
            "nprobe": des.nprobe,
            "full_seconds": des.full_seconds,
            "probed_seconds": des.probed_seconds,
            "full_pages": des.full_pages,
            "probed_pages": des.probed_pages,
            "event_speedup": des.speedup,
        },
        "meta": {
            "app": config.app,
            "n_features": config.n_features,
            "n_lists": config.n_lists,
            "k": config.k,
            "queries": config.n_queries,
            "seed": config.seed,
        },
    }
