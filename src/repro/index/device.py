"""``IndexedDevice``: a drop-in query backend with IVF routing.

Subclasses :class:`repro.ingest.device.LifecycleDevice`, so one device
speaks every layer: static queries, live mutation, and now routed
probes.  The contract that keeps the base reproduction honest:

* ``index_mode="off"`` (or no index built) delegates **every** query to
  the inherited path — byte-identical results, latencies, and cache
  behaviour; the index layer costs nothing until it is switched on.
* At ``nprobe == n_lists`` the probe degenerates to the exhaustive
  scan: routing is skipped (0.0 s), the probed ids are exactly
  ``arange(db_start, db_end)``, and the functional scan mirrors
  :meth:`~repro.core.api.DeepStoreDevice._scan` operation for
  operation — so ids, scores, *and* seconds are bit-identical
  (the differential oracle pins this down per accelerator level).
* Mutations degrade recall honestly: rows inserted after the build are
  the **unindexed delta**; ``include_delta=True`` (default) scans them
  alongside the probed lists (buying recall back at delta-scan cost),
  tombstoned rows stay in the lists — and keep costing flash reads —
  until :meth:`compact_db` reclaims them and triggers a re-index.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.core.api import DeepStoreApiError, QueryHandle
from repro.index.build import IndexBuildConfig, IvfIndex, build_ivf_index
from repro.index.router import CentroidRouter
from repro.ingest.device import DeviceCompaction, LifecycleDevice


class IndexedDevice(LifecycleDevice):
    """``LifecycleDevice`` + IVF probe routing, one subclass."""

    def __init__(self, *args, index_mode: str = "ivf", **kwargs):
        if index_mode not in ("ivf", "off"):
            raise DeepStoreApiError(
                f"unknown index_mode {index_mode!r}; choose 'ivf' or 'off'"
            )
        super().__init__(*args, **kwargs)
        self.index_mode = index_mode
        self._indexes: Dict[int, IvfIndex] = {}
        self._index_models: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # build / inspect
    # ------------------------------------------------------------------
    def build_index(
        self,
        db_id: int,
        model_id: int,
        n_lists: int,
        iterations: int = 8,
        seed: int = 0,
        config: Optional[IndexBuildConfig] = None,
    ) -> IvfIndex:
        """Train + lay out an IVF index over the database's visible rows."""
        graph = self._models.get(model_id)
        if graph is None:
            raise DeepStoreApiError(f"unknown model id {model_id}")
        store = self._store(db_id)
        meta = self.ssd.ftl.get(db_id)
        state = self._lifecycles.get(db_id)
        if state is not None:
            snap = state.store.snapshot()
            ids = np.asarray(state.store.visible_ids(snap), dtype=np.int64)
            boundary = snap.n_rows
        else:
            ids = np.arange(len(store), dtype=np.int64)
            boundary = len(store)
        if len(ids) == 0:
            raise DeepStoreApiError(f"database {db_id} has no visible rows")
        cfg = config or IndexBuildConfig(
            n_lists=n_lists, iterations=iterations, seed=seed
        )
        index = build_ivf_index(
            self.ssd,
            self._system("ssd"),
            graph,
            store[ids],
            ids,
            meta,
            cfg,
            boundary=boundary,
            epoch=self._db_epochs.get(db_id, 0),
        )
        self._indexes[db_id] = index
        self._index_models[db_id] = model_id
        if state is not None:
            state.write_seconds += index.report.total_seconds
        self.metrics.counter("index.builds").inc()
        return index

    def index_for(self, db_id: int) -> IvfIndex:
        """The database's built index, or raise if none exists."""
        index = self._indexes.get(db_id)
        if index is None:
            raise DeepStoreApiError(
                f"database {db_id} has no index (call build_index)"
            )
        return index

    def indexed(self, db_id: int) -> bool:
        """Whether the database has a built index."""
        return db_id in self._indexes

    def delta_rows(self, db_id: int) -> int:
        """Visible rows the index does not cover (the unindexed delta)."""
        index = self.index_for(db_id)
        state = self._lifecycles.get(db_id)
        if state is None:
            return max(0, len(self._store(db_id)) - index.boundary)
        snap = state.store.snapshot()
        visible = state.store.visible_ids(snap)
        return int(np.count_nonzero(visible >= index.boundary))

    # ------------------------------------------------------------------
    # query (routed path)
    # ------------------------------------------------------------------
    def query(
        self,
        qfv: np.ndarray,
        k: int,
        model_id: int,
        db_id: int,
        db_start: int = 0,
        db_end: Optional[int] = None,
        accel_level: Optional[str] = None,
        nprobe: Optional[int] = None,
        include_delta: bool = True,
    ) -> QueryHandle:
        if self.index_mode != "ivf" or db_id not in self._indexes:
            # zero-index parity: the inherited path, byte for byte
            return super().query(
                qfv, k, model_id, db_id, db_start, db_end, accel_level
            )
        return self._query_indexed(
            qfv, k, model_id, db_id, db_start, db_end, accel_level,
            nprobe, include_delta,
        )

    def _query_indexed(
        self,
        qfv: np.ndarray,
        k: int,
        model_id: int,
        db_id: int,
        db_start: int,
        db_end: Optional[int],
        accel_level: Optional[str],
        nprobe: Optional[int],
        include_delta: bool,
    ) -> QueryHandle:
        if k <= 0:
            raise DeepStoreApiError("K must be positive")
        graph = self._models.get(model_id)
        if graph is None:
            raise DeepStoreApiError(f"unknown model id {model_id}")
        store = self._store(db_id)
        meta = self.ssd.ftl.get(db_id)
        db_end = len(store) if db_end is None else db_end
        if not 0 <= db_start < db_end <= len(store):
            raise DeepStoreApiError(f"bad db range [{db_start}, {db_end})")
        level = accel_level or self.level
        system = self._system(level)
        if not system.supports(graph):
            raise DeepStoreApiError(
                f"model {graph.name!r} is not supported at the {level} level"
            )
        qfv = np.asarray(qfv, dtype=np.float32).reshape(-1)
        if qfv.size * 4 != meta.feature_bytes:
            raise DeepStoreApiError(
                f"QFV size {qfv.size * 4} bytes does not match database "
                f"feature size {meta.feature_bytes}"
            )

        index = self._indexes[db_id]
        if nprobe is None:
            nprobe = max(1, index.n_lists // 4)

        cache_hit = False
        cache_tag = (db_id, self._db_epochs.get(db_id, 0))
        if self._cache is not None:
            lookup = self._cache.lookup(qfv, tag=cache_tag)
            if lookup.hit and lookup.entry is not None:
                candidates = lookup.entry.topk_feature_ids
                scores = self._score_features(graph, qfv, store[candidates])
                order = np.argsort(-scores)[:k]
                result = self._build_result(
                    meta, candidates[order], scores[order],
                    self._hit_latency(graph, meta, lookup.entries_scanned, k),
                    cache_hit=True,
                )
                return self._register(result)

        # route at SSD level, then scan the probed lists (+ delta)
        router = CentroidRouter(
            index.centroids, self._system("ssd"), graph,
            feature_bytes=meta.feature_bytes, page_bytes=meta.page_bytes,
        )
        decision = router.route(qfv, nprobe, self._score_features)
        probed = index.lists.probed_ids(decision.list_ids)
        probed = probed[(probed >= db_start) & (probed < db_end)]

        state = self._lifecycles.get(db_id)
        mutated = state is not None and state.store.epoch > 0
        # probed rows cost flash reads whether alive or tombstoned —
        # dead rows keep their list slots until compaction re-indexes
        scanned_cost = len(probed)
        if mutated:
            snap = state.store.snapshot()
            visible = state.store.visible_ids(snap)
            probed = probed[np.isin(probed, visible)]
            if include_delta:
                delta = visible[visible >= index.boundary]
                delta = delta[(delta >= db_start) & (delta < db_end)]
                probed = np.concatenate([probed, delta])
                scanned_cost += len(delta)
        if len(probed) == 0:
            raise DeepStoreApiError(
                f"probe returned no candidates in range [{db_start}, {db_end})"
            )
        ids, scores = self._scan_ids(graph, qfv, store, probed, k)

        sliced = self._sliced_meta(meta, max(1, scanned_cost))
        if self._failed_accels:
            count = system.placement.count(system.ssd)
            bad = {i for i in self._failed_accels if i < count}
            if len(bad) >= count:
                raise DeepStoreApiError(
                    "all accelerators failed; no degraded mode possible"
                )
            latency = system.degraded_latency_for(
                graph,
                sliced,
                feature_bytes=meta.feature_bytes,
                failed_accels=bad,
                name=graph.name,
            ).degraded
        else:
            latency = system.latency_for(
                graph, sliced, feature_bytes=meta.feature_bytes, name=graph.name
            )
        if mutated:
            latency = self._interfered(latency)
        if decision.routing_seconds > 0.0:
            latency = dataclasses.replace(
                latency,
                engine_seconds=latency.engine_seconds + decision.routing_seconds,
            )
        if self._cache is not None:
            self._cache.insert(qfv, scores, ids, tag=cache_tag)
            lookup_cost = len(self._cache) * self._cache_lookup_seconds_per_entry
            latency = dataclasses.replace(
                latency, engine_seconds=latency.engine_seconds + lookup_cost
            )
        result = self._build_result(meta, ids, scores, latency, cache_hit)
        result = dataclasses.replace(
            result,
            routing_seconds=decision.routing_seconds,
            probed_rows=int(scanned_cost),
            nprobe=decision.nprobe,
        )
        self.metrics.counter("index.queries").inc()
        return self._register(result)

    # ------------------------------------------------------------------
    # compaction-triggered re-indexing
    # ------------------------------------------------------------------
    def compact_db(self, db_id: int) -> DeviceCompaction:
        """Compact, then rebuild the index over the surviving rows."""
        outcome = super().compact_db(db_id)
        if self.index_mode != "ivf" or db_id not in self._indexes:
            return outcome
        old = self._indexes[db_id]
        rebuilt = self.build_index(
            db_id,
            self._index_models[db_id],
            old.config.n_lists,
            iterations=old.config.iterations,
            seed=old.config.seed,
            config=old.config,
        )
        self.metrics.counter("index.reindexes").inc()
        return DeviceCompaction(
            seconds=outcome.seconds + rebuilt.report.total_seconds,
            reclaimed_rows=outcome.reclaimed_rows,
            rewritten_rows=outcome.rewritten_rows,
            write_amplification=outcome.write_amplification,
        )
