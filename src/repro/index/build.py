"""IVF index construction, priced through the real FTL write path.

Building an index is not free: training reads the whole database once
per k-means iteration (SSD-level accelerator scans), and laying the
rows out in list order rewrites them through
:class:`repro.ingest.writepath.IngestWritePath` — so the build's write
amplification and GC work come from the page-mapped FTL's own counters,
exactly like live ingest.  The layout region is sized by
:func:`repro.ingest.writepath.region_blocks_for`, so a build at
``--bench-scale 10`` grows its region instead of exhausting logical
flash space (the same class of bug the scaled ingest benchmark hit).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.deepstore import DeepStoreSystem
from repro.index.kmeans import train_kmeans
from repro.index.lists import InvertedLists
from repro.ingest.writepath import IngestWritePath, region_blocks_for
from repro.nn.graph import Graph
from repro.ssd.ftl import DatabaseMetadata
from repro.ssd.ssd import Ssd


@dataclass(frozen=True)
class IndexBuildConfig:
    """Build-time knobs for one IVF index."""

    n_lists: int
    iterations: int = 8
    seed: int = 0
    op_fraction: float = 0.07
    region_pages_per_block: int = 64
    #: layout-region slack multiplier handed to ``region_blocks_for``
    headroom: float = 2.0


@dataclass(frozen=True)
class IndexBuildReport:
    """Measured cost of one index build."""

    #: k-means training: ``iterations`` SSD-level scans of the rows
    train_seconds: float
    #: list-ordered rewrite through the page-mapped FTL (host + GC)
    layout_write_seconds: float
    write_amplification: float
    region_blocks: int
    rows: int
    n_lists: int

    @property
    def total_seconds(self) -> float:
        return self.train_seconds + self.layout_write_seconds


@dataclass
class IvfIndex:
    """A built IVF index over one database snapshot."""

    centroids: np.ndarray
    lists: InvertedLists
    #: feature ids strictly below this were visible at build time; rows
    #: at or above it are the unindexed delta
    boundary: int
    #: device epoch the build observed (staleness bookkeeping)
    epoch: int
    report: IndexBuildReport
    config: IndexBuildConfig
    #: ids actually indexed (visible at the build snapshot)
    indexed_ids: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))

    @property
    def n_lists(self) -> int:
        return len(self.centroids)


def build_ivf_index(
    ssd: Ssd,
    system: DeepStoreSystem,
    graph: Graph,
    features: np.ndarray,
    ids: np.ndarray,
    meta: DatabaseMetadata,
    config: IndexBuildConfig,
    boundary: int,
    epoch: int = 0,
) -> IvfIndex:
    """Train, lay out, and price one IVF index over ``(ids, features)``."""
    ids = np.asarray(ids, dtype=np.int64)
    features = np.asarray(features, dtype=np.float32)
    if len(ids) != len(features):
        raise ValueError("ids and features must align")
    centroids, assignments = train_kmeans(
        features, config.n_lists, iterations=config.iterations, seed=config.seed
    )
    lists = InvertedLists(ids, assignments, config.n_lists)

    # training cost: each Lloyd iteration streams every indexed row
    # through the SSD-level accelerator once
    train_meta = DatabaseMetadata(
        db_id=meta.db_id,
        feature_bytes=meta.feature_bytes,
        feature_count=max(1, len(ids)),
        page_bytes=meta.page_bytes,
    )
    train_meta.extents = []
    train_seconds = config.iterations * system.latency_for(
        graph, train_meta, feature_bytes=meta.feature_bytes, name=graph.name
    ).total_seconds

    # layout cost: rewrite the rows in (list, id) order through a fresh,
    # audited ingest region — measured WA, not assumed
    region_blocks = region_blocks_for(
        rows=len(ids),
        feature_bytes=meta.feature_bytes,
        page_bytes=ssd.config.geometry.page_bytes,
        pages_per_block=config.region_pages_per_block,
        op_fraction=config.op_fraction,
        headroom=config.headroom,
    )
    writepath = IngestWritePath(
        ssd,
        meta.feature_bytes,
        op_fraction=config.op_fraction,
        blocks=region_blocks,
        pages_per_block=config.region_pages_per_block,
    )
    layout_order = np.concatenate(
        [lists.list_ids(j) for j in range(config.n_lists)]
    )
    op = writepath.append(layout_order.tolist())

    report = IndexBuildReport(
        train_seconds=train_seconds,
        layout_write_seconds=op.seconds,
        write_amplification=writepath.write_amplification,
        region_blocks=region_blocks,
        rows=len(ids),
        n_lists=config.n_lists,
    )
    return IvfIndex(
        centroids=centroids,
        lists=lists,
        boundary=int(boundary),
        epoch=int(epoch),
        report=report,
        config=config,
        indexed_ids=ids,
    )
