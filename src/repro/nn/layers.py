"""Operator definitions for the NN IR.

Every op is a stateless descriptor: it knows its output shape, its
per-sample FLOP and MAC counts, its parameter tensors, and how to run
forward/backward in numpy.  Parameter values live in the owning
:class:`repro.nn.graph.Graph`, keyed by node id, so a single op instance
can be reused.

Accounting conventions (used consistently by Table-1 calibration, the
systolic model, and the energy model):

* shapes exclude the batch dimension; images are ``(C, H, W)``;
* one multiply-accumulate (MAC) counts as **2 FLOPs**, matching how the
  paper's Table 1 reports FLOPs for its fully-connected models
  (``FLOPs = 2 x weights`` for MIR/ESTP/TextQA);
* element-wise ops count 1 FLOP per output element.
"""

from __future__ import annotations

import abc
import math
from typing import Dict, Sequence, Tuple

import numpy as np

Shape = Tuple[int, ...]
Params = Dict[str, np.ndarray]

_EW_KINDS = ("add", "sub", "mul", "absdiff")
_ACT_KINDS = ("relu", "sigmoid", "tanh", "identity")


def _as_f32(x: np.ndarray) -> np.ndarray:
    return np.asarray(x, dtype=np.float32)


class Op(abc.ABC):
    """Base class for IR operators."""

    #: number of graph inputs the op consumes
    arity: int = 1

    @abc.abstractmethod
    def output_shape(self, *in_shapes: Shape) -> Shape:
        """Per-sample output shape given per-sample input shapes."""

    @abc.abstractmethod
    def forward(self, params: Params, *inputs: np.ndarray) -> np.ndarray:
        """Run the op on batched inputs ``(batch, *shape)``."""

    def backward(
        self,
        params: Params,
        inputs: Sequence[np.ndarray],
        output: np.ndarray,
        grad_out: np.ndarray,
    ) -> Tuple[Params, Tuple[np.ndarray, ...]]:
        """Return (parameter gradients, input gradients)."""
        raise NotImplementedError(f"{type(self).__name__} has no backward")

    def flops(self, *in_shapes: Shape) -> int:
        """Per-sample FLOPs (MAC = 2 FLOPs)."""
        return 0

    def macs(self, *in_shapes: Shape) -> int:
        """Per-sample multiply-accumulates (for systolic mapping)."""
        return 0

    def weight_params(self) -> int:
        """Number of trainable scalars."""
        return 0

    def weight_bytes(self, dtype_bytes: int = 4) -> int:
        """Parameter bytes at the given scalar width."""
        return self.weight_params() * dtype_bytes

    def init_params(self, rng: np.random.Generator) -> Params:
        """Freshly initialized parameter tensors (may be empty)."""
        return {}

    def config(self) -> dict:
        """JSON-serializable constructor arguments (for onnx_lite)."""
        return {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        args = ", ".join(f"{k}={v}" for k, v in self.config().items())
        return f"{type(self).__name__}({args})"


class Input(Op):
    """Graph input placeholder with a fixed per-sample shape."""

    arity = 0

    def __init__(self, shape: Sequence[int]):
        self.shape = tuple(int(s) for s in shape)
        if not self.shape or any(s <= 0 for s in self.shape):
            raise ValueError(f"invalid input shape {shape}")

    def output_shape(self, *in_shapes: Shape) -> Shape:
        return self.shape

    def forward(self, params: Params, *inputs: np.ndarray) -> np.ndarray:
        raise RuntimeError("Input nodes are fed, not executed")

    def config(self) -> dict:
        return {"shape": list(self.shape)}

    @property
    def size(self) -> int:
        return int(np.prod(self.shape))


class Dense(Op):
    """Fully connected layer ``y = x @ W + b`` over flattened input."""

    arity = 1

    def __init__(self, in_features: int, out_features: int, bias: bool = True):
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Dense dimensions must be positive")
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.bias = bool(bias)

    def output_shape(self, *in_shapes: Shape) -> Shape:
        (shape,) = in_shapes
        if int(np.prod(shape)) != self.in_features:
            raise ValueError(
                f"Dense expects {self.in_features} features, got shape {shape}"
            )
        return (self.out_features,)

    def flops(self, *in_shapes: Shape) -> int:
        return 2 * self.in_features * self.out_features

    def macs(self, *in_shapes: Shape) -> int:
        return self.in_features * self.out_features

    def weight_params(self) -> int:
        return self.in_features * self.out_features + (
            self.out_features if self.bias else 0
        )

    def init_params(self, rng: np.random.Generator) -> Params:
        scale = math.sqrt(2.0 / self.in_features)
        params = {
            "W": _as_f32(rng.normal(0.0, scale, (self.in_features, self.out_features)))
        }
        if self.bias:
            params["b"] = np.zeros(self.out_features, dtype=np.float32)
        return params

    def forward(self, params: Params, *inputs: np.ndarray) -> np.ndarray:
        (x,) = inputs
        x2 = x.reshape(x.shape[0], -1)
        y = x2 @ params["W"]
        if self.bias:
            y = y + params["b"]
        return y

    def backward(self, params, inputs, output, grad_out):
        (x,) = inputs
        x2 = x.reshape(x.shape[0], -1)
        grads: Params = {"W": x2.T @ grad_out}
        if self.bias:
            grads["b"] = grad_out.sum(axis=0)
        grad_x = (grad_out @ params["W"].T).reshape(x.shape)
        return grads, (grad_x,)

    def config(self) -> dict:
        return {
            "in_features": self.in_features,
            "out_features": self.out_features,
            "bias": self.bias,
        }


def _conv_out_dim(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError("convolution output dimension is non-positive")
    return out


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: int) -> np.ndarray:
    """Lower (N,C,H,W) to (N, out_h*out_w, C*kh*kw) patches."""
    n, c, h, w = x.shape
    out_h = _conv_out_dim(h, kh, stride, padding)
    out_w = _conv_out_dim(w, kw, stride, padding)
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    strides = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    # (N, out_h, out_w, C, kh, kw) -> (N, out_h*out_w, C*kh*kw)
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n, out_h * out_w, c * kh * kw)
    return np.ascontiguousarray(cols)


class Conv2D(Op):
    """2-D convolution over ``(C, H, W)`` inputs (im2col + GEMM)."""

    arity = 1

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
    ):
        if min(in_channels, out_channels, kernel, stride) <= 0 or padding < 0:
            raise ValueError("invalid Conv2D configuration")
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel = int(kernel)
        self.stride = int(stride)
        self.padding = int(padding)
        self.bias = bool(bias)

    def output_shape(self, *in_shapes: Shape) -> Shape:
        (shape,) = in_shapes
        if len(shape) != 3 or shape[0] != self.in_channels:
            raise ValueError(f"Conv2D expects (C={self.in_channels},H,W), got {shape}")
        _, h, w = shape
        out_h = _conv_out_dim(h, self.kernel, self.stride, self.padding)
        out_w = _conv_out_dim(w, self.kernel, self.stride, self.padding)
        return (self.out_channels, out_h, out_w)

    def macs(self, *in_shapes: Shape) -> int:
        _, out_h, out_w = self.output_shape(*in_shapes)
        return (
            out_h * out_w * self.out_channels
            * self.in_channels * self.kernel * self.kernel
        )

    def flops(self, *in_shapes: Shape) -> int:
        return 2 * self.macs(*in_shapes)

    def weight_params(self) -> int:
        return (
            self.out_channels * self.in_channels * self.kernel * self.kernel
            + (self.out_channels if self.bias else 0)
        )

    def init_params(self, rng: np.random.Generator) -> Params:
        fan_in = self.in_channels * self.kernel * self.kernel
        scale = math.sqrt(2.0 / fan_in)
        params = {
            "W": _as_f32(
                rng.normal(
                    0.0, scale,
                    (self.out_channels, self.in_channels, self.kernel, self.kernel),
                )
            )
        }
        if self.bias:
            params["b"] = np.zeros(self.out_channels, dtype=np.float32)
        return params

    def forward(self, params: Params, *inputs: np.ndarray) -> np.ndarray:
        (x,) = inputs
        n = x.shape[0]
        out_c, out_h, out_w = self.output_shape(x.shape[1:])
        cols = _im2col(x, self.kernel, self.kernel, self.stride, self.padding)
        w2 = params["W"].reshape(out_c, -1).T  # (C*kh*kw, out_c)
        y = cols @ w2  # (N, out_h*out_w, out_c)
        if self.bias:
            y = y + params["b"]
        return y.transpose(0, 2, 1).reshape(n, out_c, out_h, out_w)

    def backward(self, params, inputs, output, grad_out):
        (x,) = inputs
        n, c, h, w = x.shape
        out_c, out_h, out_w = output.shape[1:]
        k, s, p = self.kernel, self.stride, self.padding
        cols = _im2col(x, k, k, s, p)  # (N, P, CKK)
        g = grad_out.reshape(n, out_c, out_h * out_w).transpose(0, 2, 1)  # (N,P,out_c)
        grad_w = np.einsum("npk,npo->ko", cols, g).T.reshape(params["W"].shape)
        grads: Params = {"W": grad_w}
        if self.bias:
            grads["b"] = g.sum(axis=(0, 1))
        # col2im for the input gradient
        w2 = params["W"].reshape(out_c, -1)  # (out_c, CKK)
        gcols = g @ w2  # (N, P, CKK)
        gcols = gcols.reshape(n, out_h, out_w, c, k, k)
        grad_x = np.zeros((n, c, h + 2 * p, w + 2 * p), dtype=x.dtype)
        for i in range(k):
            for j in range(k):
                grad_x[:, :, i : i + out_h * s : s, j : j + out_w * s : s] += (
                    gcols[:, :, :, :, i, j].transpose(0, 3, 1, 2)
                )
        if p:
            grad_x = grad_x[:, :, p:-p, p:-p]
        return grads, (grad_x,)

    def config(self) -> dict:
        return {
            "in_channels": self.in_channels,
            "out_channels": self.out_channels,
            "kernel": self.kernel,
            "stride": self.stride,
            "padding": self.padding,
            "bias": self.bias,
        }


class Activation(Op):
    """Pointwise nonlinearity."""

    arity = 1

    def __init__(self, kind: str = "relu"):
        if kind not in _ACT_KINDS:
            raise ValueError(f"unknown activation {kind!r}; choose from {_ACT_KINDS}")
        self.kind = kind

    def output_shape(self, *in_shapes: Shape) -> Shape:
        (shape,) = in_shapes
        return shape

    def flops(self, *in_shapes: Shape) -> int:
        (shape,) = in_shapes
        return 0 if self.kind == "identity" else int(np.prod(shape))

    def forward(self, params: Params, *inputs: np.ndarray) -> np.ndarray:
        (x,) = inputs
        if self.kind == "relu":
            return np.maximum(x, 0.0)
        if self.kind == "sigmoid":
            return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        if self.kind == "tanh":
            return np.tanh(x)
        return x

    def backward(self, params, inputs, output, grad_out):
        if self.kind == "relu":
            grad = grad_out * (output > 0)
        elif self.kind == "sigmoid":
            grad = grad_out * output * (1.0 - output)
        elif self.kind == "tanh":
            grad = grad_out * (1.0 - output * output)
        else:
            grad = grad_out
        return {}, (grad,)

    def config(self) -> dict:
        return {"kind": self.kind}


class Elementwise(Op):
    """Binary element-wise op between two same-shaped tensors.

    These are the "element-wise layers" of paper Table 1 (e.g. the
    cross-feature difference in ReId and the gating ops in TIR/TextQA).
    """

    arity = 2

    def __init__(self, kind: str = "absdiff"):
        if kind not in _EW_KINDS:
            raise ValueError(f"unknown elementwise kind {kind!r}")
        self.kind = kind

    def output_shape(self, *in_shapes: Shape) -> Shape:
        a, b = in_shapes
        if a != b:
            raise ValueError(f"elementwise shape mismatch: {a} vs {b}")
        return a

    def flops(self, *in_shapes: Shape) -> int:
        return int(np.prod(in_shapes[0]))

    def forward(self, params: Params, *inputs: np.ndarray) -> np.ndarray:
        a, b = inputs
        if self.kind == "add":
            return a + b
        if self.kind == "sub":
            return a - b
        if self.kind == "mul":
            return a * b
        return np.abs(a - b)

    def backward(self, params, inputs, output, grad_out):
        a, b = inputs
        if self.kind == "add":
            return {}, (grad_out, grad_out)
        if self.kind == "sub":
            return {}, (grad_out, -grad_out)
        if self.kind == "mul":
            return {}, (grad_out * b, grad_out * a)
        sign = np.sign(a - b)
        return {}, (grad_out * sign, -grad_out * sign)

    def config(self) -> dict:
        return {"kind": self.kind}


class Dot(Op):
    """Batched inner product of two flattened inputs -> shape ``(1,)``."""

    arity = 2

    def output_shape(self, *in_shapes: Shape) -> Shape:
        a, b = in_shapes
        if int(np.prod(a)) != int(np.prod(b)):
            raise ValueError(f"dot size mismatch: {a} vs {b}")
        return (1,)

    def flops(self, *in_shapes: Shape) -> int:
        return 2 * int(np.prod(in_shapes[0]))

    def macs(self, *in_shapes: Shape) -> int:
        return int(np.prod(in_shapes[0]))

    def forward(self, params: Params, *inputs: np.ndarray) -> np.ndarray:
        a, b = inputs
        a2 = a.reshape(a.shape[0], -1)
        b2 = b.reshape(b.shape[0], -1)
        return np.sum(a2 * b2, axis=1, keepdims=True)

    def backward(self, params, inputs, output, grad_out):
        a, b = inputs
        a2 = a.reshape(a.shape[0], -1)
        b2 = b.reshape(b.shape[0], -1)
        return {}, (
            (grad_out * b2).reshape(a.shape),
            (grad_out * a2).reshape(b.shape),
        )


class Concat(Op):
    """Concatenate two flattened inputs along the feature axis."""

    arity = 2

    def output_shape(self, *in_shapes: Shape) -> Shape:
        a, b = in_shapes
        return (int(np.prod(a)) + int(np.prod(b)),)

    def forward(self, params: Params, *inputs: np.ndarray) -> np.ndarray:
        a, b = inputs
        return np.concatenate(
            [a.reshape(a.shape[0], -1), b.reshape(b.shape[0], -1)], axis=1
        )

    def backward(self, params, inputs, output, grad_out):
        a, b = inputs
        na = int(np.prod(a.shape[1:]))
        return {}, (
            grad_out[:, :na].reshape(a.shape),
            grad_out[:, na:].reshape(b.shape),
        )


class Flatten(Op):
    """Reshape any input to a flat feature vector."""

    arity = 1

    def output_shape(self, *in_shapes: Shape) -> Shape:
        (shape,) = in_shapes
        return (int(np.prod(shape)),)

    def forward(self, params: Params, *inputs: np.ndarray) -> np.ndarray:
        (x,) = inputs
        return x.reshape(x.shape[0], -1)

    def backward(self, params, inputs, output, grad_out):
        (x,) = inputs
        return {}, (grad_out.reshape(x.shape),)


class ScoreHead(Op):
    """Parameter-free similarity-score head.

    Two-branch SCNs in the source applications end in a 2-logit classifier
    (match / no-match).  This head reduces the final layer to the scalar
    similarity score the query engine sorts on:

    * ``sigmoid_diff`` — ``sigmoid(z[1] - z[0])`` over a 2-logit output,
      equivalent to the softmax match probability;
    * ``sigmoid`` — plain sigmoid over a 1-dim output (e.g. TextQA's
      bilinear ``q^T M d`` score).

    With ``affine=True`` the head applies ``sigmoid(scale * z - shift)``
    with a fixed ``scale`` and a *learnable* ``shift`` — needed when the
    upstream score has no threshold of its own (TextQA's bias-free
    bilinear form centers negatives at z = 0, which a plain sigmoid
    cannot separate).  The scale stays fixed because the upstream weights
    already control magnitude; learning it double-parameterizes the
    logit and destabilizes training.

    It is a *score extraction*, not a network layer: it is excluded from
    Table-1 layer counts and its single calibration scalar is negligible.
    """

    arity = 1

    def __init__(self, kind: str = "sigmoid", affine: bool = False,
                 scale: float = 0.05):
        if kind not in ("sigmoid", "sigmoid_diff"):
            raise ValueError(f"unknown score head {kind!r}")
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.kind = kind
        self.affine = bool(affine)
        self.scale = float(scale)

    def output_shape(self, *in_shapes: Shape) -> Shape:
        (shape,) = in_shapes
        expected = 2 if self.kind == "sigmoid_diff" else 1
        if shape != (expected,):
            raise ValueError(f"{self.kind} score head expects ({expected},), got {shape}")
        return (1,)

    def weight_params(self) -> int:
        return 1 if self.affine else 0

    def init_params(self, rng: np.random.Generator) -> Params:
        if not self.affine:
            return {}
        return {"shift": np.array([0.0], dtype=np.float32)}

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))

    def _logit(self, params: Params, x: np.ndarray) -> np.ndarray:
        z = x[:, 1:2] - x[:, 0:1] if self.kind == "sigmoid_diff" else x
        if self.affine:
            z = self.scale * z - params["shift"]
        return z

    def forward(self, params: Params, *inputs: np.ndarray) -> np.ndarray:
        (x,) = inputs
        return self._sigmoid(self._logit(params, x))

    def backward(self, params, inputs, output, grad_out):
        local = grad_out * output * (1.0 - output)  # dL/dz
        grads: Params = {}
        if self.affine:
            grads["shift"] = np.array([float(-local.sum())], dtype=np.float32)
            local = local * self.scale
        if self.kind == "sigmoid_diff":
            grad = np.concatenate([-local, local], axis=1)
        else:
            grad = local
        return grads, (grad,)

    def config(self) -> dict:
        return {"kind": self.kind, "affine": self.affine, "scale": self.scale}


#: registry used by onnx_lite deserialization
OP_REGISTRY = {
    cls.__name__: cls
    for cls in (
        Input, Dense, Conv2D, Activation, Elementwise, Dot, Concat, Flatten, ScoreHead,
    )
}
