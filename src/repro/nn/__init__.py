"""Neural-network IR substrate.

DeepStore consumes similarity comparison networks (SCNs) and query
comparison networks (QCNs) in two ways:

* the **simulators** (:mod:`repro.systolic`, :mod:`repro.core`) need layer
  *shapes* — dimensions, FLOPs, weight bytes — to produce cycle counts and
  energy events;
* the **examples** additionally execute the networks for real, so that an
  end-to-end query actually retrieves similar items.

This package provides both: a small DAG IR (:class:`Graph`) whose ops carry
exact FLOP/MAC/weight accounting, a numpy executor with manual backprop so
models can be trained on synthetic pairs (the paper trains its models to
within 5% of published accuracy; we train to a separation criterion on
synthetic data), and an ONNX-like byte serialization used by the
``loadModel`` API (paper Table 2 specifies models are shipped in the ONNX
format).
"""

from repro.nn.graph import Graph, GraphBuilder, Node
from repro.nn.layers import (
    Activation,
    Concat,
    Conv2D,
    Dense,
    Dot,
    Elementwise,
    Flatten,
    Input,
    Op,
    ScoreHead,
)
from repro.nn.onnx_lite import graph_from_bytes, graph_to_bytes
from repro.nn.training import PairTrainer, TrainConfig

__all__ = [
    "Graph",
    "GraphBuilder",
    "Node",
    "Op",
    "Input",
    "Dense",
    "Conv2D",
    "Activation",
    "Elementwise",
    "Dot",
    "Concat",
    "Flatten",
    "ScoreHead",
    "graph_to_bytes",
    "graph_from_bytes",
    "PairTrainer",
    "TrainConfig",
]
