"""DAG computation graph with numpy execution.

A :class:`Graph` is an ordered list of :class:`Node` records, each binding
an :class:`~repro.nn.layers.Op` to its input nodes.  Nodes are appended in
topological order (the builder enforces this), so forward execution is a
single pass and backward is the reverse pass.

The graph carries its own parameter store (``node id -> {name: array}``)
and a summary API (:meth:`Graph.summary`) that aggregates FLOPs, MACs, and
weight bytes per layer class — this is what Table-1 calibration and the
systolic/energy models consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.layers import (
    Activation,
    Conv2D,
    Dense,
    Dot,
    Elementwise,
    Input,
    Op,
    Params,
    Shape,
)


@dataclass
class Node:
    """One operator instance in the graph."""

    node_id: int
    op: Op
    inputs: Tuple[int, ...]
    name: str = ""


@dataclass
class LayerStats:
    """Shape/cost record for one node, used by simulators."""

    node_id: int
    op_name: str
    name: str
    input_shapes: Tuple[Shape, ...]
    output_shape: Shape
    flops: int
    macs: int
    weight_params: int
    #: bytes per weight scalar (4 = fp32 default; narrower after
    #: quantization, see repro.nn.quantization)
    dtype_bytes: int = 4

    @property
    def weight_bytes(self) -> int:
        """Total parameter bytes at the graph's (or a given) dtype width."""
        return self.weight_params * self.dtype_bytes


class GraphError(ValueError):
    """Raised for malformed graphs (bad wiring, shape mismatches)."""


class Graph:
    """A topologically ordered DAG of ops with a parameter store."""

    def __init__(self, name: str = "graph"):
        self.name = name
        self.nodes: List[Node] = []
        self.params: Dict[int, Params] = {}
        self._shapes: Dict[int, Shape] = {}
        self.output_id: Optional[int] = None
        #: bytes per stored weight scalar (set by quantization)
        self.dtype_bytes: int = 4
        #: arithmetic precision label consumed by the hardware models
        self.precision: str = "fp32"

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, op: Op, inputs: Sequence[int] = (), name: str = "") -> int:
        """Append an op; returns its node id."""
        inputs = tuple(int(i) for i in inputs)
        if len(inputs) != op.arity:
            raise GraphError(
                f"{type(op).__name__} expects {op.arity} inputs, got {len(inputs)}"
            )
        for i in inputs:
            if not 0 <= i < len(self.nodes):
                raise GraphError(f"input node {i} does not exist yet")
        node_id = len(self.nodes)
        node = Node(node_id=node_id, op=op, inputs=inputs, name=name or f"n{node_id}")
        # Shape-check eagerly so construction errors surface immediately.
        in_shapes = tuple(self._shapes[i] for i in inputs)
        self._shapes[node_id] = op.output_shape(*in_shapes)
        self.nodes.append(node)
        self.output_id = node_id
        return node_id

    def set_output(self, node_id: int) -> None:
        """Mark an existing node as the graph output."""
        if not 0 <= node_id < len(self.nodes):
            raise GraphError(f"no node {node_id}")
        self.output_id = node_id

    @property
    def input_ids(self) -> List[int]:
        return [n.node_id for n in self.nodes if isinstance(n.op, Input)]

    def shape_of(self, node_id: int) -> Shape:
        """Per-sample output shape of a node."""
        return self._shapes[node_id]

    # ------------------------------------------------------------------
    # parameters
    # ------------------------------------------------------------------
    def initialize(self, seed: int = 0) -> None:
        """(Re-)initialize every parameterized node deterministically."""
        rng = np.random.default_rng(seed)
        self.params = {}
        for node in self.nodes:
            p = node.op.init_params(rng)
            if p:
                self.params[node.node_id] = p

    def parameter_count(self) -> int:
        """Total trainable scalars across all layers."""
        return sum(node.op.weight_params() for node in self.nodes)

    def weight_bytes(self, dtype_bytes: Optional[int] = None) -> int:
        """Total parameter bytes at the graph's (or a given) dtype width."""
        if dtype_bytes is None:
            dtype_bytes = self.dtype_bytes
        return self.parameter_count() * dtype_bytes

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def forward(
        self,
        feeds: Dict[int, np.ndarray],
        keep_activations: bool = False,
    ) -> np.ndarray:
        """Execute the graph on batched ``feeds`` (``input id -> array``).

        Returns the output-node activation.  With ``keep_activations`` the
        full activation dict is stashed on ``self._last_activations`` for a
        subsequent :meth:`backward` call.
        """
        if self.output_id is None:
            raise GraphError("graph has no nodes")
        missing = [i for i in self.input_ids if i not in feeds]
        if missing:
            raise GraphError(f"missing feeds for input nodes {missing}")
        batch_sizes = {feeds[i].shape[0] for i in self.input_ids}
        if len(batch_sizes) != 1:
            raise GraphError(f"inconsistent batch sizes {batch_sizes}")
        acts: Dict[int, np.ndarray] = {}
        for node in self.nodes:
            if isinstance(node.op, Input):
                fed = np.asarray(feeds[node.node_id], dtype=np.float32)
                expected = self._shapes[node.node_id]
                if tuple(fed.shape[1:]) != expected:
                    raise GraphError(
                        f"feed for {node.name} has shape {fed.shape[1:]}, "
                        f"expected {expected}"
                    )
                acts[node.node_id] = fed
            else:
                args = [acts[i] for i in node.inputs]
                acts[node.node_id] = node.op.forward(
                    self.params.get(node.node_id, {}), *args
                )
        if keep_activations:
            self._last_activations = acts
        return acts[self.output_id]

    def backward(self, grad_out: np.ndarray) -> Dict[int, Params]:
        """Backprop ``grad_out`` through the last kept forward pass.

        Returns parameter gradients keyed like :attr:`params`.
        """
        acts = getattr(self, "_last_activations", None)
        if acts is None:
            raise GraphError("call forward(keep_activations=True) first")
        grads_act: Dict[int, np.ndarray] = {self.output_id: grad_out}
        grads_param: Dict[int, Params] = {}
        for node in reversed(self.nodes):
            if isinstance(node.op, Input) or node.node_id not in grads_act:
                continue
            g_out = grads_act.pop(node.node_id)
            inputs = [acts[i] for i in node.inputs]
            g_params, g_inputs = node.op.backward(
                self.params.get(node.node_id, {}),
                inputs,
                acts[node.node_id],
                g_out,
            )
            if g_params:
                grads_param[node.node_id] = g_params
            for in_id, g in zip(node.inputs, g_inputs):
                if in_id in grads_act:
                    grads_act[in_id] = grads_act[in_id] + g
                else:
                    grads_act[in_id] = g
        return grads_param

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def layer_stats(self) -> List[LayerStats]:
        """Per-node shape/cost records (Input nodes excluded)."""
        stats = []
        for node in self.nodes:
            if isinstance(node.op, Input):
                continue
            in_shapes = tuple(self._shapes[i] for i in node.inputs)
            stats.append(
                LayerStats(
                    node_id=node.node_id,
                    op_name=type(node.op).__name__,
                    name=node.name,
                    input_shapes=in_shapes,
                    output_shape=self._shapes[node.node_id],
                    flops=node.op.flops(*in_shapes),
                    macs=node.op.macs(*in_shapes),
                    weight_params=node.op.weight_params(),
                    dtype_bytes=self.dtype_bytes,
                )
            )
        return stats

    def total_flops(self) -> int:
        """Per-sample FLOPs summed over all layers (MAC = 2 FLOPs)."""
        return sum(s.flops for s in self.layer_stats())

    def total_macs(self) -> int:
        """Per-sample multiply-accumulates summed over all layers."""
        return sum(s.macs for s in self.layer_stats())

    def count_layers(self) -> Dict[str, int]:
        """Layer-class counts in Table-1 terms (conv / fc / elementwise)."""
        counts = {"conv": 0, "fc": 0, "elementwise": 0}
        for node in self.nodes:
            if isinstance(node.op, Conv2D):
                counts["conv"] += 1
            elif isinstance(node.op, Dense):
                counts["fc"] += 1
            elif isinstance(node.op, (Elementwise, Dot)):
                counts["elementwise"] += 1
        return counts

    def summary(self) -> str:
        """Human-readable layer table."""
        lines = [f"Graph {self.name!r}: {self.parameter_count()} params, "
                 f"{self.total_flops()} FLOPs/sample"]
        for s in self.layer_stats():
            lines.append(
                f"  {s.name:<16} {s.op_name:<12} out={s.output_shape} "
                f"flops={s.flops:>10} params={s.weight_params:>9}"
            )
        return "\n".join(lines)


class GraphBuilder:
    """Fluent helper for the common two-branch SCN topology.

    >>> b = GraphBuilder("scn")
    >>> q = b.input((512,), "qfv")
    >>> d = b.input((512,), "dfv")
    >>> h = b.elementwise(q, d, "absdiff")
    >>> h = b.dense(h, 128, activation="relu")
    >>> out = b.dense(h, 1, activation="sigmoid")
    >>> g = b.build()
    >>> g.shape_of(g.output_id)
    (1,)
    """

    def __init__(self, name: str = "graph"):
        self.graph = Graph(name)

    def input(self, shape: Sequence[int], name: str = "") -> int:
        """Add an Input placeholder; returns its node id."""
        return self.graph.add(Input(shape), (), name=name)

    def dense(
        self, src: int, out_features: int, activation: str = "identity",
        bias: bool = True, name: str = "",
    ) -> int:
        """Add a Dense layer (with optional activation) after `src`."""
        in_features = int(np.prod(self.graph.shape_of(src)))
        nid = self.graph.add(
            Dense(in_features, out_features, bias=bias), (src,), name=name
        )
        if activation != "identity":
            nid = self.graph.add(Activation(activation), (nid,))
        return nid

    def conv2d(
        self, src: int, out_channels: int, kernel: int, stride: int = 1,
        padding: int = 0, activation: str = "identity", name: str = "",
    ) -> int:
        """Add a Conv2D layer (with optional activation) after `src`."""
        in_shape = self.graph.shape_of(src)
        nid = self.graph.add(
            Conv2D(in_shape[0], out_channels, kernel, stride, padding),
            (src,), name=name,
        )
        if activation != "identity":
            nid = self.graph.add(Activation(activation), (nid,))
        return nid

    def elementwise(self, a: int, b: int, kind: str = "absdiff", name: str = "") -> int:
        """Add a binary element-wise op over two nodes."""
        return self.graph.add(Elementwise(kind), (a, b), name=name)

    def dot(self, a: int, b: int, name: str = "") -> int:
        """Add a batched inner product of two nodes."""
        return self.graph.add(Dot(), (a, b), name=name)

    def concat(self, a: int, b: int, name: str = "") -> int:
        """Concatenate two nodes along the feature axis."""
        from repro.nn.layers import Concat

        return self.graph.add(Concat(), (a, b), name=name)

    def flatten(self, src: int, name: str = "") -> int:
        """Flatten a node to a 1-D feature vector."""
        from repro.nn.layers import Flatten

        return self.graph.add(Flatten(), (src,), name=name)

    def activation(self, src: int, kind: str, name: str = "") -> int:
        """Add a pointwise nonlinearity after `src`."""
        return self.graph.add(Activation(kind), (src,), name=name)

    def score_head(
        self, src: int, kind: str = "sigmoid", affine: bool = False, name: str = ""
    ) -> int:
        """Add the similarity score head (see layers.ScoreHead)."""
        from repro.nn.layers import ScoreHead

        return self.graph.add(ScoreHead(kind, affine=affine), (src,), name=name)

    def build(self, output: Optional[int] = None, seed: int = 0) -> Graph:
        """Finalize: set the output, initialize parameters, return the graph."""
        if output is not None:
            self.graph.set_output(output)
        self.graph.initialize(seed=seed)
        return self.graph
