"""Post-training quantization (paper §7).

The paper evaluates everything in fp32 "to maintain the same accuracy as
the original application" and explicitly defers quantization/low-precision
to future work: "we believe the optimization work in the accelerator
community can be incorporated into the DeepStore architecture to gain
higher performance and energy efficiency".  This module incorporates it:

* :func:`quantize_graph` — symmetric per-tensor fake quantization of a
  trained graph's weights to fp16 or int8.  Execution stays in numpy
  float (the standard simulated-quantization technique), so accuracy loss
  is real and measurable, while the graph's accounted weight bytes shrink
  to the target dtype;
* :class:`Precision` — the hardware-side scaling the systolic and energy
  models consume: PEs process ``ops_per_pe`` narrow MACs per cycle and
  each MAC costs less energy (fp16 ~0.35x, int8 ~0.16x of fp32 at 32 nm,
  following Horowitz's scaling).

Lower precision also shrinks *weight residency*: ReId's 10 MB fp32 model
becomes 2.5 MB at int8 and suddenly fits the channel level's shared
scratchpad — the largest single win quantization buys DeepStore.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.nn.graph import Graph


@dataclass(frozen=True)
class Precision:
    """Hardware characteristics of one arithmetic precision."""

    name: str
    weight_bytes: int  # bytes per weight scalar
    ops_per_pe: int  # MACs one PE completes per cycle
    mac_j: float  # energy per MAC at 32 nm

    @property
    def memory_scale(self) -> float:
        """Traffic scale relative to fp32 words."""
        return self.weight_bytes / 4.0


PRECISIONS: Dict[str, Precision] = {
    "fp32": Precision("fp32", 4, 1, 3.1e-12),
    "fp16": Precision("fp16", 2, 2, 1.1e-12),
    "int8": Precision("int8", 1, 4, 0.5e-12),
}


class QuantizationError(ValueError):
    """Raised for unknown precisions or unquantizable graphs."""


def get_precision(name: str) -> Precision:
    """Look up a Precision spec by name."""
    precision = PRECISIONS.get(name)
    if precision is None:
        raise QuantizationError(
            f"unknown precision {name!r}; choose from {list(PRECISIONS)}"
        )
    return precision


def _fake_quantize(tensor: np.ndarray, bits: int) -> np.ndarray:
    """Symmetric per-tensor quantize-dequantize."""
    qmax = float(2 ** (bits - 1) - 1)
    scale = float(np.max(np.abs(tensor)))
    if scale == 0.0:
        return tensor.copy()
    step = scale / qmax
    q = np.clip(np.round(tensor / step), -qmax, qmax)
    return (q * step).astype(np.float32)


def quantize_graph(graph: Graph, precision: str = "int8") -> Graph:
    """Return a quantized copy of ``graph``.

    Weights are fake-quantized (int8: 8-bit symmetric; fp16: cast through
    half precision), the copy's ``dtype_bytes`` is set so all byte
    accounting (residency decisions, model transfer sizes, energy
    traffic) reflects the narrow format, and ``graph.precision`` records
    the target for the hardware models.
    """
    spec = get_precision(precision)
    quantized = copy.deepcopy(graph)
    quantized.name = f"{graph.name}-{spec.name}"
    for node_id, params in quantized.params.items():
        for key, tensor in params.items():
            if spec.name == "int8":
                params[key] = _fake_quantize(tensor, bits=8)
            elif spec.name == "fp16":
                params[key] = tensor.astype(np.float16).astype(np.float32)
    quantized.dtype_bytes = spec.weight_bytes
    quantized.precision = spec.name
    return quantized


def graph_precision(graph: Graph) -> Precision:
    """The precision a graph was quantized to (fp32 when untouched)."""
    return get_precision(getattr(graph, "precision", "fp32"))


def pair_accuracy(
    graph: Graph,
    queries: np.ndarray,
    features: np.ndarray,
    labels: np.ndarray,
) -> float:
    """Pair-classification accuracy of a (possibly quantized) SCN."""
    q_id, d_id = graph.input_ids
    scores = graph.forward({q_id: queries, d_id: features}).reshape(-1)
    return float(((scores > 0.5) == (labels.reshape(-1) > 0.5)).mean())


def accuracy_delta(
    original: Graph,
    quantized: Graph,
    queries: np.ndarray,
    features: np.ndarray,
    labels: np.ndarray,
) -> Tuple[float, float]:
    """(original accuracy, quantized accuracy) on the same pair set."""
    return (
        pair_accuracy(original, queries, features, labels),
        pair_accuracy(quantized, queries, features, labels),
    )
