"""Pairwise training for similarity comparison networks.

The paper trains each application's two-branch model with positive and
negative (query, feature) pairs until accuracy is within 5% of the
published number (§3).  We reproduce the procedure on synthetic data: the
SCN takes a query feature vector and a database feature vector and emits a
similarity score; :class:`PairTrainer` runs minibatch SGD with momentum on
a binary cross-entropy loss over labelled pairs.

The trainer works on any :class:`~repro.nn.graph.Graph` whose two ``Input``
nodes are the (QFV, DFV) branches and whose output is a single sigmoid
score in ``(0, 1)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.nn.graph import Graph


@dataclass
class TrainConfig:
    """Hyper-parameters for :class:`PairTrainer`."""

    learning_rate: float = 0.05
    momentum: float = 0.9
    batch_size: int = 64
    epochs: int = 10
    weight_decay: float = 0.0
    grad_clip: float = 5.0
    seed: int = 0


@dataclass
class TrainReport:
    """Loss/accuracy trajectory of one training run."""

    losses: List[float] = field(default_factory=list)
    accuracies: List[float] = field(default_factory=list)

    @property
    def final_accuracy(self) -> float:
        return self.accuracies[-1] if self.accuracies else 0.0


def bce_loss_and_grad(scores: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
    """Binary cross entropy over sigmoid ``scores`` of shape (N, 1)."""
    eps = 1e-7
    s = np.clip(scores, eps, 1.0 - eps)
    y = labels.reshape(s.shape).astype(np.float64)
    loss = float(-(y * np.log(s) + (1.0 - y) * np.log(1.0 - s)).mean())
    grad = ((s - y) / (s * (1.0 - s))).astype(np.float32) / s.shape[0]
    return loss, grad


class PairTrainer:
    """Minibatch SGD-with-momentum over (query, feature, label) pairs."""

    def __init__(self, graph: Graph, config: TrainConfig | None = None):
        self.graph = graph
        self.config = config or TrainConfig()
        self._velocity: Dict[int, Dict[str, np.ndarray]] = {}
        inputs = graph.input_ids
        if len(inputs) != 2:
            raise ValueError(
                f"pair training needs a two-input graph, got {len(inputs)} inputs"
            )
        self.qfv_id, self.dfv_id = inputs

    def score(self, queries: np.ndarray, features: np.ndarray) -> np.ndarray:
        """Similarity scores for aligned query/feature batches."""
        out = self.graph.forward({self.qfv_id: queries, self.dfv_id: features})
        return out.reshape(-1)

    def _step(self, q: np.ndarray, d: np.ndarray, y: np.ndarray) -> Tuple[float, float]:
        cfg = self.config
        scores = self.graph.forward(
            {self.qfv_id: q, self.dfv_id: d}, keep_activations=True
        )
        loss, grad_out = bce_loss_and_grad(scores, y)
        grads = self.graph.backward(grad_out)
        for node_id, g in grads.items():
            vel = self._velocity.setdefault(node_id, {})
            params = self.graph.params[node_id]
            for key, grad in g.items():
                if cfg.grad_clip:
                    norm = float(np.linalg.norm(grad))
                    if norm > cfg.grad_clip:
                        grad = grad * (cfg.grad_clip / norm)
                if cfg.weight_decay:
                    grad = grad + cfg.weight_decay * params[key]
                v = vel.get(key)
                v = (cfg.momentum * v - cfg.learning_rate * grad) if v is not None \
                    else -cfg.learning_rate * grad
                vel[key] = v
                params[key] = (params[key] + v).astype(np.float32)
        acc = float(((scores.reshape(-1) > 0.5) == (y.reshape(-1) > 0.5)).mean())
        return loss, acc

    def fit(
        self,
        queries: np.ndarray,
        features: np.ndarray,
        labels: np.ndarray,
    ) -> TrainReport:
        """Train on aligned arrays; returns the loss/accuracy trajectory."""
        if not (len(queries) == len(features) == len(labels)):
            raise ValueError("queries/features/labels must be aligned")
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        n = len(queries)
        report = TrainReport()
        for _ in range(cfg.epochs):
            order = rng.permutation(n)
            epoch_loss, epoch_acc, batches = 0.0, 0.0, 0
            for start in range(0, n, cfg.batch_size):
                idx = order[start : start + cfg.batch_size]
                loss, acc = self._step(queries[idx], features[idx], labels[idx])
                epoch_loss += loss
                epoch_acc += acc
                batches += 1
            report.losses.append(epoch_loss / batches)
            report.accuracies.append(epoch_acc / batches)
        return report

    def evaluate(
        self, queries: np.ndarray, features: np.ndarray, labels: np.ndarray
    ) -> float:
        """Pair classification accuracy at threshold 0.5."""
        scores = self.score(queries, features)
        return float(((scores > 0.5) == (labels.reshape(-1) > 0.5)).mean())


def make_pair_dataset(
    rng: np.random.Generator,
    feature_size: int,
    n_pairs: int,
    noise: float = 0.25,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Synthetic positive/negative (query, feature) pairs.

    Positive pairs share a latent anchor (feature = anchor + noise, query =
    anchor + noise); negative pairs use independent anchors.  This mirrors
    the contrastive setup the source applications train with.
    """
    half = n_pairs // 2
    anchors = rng.normal(0, 1, (n_pairs, feature_size)).astype(np.float32)
    queries = anchors + rng.normal(0, noise, anchors.shape).astype(np.float32)
    features = np.empty_like(anchors)
    labels = np.zeros(n_pairs, dtype=np.float32)
    features[:half] = anchors[:half] + rng.normal(
        0, noise, (half, feature_size)
    ).astype(np.float32)
    labels[:half] = 1.0
    features[half:] = rng.normal(0, 1, (n_pairs - half, feature_size)).astype(
        np.float32
    )
    order = rng.permutation(n_pairs)
    return queries[order], features[order], labels[order]
