"""ONNX-like byte serialization for graphs.

Paper Table 2: ``loadModel(cg, cg_size)`` ships a computational graph plus
weights "specified in the ONNX format" into the SSD.  We implement a
self-contained equivalent: a JSON header describing nodes and parameter
tensor metadata, followed by the raw little-endian float32 tensor payload.
The byte size of this blob is what the DeepStore runtime charges when
modelling host->SSD model transfer time.

Format::

    MAGIC (8 bytes) | header_len (uint32 LE) | header JSON | tensor payload
"""

from __future__ import annotations

import json
import struct
from typing import List

import numpy as np

from repro.nn.graph import Graph
from repro.nn.layers import OP_REGISTRY

MAGIC = b"DSONNX01"


class SerializationError(ValueError):
    """Raised for malformed model blobs."""


def graph_to_bytes(graph: Graph) -> bytes:
    """Serialize ``graph`` (topology + parameters) to bytes."""
    node_specs = []
    tensor_meta: List[dict] = []
    payload_parts: List[bytes] = []
    offset = 0
    for node in graph.nodes:
        node_specs.append(
            {
                "id": node.node_id,
                "op": type(node.op).__name__,
                "inputs": list(node.inputs),
                "name": node.name,
                "config": node.op.config(),
            }
        )
        for key, tensor in sorted(graph.params.get(node.node_id, {}).items()):
            data = np.ascontiguousarray(tensor, dtype=np.float32).tobytes()
            tensor_meta.append(
                {
                    "node": node.node_id,
                    "key": key,
                    "shape": list(tensor.shape),
                    "offset": offset,
                    "nbytes": len(data),
                }
            )
            payload_parts.append(data)
            offset += len(data)
    header = json.dumps(
        {
            "name": graph.name,
            "output": graph.output_id,
            "nodes": node_specs,
            "tensors": tensor_meta,
        }
    ).encode("utf-8")
    return MAGIC + struct.pack("<I", len(header)) + header + b"".join(payload_parts)


def graph_from_bytes(blob: bytes) -> Graph:
    """Reconstruct a :class:`Graph` from :func:`graph_to_bytes` output."""
    if len(blob) < len(MAGIC) + 4 or blob[: len(MAGIC)] != MAGIC:
        raise SerializationError("not a DeepStore model blob")
    (header_len,) = struct.unpack_from("<I", blob, len(MAGIC))
    header_start = len(MAGIC) + 4
    header_end = header_start + header_len
    if header_end > len(blob):
        raise SerializationError("truncated model header")
    try:
        header = json.loads(blob[header_start:header_end].decode("utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"bad model header: {exc}") from exc

    graph = Graph(header.get("name", "graph"))
    for spec in header["nodes"]:
        op_cls = OP_REGISTRY.get(spec["op"])
        if op_cls is None:
            raise SerializationError(f"unknown op {spec['op']!r}")
        op = op_cls(**spec["config"])
        got = graph.add(op, spec["inputs"], name=spec.get("name", ""))
        if got != spec["id"]:
            raise SerializationError("node ids are not dense/topological")
    graph.set_output(header["output"])

    payload = blob[header_end:]
    for meta in header["tensors"]:
        start, nbytes = meta["offset"], meta["nbytes"]
        if start + nbytes > len(payload):
            raise SerializationError("truncated tensor payload")
        tensor = np.frombuffer(payload[start : start + nbytes], dtype=np.float32)
        tensor = tensor.reshape(meta["shape"]).copy()
        graph.params.setdefault(meta["node"], {})[meta["key"]] = tensor
    return graph


def model_size_bytes(graph: Graph) -> int:
    """Size of the serialized blob without actually serializing payloads."""
    return len(graph_to_bytes(graph))
