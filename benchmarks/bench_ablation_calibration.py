"""Ablation: robustness of the conclusions to baseline calibration.

DESIGN.md documents two calibration constants on the GPU+SSD side: the
GPU's achievable-efficiency factor and the host's per-record overhead.
A reproduction whose conclusions flip when those constants wiggle would
be fragile — this bench sweeps both over generous ranges and asserts the
paper's structural claims (channel level wins everywhere, SSD level
loses everywhere, ReId worst / TextQA best) survive every setting.
"""

from dataclasses import replace

from repro.analysis import Table
from repro.baseline import GpuSsdSystem, HostSystem, VOLTA_TITAN_V
from repro.core import DeepStoreSystem
from repro.workloads import ALL_APPS

from conftest import emit

EFFICIENCIES = (0.15, 0.25, 0.40)
OVERHEADS = (0, 512, 2048)


def sweep(paper_databases):
    channel = DeepStoreSystem.at_level("channel")
    ssd_level = DeepStoreSystem.at_level("ssd")
    table = Table(
        "Ablation: channel-level speedup vs baseline calibration",
        ["GPU eff", "record ovh"] + list(ALL_APPS),
    )
    outcomes = []
    for eff in EFFICIENCIES:
        for overhead in OVERHEADS:
            gpu = replace(VOLTA_TITAN_V, efficiency=eff)
            host = HostSystem(record_overhead_bytes=overhead)
            baseline = GpuSsdSystem(gpu, host=host)
            row = {}
            for name, app in ALL_APPS.items():
                meta = paper_databases[name]
                gpu_cost = baseline.query_cost(app, meta.feature_count)
                ch = channel.query_latency(app, meta)
                sl = ssd_level.query_latency(app, meta)
                row[name] = {
                    "channel": gpu_cost.seconds / ch.total_seconds,
                    "ssd": gpu_cost.seconds / sl.total_seconds,
                }
            outcomes.append(row)
            table.add_row(
                f"{eff:.2f}", f"{overhead}B",
                *(f"{row[name]['channel']:6.2f}x" for name in ALL_APPS),
            )
    return table, outcomes


def test_ablation_calibration(benchmark, paper_databases):
    table, outcomes = benchmark.pedantic(
        sweep, args=(paper_databases,), rounds=1, iterations=1
    )
    emit(table, "ablation_calibration.txt")
    for row, (eff, overhead) in zip(
        outcomes, [(e, o) for e in EFFICIENCIES for o in OVERHEADS]
    ):
        # the structural conclusions hold at every calibration point
        for name, cell in row.items():
            assert cell["channel"] > 1.0, f"{name} channel <= 1x"
            assert cell["ssd"] < cell["channel"], f"{name} level order flipped"
            # "SSD level loses to the GPU" holds up to the calibrated
            # overhead; only the extreme 2 KB/record setting (which
            # triples the baseline's small-record cost) lifts TextQA's
            # SSD-level cell above 1x
            if overhead <= 512:
                assert cell["ssd"] < 1.0, f"{name} ssd-level >= 1x"
        channel = {n: c["channel"] for n, c in row.items()}
        assert min(channel, key=channel.get) == "reid"
        # the one calibration-sensitive ordering: TextQA leads whenever
        # the host pays a per-record cost (any overhead >= 512 B); with a
        # literally free record path the I/O-bound apps bunch together
        # and ESTP can edge ahead — worth knowing, so it is asserted
        if overhead >= 512:
            assert max(channel, key=channel.get) == "textqa"
        else:
            assert max(channel.values()) / channel["textqa"] < 1.3
