"""Extension: IVF ANN probes on the accelerator hierarchy.

The paper's queries scan the full database; this bench measures what an
in-storage IVF index buys on top of the reproduced hierarchy.  One
clustered TextQA workload, one index build priced through the
page-mapped FTL write path, then the full (level × nprobe) Pareto
frontier — and the acceptance claims the index layer stands on:

* **recall** — the operating point (smallest ``nprobe`` clearing the
  recall gate) retrieves at least 95% of the exhaustive scan's top-K;
* **speedup** — that operating point is at least 5x faster than the
  exhaustive scan in *event time*: the routed probe replayed through
  the whole-device DES (queueing, bus contention, channel skew and the
  serial engine overheads all included);
* **full-probe degeneration** — at ``nprobe = n_lists`` the probe costs
  exactly the exhaustive scan (speedup 1.0, routing 0.0);
* **build audit** — the layout region is sized by the same audit the
  scaled ingest benchmark needed, so ``--bench-scale 10`` grows the
  region instead of exhausting logical flash space.

The emitted table is the index scorecard the CI perf gate diffs.
"""

import json

from repro.analysis import Table
from repro.index.scorecard import (
    GATE_CONFIG,
    IndexGateConfig,
    RECALL_GATE,
    build_index_scorecard,
)

from conftest import RESULTS_DIR, emit

#: the bench runs the exact gate configuration: one deterministic run,
#: one artifact, no drift between what CI gates and what this asserts
CONFIG: IndexGateConfig = GATE_CONFIG


def scaled_config(scale: int = 1) -> IndexGateConfig:
    """The gate config with the database scaled by ``scale``.

    ``scale=1`` returns ``GATE_CONFIG`` itself, so the smoke run and the
    scorecard leg stay the same object.  Larger scales grow the row
    count; the build's layout region is auto-sized by
    :func:`repro.ingest.writepath.region_blocks_for`, which is exactly
    the audit this bench regression-tests — a fixed region would
    exhaust logical flash space at scale 10.
    """
    if scale == 1:
        return CONFIG
    from dataclasses import replace

    return replace(CONFIG, n_features=CONFIG.n_features * scale)


def run_sweep(scale: int = 1):
    return build_index_scorecard(scaled_config(scale))


def pareto_table(card) -> Table:
    meta = card["meta"]
    table = Table(
        f"Extension: IVF recall/latency frontier ({meta['app']}, "
        f"{meta['n_features']} rows, {meta['n_lists']} lists, "
        f"k={meta['k']})",
        ["level", "nprobe", "recall@k", "probe s", "routing s", "speedup"],
    )
    for level, points in card["pareto"].items():
        for key in sorted(points, key=lambda s: int(s.split("=")[1])):
            p = points[key]
            table.add_row(
                f"{level:8s}",
                f"{int(key.split('=')[1]):6d}",
                f"{p['recall_at_k']:8.3f}",
                f"{p['seconds']:.3e}",
                f"{p['routing_seconds']:.3e}",
                f"{p['speedup']:7.2f}x",
            )
    return table


def build_table(card) -> Table:
    build = card["build"]
    des = card["des"]
    op = card["operating_point"]
    table = Table(
        "Extension: IVF build cost & DES operating point",
        ["quantity", "value"],
    )
    rows = [
        ("rows indexed", f"{build['rows']}"),
        ("train ms (SSD-level scans)", f"{build['train_seconds'] * 1e3:.3f}"),
        ("layout write ms (FTL path)",
         f"{build['layout_write_seconds'] * 1e3:.3f}"),
        ("write amplification", f"{build['write_amplification']:.3f}"),
        ("layout region blocks", f"{build['region_blocks']}"),
        ("list sizes (min..max)",
         f"{build['list_size_min']}..{build['list_size_max']}"),
        ("operating point",
         f"nprobe={op['nprobe']} @ {op['level']}, "
         f"recall {op['recall_at_k']:.3f}"),
        ("DES pages scanned",
         f"{des['probed_pages']} / {des['full_pages']}"),
        ("DES event-time speedup", f"{des['event_speedup']:.2f}x"),
    ]
    for name, value in rows:
        table.add_row(f"{name:30s}", value)
    return table


def test_ext_index_pareto(benchmark, bench_scale):
    card = benchmark.pedantic(
        run_sweep, args=(bench_scale,), rounds=1, iterations=1
    )
    emit(pareto_table(card), "ext_index_pareto.txt")
    emit(build_table(card), "ext_index_build.txt")

    # --- acceptance: >= 5x event-time speedup at recall@10 >= 0.95
    op = card["operating_point"]
    assert op["recall_at_k"] >= RECALL_GATE
    assert card["des"]["event_speedup"] >= 5.0
    assert card["des"]["probed_pages"] < card["des"]["full_pages"]

    # --- the frontier is a real trade: probing everything costs the
    # exhaustive scan exactly (speedup 1.0, routing skipped), probing
    # one list is the cheapest point at every level
    for level, points in card["pareto"].items():
        full = points[f"nprobe={card['meta']['n_lists']}"]
        assert full["speedup"] == 1.0
        assert full["routing_seconds"] == 0.0
        seconds = [
            points[key]["seconds"]
            for key in sorted(points, key=lambda s: int(s.split("=")[1]))
        ]
        assert seconds == sorted(seconds), level

    # --- build cost flows through the measured write path
    assert card["build"]["write_amplification"] >= 1.0
    assert card["build"]["layout_write_seconds"] > 0.0
    assert card["build"]["train_seconds"] > 0.0

    # --- region audit: the layout region actually holds the rows
    # (a fixed 64-block region would have died at bench scale >= 2)
    import math

    from repro.ssd.timing import SsdConfig

    page_bytes = SsdConfig().geometry.page_bytes
    rows_per_page = max(1, page_bytes // 800)  # textqa features
    pages_needed = math.ceil(card["build"]["rows"] / rows_per_page)
    region_pages = card["build"]["region_blocks"] * 64
    assert region_pages >= pages_needed


def test_ext_index_scorecard_artifact():
    """The gate leg is bit-stable and lands in results/ for CI upload."""
    card = build_index_scorecard()
    again = build_index_scorecard()
    assert card == again
    text = json.dumps(card, indent=2, sort_keys=True) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "index_scorecard.json").write_text(text)
    assert card["operating_point"]["recall_at_k"] >= RECALL_GATE
    assert card["des"]["event_speedup"] >= 5.0
