"""Ablation: FLASH_DFV queue depth vs latency hiding.

Paper Fig. 5 introduces the FLASH_DFV staging queue "to isolate
prefetching data feature vectors from the flash chips while performing
the SCN computation".  This ablation runs the event-driven stripe scan at
queue depths 1-32 and two flash latencies, showing how depth buys back
throughput when the array is slow — the mechanism behind Fig. 9's
insensitivity result.
"""


from repro.analysis import Table
from repro.core.accelerator import InStorageAccelerator
from repro.core.placement import CHANNEL_LEVEL
from repro.ssd import Ssd, SsdConfig
from repro.workloads import get_app

from conftest import emit

DEPTHS = (1, 2, 4, 8, 16, 32)
LATENCIES = {"53us": 53e-6, "212us": 212e-6}


def stripe_spf(latency, depth):
    app = get_app("textqa")  # the most I/O-bound workload
    config = SsdConfig().with_flash_latency(latency)
    ssd = Ssd(config)
    meta = ssd.ftl.create_database(app.feature_bytes, 1_000_000)
    accel = InStorageAccelerator(CHANNEL_LEVEL, config, app.build_scn())
    window = accel.simulate_stripe_scan(meta, channel=0, max_pages=192,
                                        queue_depth=depth)
    return window.seconds_per_feature


def sweep():
    table = Table(
        "Ablation: FLASH_DFV queue depth (TextQA, event-driven us/feature)",
        ["Flash latency"] + [str(d) for d in DEPTHS],
    )
    results = {}
    for label, latency in LATENCIES.items():
        row = [stripe_spf(latency, d) for d in DEPTHS]
        results[label] = dict(zip(DEPTHS, row))
        table.add_row(label, *(f"{spf * 1e6:7.3f}" for spf in row))
    return table, results


def test_ablation_queue_depth(benchmark):
    table, results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(table, "ablation_queue_depth.txt")
    fast, slow = results["53us"], results["212us"]
    # depth 1 serializes array read and compute: badly hurt at both
    # latencies, catastrophically at 212us
    assert fast[1] / fast[32] > 2.0
    assert slow[1] / slow[32] > 4.0
    # at the paper's depth-8 design point, 4x latency costs little
    assert slow[8] / fast[8] < 1.45
    # deeper queues monotonically help (within simulation noise)
    for res in (fast, slow):
        values = [res[d] for d in DEPTHS]
        assert all(b <= a * 1.05 for a, b in zip(values, values[1:]))
