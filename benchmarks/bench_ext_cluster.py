"""Extension: shard-count scaling of the multi-SSD cluster.

The paper evaluates one DeepStore SSD; deployments shard the feature
database across many.  This bench sweeps shard counts over a fixed
dataset with :class:`ClusterModel` (the analytic cluster: closed-form
per-shard latency under the same hedged scatter DES as the functional
path) and asserts the scaling shape: speedup grows with shards but
sub-linearly (the scatter/gather overhead and the slowest-shard
barrier), the coordinator's overhead fraction stays tiny, failover
adds only the detection ladder, and hedging caps stragglers.
"""

from repro.analysis import Table
from repro.cluster import ClusterConfig, ClusterModel
from repro.workloads import get_app

from conftest import emit

APP = "tir"
FEATURES = 4_000_000
K = 10
SEED = 7
SHARD_COUNTS = (1, 2, 4, 8, 16, 32)


def run_scaling(scale: int = 1):
    app = get_app(APP)
    features = FEATURES * scale
    rows = []
    for shards in SHARD_COUNTS:
        est = ClusterModel(
            ClusterConfig(n_shards=shards, seed=SEED)
        ).estimate(app, features, k=K)
        rows.append(est)
    return rows


def run_degraded(scale: int = 1):
    app = get_app(APP)
    features = FEATURES * scale
    failover = ClusterModel(
        ClusterConfig(n_shards=8, n_replicas=2, seed=SEED,
                      fail_shards=((0, 0), (3, 0)))
    ).estimate(app, features, k=K)
    straggled = ClusterModel(
        ClusterConfig(n_shards=8, n_replicas=2, seed=SEED + 9,
                      straggler_spread=3.0)
    ).estimate(app, features, k=K)
    hedged = ClusterModel(
        ClusterConfig(n_shards=8, n_replicas=2, seed=SEED + 9,
                      straggler_spread=3.0, hedge_fraction=1.25)
    ).estimate(app, features, k=K)
    return failover, straggled, hedged


def scaling_table(rows):
    table = Table(
        f"Extension: cluster shard scaling ({APP}, {FEATURES / 1e6:.0f}M "
        f"features, K={K})",
        ["shards", "query ms", "speedup", "efficiency", "overhead%",
         "merge cmp", "util"],
    )
    for est in rows:
        overhead = est.scatter_seconds + est.gather_seconds
        table.add_row(
            f"{est.n_contacted:4d}",
            f"{est.seconds * 1e3:9.2f}",
            f"{est.speedup_vs_single:6.2f}x",
            f"{est.speedup_vs_single / est.n_contacted:6.3f}",
            f"{overhead / est.seconds * 100:7.4f}",
            f"{est.merge.comparisons:6d}",
            f"{est.utilization:5.3f}",
        )
    return table


def degraded_table(failover, straggled, hedged):
    table = Table(
        "Extension: cluster degraded modes (8 shards x 2 replicas)",
        ["scenario", "query ms", "failovers", "hedges", "wins"],
    )
    for name, est in (("2 dead primaries", failover),
                      ("stragglers <=4x", straggled),
                      ("... + hedge @1.25x", hedged)):
        table.add_row(
            name,
            f"{est.seconds * 1e3:9.2f}",
            f"{est.failovers:4d}",
            f"{est.hedges_launched:4d}",
            f"{est.hedge_wins:4d}",
        )
    return table


def test_ext_cluster_scaling(benchmark, bench_scale):
    rows = benchmark.pedantic(
        run_scaling, args=(bench_scale,), rounds=1, iterations=1
    )
    emit(scaling_table(rows), "ext_cluster_scaling.txt")

    assert rows[0].speedup_vs_single == 1.0
    speedups = [est.speedup_vs_single for est in rows]
    assert speedups == sorted(speedups)  # more shards never slower
    for est in rows:
        # sub-linear but close: the barrier + coordinator overhead
        assert 0.5 < est.speedup_vs_single / est.n_contacted <= 1.0
        overhead = est.scatter_seconds + est.gather_seconds
        assert overhead / est.seconds < 0.02


def test_ext_cluster_degraded(bench_scale):
    failover, straggled, hedged = run_degraded(bench_scale)
    emit(degraded_table(failover, straggled, hedged),
         "ext_cluster_degraded.txt")

    # read-spread picks replica (shard % 2) as primary: only shard 0's
    # dead copy is actually in the failover path; shard 3's is dormant
    assert failover.failovers == 1
    assert hedged.hedges_launched > 0
    assert hedged.hedge_wins >= 1
    # hedging buys back straggler makespan, and never makes it worse
    assert hedged.makespan_seconds < straggled.makespan_seconds
