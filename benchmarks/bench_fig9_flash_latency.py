"""Fig. 9: sensitivity to flash array read latency.

Sweeps the read latency from 1:8 of the 53 us baseline (fast Z-NAND-like
flash) to 4:1 (slow commodity flash) and reports each system's speedup
normalized to its own 53 us performance.  DeepStore's channel and chip
levels stay within ~10% at 4x latency because the channel bus, not the
array, limits a steady scan — so DeepStore works with cheap flash.
"""


from repro.analysis import Table
from repro.baseline import GpuSsdSystem
from repro.core import DeepStoreSystem
from repro.ssd import Ssd, SsdConfig
from repro.workloads import ALL_APPS

RATIOS = {"1:8": 1 / 8, "1:4": 1 / 4, "1:2": 1 / 2, "1:1": 1.0, "2:1": 2.0, "4:1": 4.0}
BASE_LATENCY = 53e-6

from conftest import emit


def query_seconds(level, app, latency):
    config = SsdConfig().with_flash_latency(latency)
    ssd = Ssd(config)
    meta = ssd.ftl.create_database(app.feature_bytes, int(2e9 / app.feature_bytes))
    graph = app.build_scn()
    system = DeepStoreSystem.at_level(level, ssd=config)
    if not system.supports(graph):
        return None
    return system.query_latency(app, meta, graph=graph).total_seconds


def sweep():
    tables = {}
    normalized = {}
    for level in ("ssd", "channel", "chip"):
        table = Table(
            f"Fig. 9: speedup vs flash latency ratio — DeepStore {level} level "
            f"(1:1 = 53us)",
            ["App"] + list(RATIOS),
        )
        for name, app in ALL_APPS.items():
            base = query_seconds(level, app, BASE_LATENCY)
            if base is None:
                table.add_row(name, *(["n/a"] * len(RATIOS)))
                continue
            cells = []
            for label, ratio in RATIOS.items():
                seconds = query_seconds(level, app, BASE_LATENCY * ratio)
                speedup = base / seconds
                normalized.setdefault(level, {}).setdefault(name, {})[label] = speedup
                cells.append(f"{speedup:5.3f}")
            table.add_row(name, *cells)
        tables[level] = table
    return tables, normalized


def test_fig9_flash_latency(benchmark):
    tables, normalized = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for level, table in tables.items():
        emit(table, f"fig9_latency_{level}.txt")
    # the paper: channel within 89.9% and chip within 96.1% at 4x latency
    for name, points in normalized["channel"].items():
        assert points["4:1"] > 0.70, f"channel {name}: {points['4:1']:.3f}"
        assert points["1:8"] < 1.15  # faster flash barely helps
    for name, points in normalized["chip"].items():
        assert points["4:1"] > 0.80, f"chip {name}: {points['4:1']:.3f}"
    # the SSD level is compute-bound: latency is invisible
    for name, points in normalized["ssd"].items():
        assert points["4:1"] > 0.95


def test_fig9_traditional_insensitive(benchmark):
    # the GPU+SSD system is bounded by external bandwidth; array latency
    # does not appear in its model at all (the paper's Fig. 9a is flat)
    app = ALL_APPS["mir"]
    cost = benchmark(lambda: GpuSsdSystem().query_cost(app, 1000000).seconds)
    assert cost > 0
