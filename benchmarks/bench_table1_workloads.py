"""Table 1: intelligent-query applications and their characteristics.

Regenerates the per-application row (feature size, layer counts, total
FLOPs, total weight size) from the implemented SCNs and checks each
against the published value.
"""

import pytest

from repro.analysis import Table, format_si
from repro.workloads import ALL_APPS

from conftest import emit


def build_table():
    table = Table(
        "Table 1: applications and characteristics (measured vs paper)",
        ["App", "Type", "Feature(KB)", "#Conv", "#FC", "#EW", "FLOPs", "Weights(MB)",
         "paper FLOPs", "paper MB"],
    )
    rows = []
    for name, app in ALL_APPS.items():
        graph = app.build_scn()
        counts = graph.count_layers()
        rows.append((name, graph))
        table.add_row(
            name,
            app.modality,
            f"{app.feature_bytes / 1024:.1f}",
            counts["conv"],
            counts["fc"],
            counts["elementwise"],
            format_si(graph.total_flops()),
            f"{graph.weight_bytes() / 2**20:.2f}",
            format_si(app.table1.total_flops),
            f"{app.table1.weight_bytes / 2**20:.2f}",
        )
    return table, rows


def test_table1(benchmark):
    table, rows = benchmark(build_table)
    emit(table, "table1.txt")
    for name, graph in rows:
        app = ALL_APPS[name]
        assert graph.total_flops() == pytest.approx(app.table1.total_flops, rel=0.10)
