"""Fig. 14: query-cache miss rate as a function of cache size.

At a 10% comparison threshold, sweeps the cache from 100 to 1000 entries
under uniform, Zipf(0.7), and Zipf(0.8) query streams.  Paper shape:
larger caches reduce the miss rate, but under locality-rich (Zipfian)
streams the benefit flattens — a small in-DRAM cache suffices.
"""


from repro.analysis import Table
from repro.core.query_cache import (
    CacheTimingModel,
    EmbeddingComparator,
    QueryCache,
    QueryCacheSimulator,
)
from repro.workloads import QueryStream

from conftest import emit

SIZES = (100, 250, 500, 750, 1000)
STREAMS = {
    "uniform": ("uniform", 0.0),
    "zipf(0.7)": ("zipf", 0.7),
    "zipf(0.8)": ("zipf", 0.8),
}
N_INTENTS = 5000
THRESHOLD = 0.10


def miss_rate(distribution, alpha, capacity):
    stream = QueryStream(
        dim=512, n_intents=N_INTENTS, distribution=distribution, alpha=alpha,
        paraphrase_noise=0.15, noise_spread=0.85, seed=17,
    )
    cache = QueryCache(
        capacity=capacity,
        comparator=EmbeddingComparator(),
        qcn_accuracy=0.98,
        threshold=THRESHOLD,
    )
    timing = CacheTimingModel(0.3e-6, 300e-6, 1.0)
    report = QueryCacheSimulator(cache, timing).run(
        stream.generate(1800), warmup=600
    )
    return report.miss_rate


def sweep():
    table = Table(
        "Fig. 14: miss rate % vs cache entries (threshold 10%)",
        ["Stream"] + [str(s) for s in SIZES],
    )
    results = {}
    for label, (distribution, alpha) in STREAMS.items():
        rates = [miss_rate(distribution, alpha, size) for size in SIZES]
        results[label] = dict(zip(SIZES, rates))
        table.add_row(label, *(f"{r * 100:5.1f}" for r in rates))
    emit(table, "fig14_qc_size.txt")
    return results


def test_fig14_qc_size(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for label, rates in results.items():
        # larger caches never miss more
        assert rates[1000] <= rates[100] + 0.02, label
    # locality lowers the whole curve
    assert results["zipf(0.8)"][1000] < results["uniform"][1000]
    assert results["zipf(0.7)"][1000] < results["uniform"][1000]
    # diminishing returns under locality: the last doubling buys less
    # than the first (paper: "the benefit of larger caches reduces")
    z = results["zipf(0.8)"]
    first_gain = z[100] - z[500]
    last_gain = z[500] - z[1000]
    assert last_gain <= first_gain + 0.02
