"""Fig. 13: query-cache speedup and miss rate vs error threshold.

Reproduces §6.5: TIR over a 100M-image feature database (192 GB of 2 KB
vectors), a 1 K-entry query cache, and query streams drawn uniformly and
Zipf(0.7) over the query-intent pool.  For each error threshold, the
cache simulation produces the miss rate; the backend scan costs come
from the GPU+SSD and DeepStore channel-level models, giving the three
Fig.-13 curves: Traditional+QC, DeepStore, and DeepStore+QC, all
normalized to the Traditional system without a cache.
"""


from repro.analysis import Table
from repro.baseline import GpuSsdSystem
from repro.core import DeepStoreSystem
from repro.core.query_cache import (
    CacheTimingModel,
    EmbeddingComparator,
    QueryCache,
    QueryCacheSimulator,
)
from repro.ssd import Ssd
from repro.workloads import QueryStream, get_app

from conftest import emit

THRESHOLDS = (0.0, 0.02, 0.05, 0.10, 0.15, 0.20)
N_INTENTS = 5000
CACHE_ENTRIES = 1000
N_QUERIES = 2200
WARMUP = 700
LOOKUP_PER_ENTRY = 0.3e-6  # paper: 0.3 ms to search 1 K entries


def scan_costs():
    """Full-database scan time on each backend (100M TIR features)."""
    app = get_app("tir")
    ssd = Ssd()
    meta = ssd.ftl.create_database(app.feature_bytes, 100_000_000)
    deepstore = DeepStoreSystem.at_level("channel")
    ds_seconds = deepstore.query_latency(app, meta).total_seconds
    gpu_seconds = GpuSsdSystem().query_cost(app, meta.feature_count).seconds
    hit_seconds = 300e-6  # QCN-selected candidates re-ranked with the SCN
    return gpu_seconds, ds_seconds, hit_seconds


def miss_rate_for(distribution, threshold, alpha=0.7):
    stream = QueryStream(
        dim=512, n_intents=N_INTENTS, distribution=distribution, alpha=alpha,
        paraphrase_noise=0.15, noise_spread=0.85, seed=11,
    )
    cache = QueryCache(
        capacity=CACHE_ENTRIES,
        comparator=EmbeddingComparator(),
        qcn_accuracy=0.98,
        threshold=threshold,
    )
    timing = CacheTimingModel(
        lookup_seconds_per_entry=LOOKUP_PER_ENTRY,
        hit_seconds=300e-6,
        miss_seconds=1.0,  # placeholder; real costs applied analytically
    )
    sim = QueryCacheSimulator(cache, timing)
    report = sim.run(stream.generate(N_QUERIES), warmup=WARMUP)
    return report.miss_rate


def mean_query_seconds(miss_rate, scan_seconds, hit_seconds):
    lookup = CACHE_ENTRIES * LOOKUP_PER_ENTRY
    return lookup + miss_rate * scan_seconds + (1 - miss_rate) * hit_seconds


def sweep():
    gpu_scan, ds_scan, hit = scan_costs()
    results = {}
    for distribution in ("uniform", "zipf"):
        table = Table(
            f"Fig. 13 ({distribution}): speedup over Traditional vs threshold",
            ["Threshold", "Trad+QC", "DeepStore", "DeepStore+QC", "Miss rate %"],
        )
        for threshold in THRESHOLDS:
            miss = miss_rate_for(distribution, threshold)
            trad_qc = gpu_scan / mean_query_seconds(miss, gpu_scan, hit)
            ds = gpu_scan / ds_scan
            ds_qc = gpu_scan / mean_query_seconds(miss, ds_scan, hit)
            results.setdefault(distribution, {})[threshold] = {
                "miss": miss, "trad_qc": trad_qc, "ds": ds, "ds_qc": ds_qc,
            }
            table.add_row(
                f"{threshold * 100:.0f}%",
                f"{trad_qc:5.2f}x",
                f"{ds:5.2f}x",
                f"{ds_qc:5.2f}x",
                f"{miss * 100:5.1f}",
            )
        emit(table, f"fig13_query_cache_{distribution}.txt")
    return results


def test_fig13_query_cache(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for distribution, curves in results.items():
        misses = [curves[t]["miss"] for t in THRESHOLDS]
        # relaxing the threshold reduces the miss rate (paper Fig. 13)
        assert misses[0] >= misses[-1]
        assert misses[0] > 0.99  # 0% threshold: nothing can hit
        # the cache multiplies DeepStore's advantage (paper: DeepStore
        # benefits ~10x more than the GPU system from the same cache)
        best = curves[0.20]
        assert best["ds_qc"] > best["ds"]
        assert best["ds_qc"] / best["trad_qc"] > 4.0
    # locality helps: Zipf misses less than uniform at the same threshold
    assert results["zipf"][0.10]["miss"] < results["uniform"][0.10]["miss"]
    # headline: DeepStore+QC lands in the paper's order of magnitude
    assert 8.0 < results["zipf"][0.20]["ds_qc"] < 60.0
