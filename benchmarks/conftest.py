"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's
evaluation: it runs the models, prints the same rows/series the paper
reports (visible with ``pytest benchmarks/ --benchmark-only -s``), and
writes the rendered table to ``benchmarks/results/<name>.txt``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import Table
from repro.analysis.scorecard import PAPER_ENERGY, PAPER_SPEEDUP
from repro.baseline import GpuSsdSystem
from repro.ssd import Ssd
from repro.workloads import ALL_APPS

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

__all__ = ["PAPER_SPEEDUP", "PAPER_ENERGY", "RESULTS_DIR", "emit"]


def pytest_addoption(parser):
    """One knob for every ``bench_ext_*`` workload size.

    ``--bench-scale 1`` (default) is the CI smoke size; the timing gate
    runs ``--bench-scale 10`` so regressions in the simulator hot loops
    are measured at sizes where they dominate.  Scaling changes only
    workload magnitude, never model parameters.
    """
    parser.addoption(
        "--bench-scale", type=int, default=1,
        help="workload-size multiplier for bench_ext_* legs",
    )


@pytest.fixture(scope="session")
def bench_scale(request) -> int:
    scale = request.config.getoption("--bench-scale")
    if scale < 1:
        raise pytest.UsageError("--bench-scale must be >= 1")
    return scale


def emit(table: Table, filename: str) -> None:
    """Print a table and persist it under benchmarks/results/."""
    text = table.render()
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / filename).write_text(text + "\n")


@pytest.fixture(scope="session")
def paper_databases():
    """One 25 GB feature database per application (paper §6.1)."""
    ssd = Ssd()
    metas = {}
    for name, app in ALL_APPS.items():
        count = int(25e9 / app.feature_bytes)
        metas[name] = ssd.ftl.create_database(app.feature_bytes, count)
    return metas


@pytest.fixture(scope="session")
def volta_baseline():
    return GpuSsdSystem()
