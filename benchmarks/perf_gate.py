"""The CI performance gate.

Builds the combined perf scorecard — the reproduction scorecard
(Table-4 speedups + structural claims), the serving scorecard
(throughput-latency curve, cache point, degraded point), the cluster
scorecard (shard scaling, failover tax, hedging), the ingest
scorecard (staleness drift, compaction recovery, write-amplification
interference), the recovery scorecard (crash durability, MTTR,
availability and recall under a scripted chaos day), the index
scorecard (IVF recall/latency frontier per accelerator level, build
cost through the FTL write path, DES-validated operating point), and
the tenancy scorecard (multi-tenant production day: per-tenant
p99/goodput/SLO attainment, autoscaler action log, noisy-neighbor
isolation ratios) — and compares
it leaf by leaf against the checked-in baseline
``benchmarks/results/baseline_scorecard.json`` within a relative
tolerance (default +/-10%).

Every leaf is simulated time or a count, a deterministic function of
the code: drift means the model changed.  If it changed on purpose,
regenerate the baseline with ``--write-baseline`` and commit it; if
not, the gate just caught a regression.

Exit codes: 0 = within tolerance, 1 = drifted (the diff is also
written to ``--out`` for CI to upload as an artifact).

Usage::

    PYTHONPATH=src python benchmarks/perf_gate.py
    PYTHONPATH=src python benchmarks/perf_gate.py --tolerance 0.10
    PYTHONPATH=src python benchmarks/perf_gate.py --write-baseline
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "baseline_scorecard.json"


def build_combined_scorecard() -> Dict[str, object]:
    """All seven scorecards under stable top-level keys."""
    from repro.analysis.scorecard import build_scorecard
    from repro.cluster import build_cluster_scorecard
    from repro.index.scorecard import build_index_scorecard
    from repro.ingest import build_ingest_scorecard
    from repro.recovery.scorecard import build_recovery_scorecard
    from repro.serving.scorecard import build_serving_scorecard
    from repro.tenancy.scorecard import build_tenancy_scorecard

    return {
        "repro": json.loads(build_scorecard().to_json()),
        "serving": build_serving_scorecard(),
        "cluster": build_cluster_scorecard(),
        "ingest": build_ingest_scorecard(),
        "recovery": build_recovery_scorecard(),
        "index": build_index_scorecard(),
        "tenancy": build_tenancy_scorecard(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=pathlib.Path, default=BASELINE_PATH,
        help="checked-in baseline scorecard JSON",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.10,
        help="relative drift tolerance per numeric leaf",
    )
    parser.add_argument(
        "--out", type=pathlib.Path,
        default=RESULTS_DIR / "perf_gate_diff.json",
        help="where to write the diff artifact",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="regenerate the baseline instead of gating",
    )
    args = parser.parse_args(argv)

    from repro.serving.scorecard import compare_scorecards, flatten

    current = build_combined_scorecard()
    if args.write_baseline:
        args.baseline.parent.mkdir(exist_ok=True)
        args.baseline.write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n"
        )
        print(f"baseline written: {args.baseline} "
              f"({len(flatten(current))} leaves)")
        return 0

    if not args.baseline.exists():
        print(f"error: baseline {args.baseline} not found; run with "
              f"--write-baseline first", file=sys.stderr)
        return 2
    baseline = json.loads(args.baseline.read_text())
    drifts = compare_scorecards(baseline, current, tolerance=args.tolerance)

    args.out.parent.mkdir(exist_ok=True)
    args.out.write_text(json.dumps({
        "tolerance": args.tolerance,
        "leaves_checked": len(flatten(baseline)),
        "drift_count": len(drifts),
        "drifts": [d.to_dict() for d in drifts],
    }, indent=2, sort_keys=True) + "\n")

    checked = len(flatten(baseline))
    if not drifts:
        print(f"perf gate OK: {checked} leaves within "
              f"+/-{args.tolerance * 100:.0f}% of baseline")
        return 0
    print(f"perf gate FAILED: {len(drifts)} of {checked} leaves drifted "
          f"beyond +/-{args.tolerance * 100:.0f}% "
          f"(diff: {args.out})", file=sys.stderr)
    for d in drifts[:20]:
        ratio = f"{d.ratio:.3f}x" if d.ratio is not None else "-"
        print(f"  {d.status:10s} {d.key}: "
              f"baseline={d.baseline!r} current={d.current!r} ({ratio})",
              file=sys.stderr)
    if len(drifts) > 20:
        print(f"  ... and {len(drifts) - 20} more", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
