"""Extension: host I/O interference policies.

The paper's accelerators preempt regular I/O during queries ("the SSD
controller responds to regular read/write operations with a busy
signal", §4.5).  This bench quantifies the policy space: per application
at the channel level, the scan slowdown and host throughput under
preempt / fair-share / host-priority arbitration at increasing host
offered load — making the paper's choice (preempt) legible as a design
point rather than an assumption.
"""


from repro.analysis import Table
from repro.core import DeepStoreSystem
from repro.ssd.host_io import HostIoWorkload, InterferenceModel
from repro.workloads import ALL_APPS

from conftest import emit

LOADS = (0.1, 0.3, 0.5)
POLICIES = ("preempt", "share", "host-priority")


def scan_io_fraction(app, meta):
    """How much of the app's channel-level scan is flash-I/O time."""
    system = DeepStoreSystem.at_level("channel")
    latency = system.query_latency(app, meta)
    io = latency.io_spf
    busy = max(io, latency.compute_spf, latency.bus_weight_spf)
    return min(1.0, io / busy)


def sweep(paper_databases):
    model = InterferenceModel()
    table = Table(
        "Extension: scan slowdown under host I/O (policy @ offered load)",
        ["App", "io share"] + [f"{p}@{int(ld * 100)}%" for p in POLICIES for ld in LOADS],
    )
    results = {}
    for name, app in ALL_APPS.items():
        meta = paper_databases[name]
        io_frac = scan_io_fraction(app, meta)
        cells = []
        for policy in POLICIES:
            for load in LOADS:
                outcome = model.evaluate(
                    HostIoWorkload(load), policy, scan_io_fraction=io_frac
                )
                results.setdefault(name, {})[(policy, load)] = outcome
                cells.append(f"{outcome.scan_slowdown:4.2f}")
        table.add_row(name, f"{io_frac:4.2f}", *cells)
    return table, results


def test_ext_interference(benchmark, paper_databases):
    table, results = benchmark.pedantic(
        sweep, args=(paper_databases,), rounds=1, iterations=1
    )
    emit(table, "ext_interference.txt")
    for name, rows in results.items():
        # preempt (the paper's policy) keeps every scan at full speed
        for load in LOADS:
            assert rows[("preempt", load)].scan_slowdown == 1.0
        # sharing hurts I/O-bound scans more than compute-bound ones
        assert rows[("share", 0.5)].scan_slowdown >= 1.0
    textqa = results["textqa"][("share", 0.5)].scan_slowdown
    mir = results["mir"][("share", 0.5)].scan_slowdown
    assert textqa > mir  # TextQA is the most flash-bound scan
