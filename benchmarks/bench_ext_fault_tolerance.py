"""Extension: fault tolerance — latency/availability vs fault rate.

Not a paper figure: the paper assumes fault-free hardware.  This
benchmark exercises the ``repro.faults`` layer the way a reliability
evaluation would: sweep the NAND read-retry rate and the chip
hard-failure rate, and plot query latency and availability against
them; then kill one channel accelerator outright and check the device
degrades (slower, never wrong).

Because occurrence draws are threshold tests on a per-site hash
(``u < rate``) with depths drawn from an independent hash stream, the
set of faulting sites at a lower rate is a subset of the set at a
higher rate — so the curves here are monotone per-realization, not just
in expectation, and the assertions can be exact rather than
statistical.
"""

import numpy as np
import pytest

from conftest import emit

from repro.analysis import Table
from repro.analysis.reliability import run_reliability_trial
from repro.core.scheduler import degraded_topk, plan_degraded_scan
from repro.core.topk import merge_topk
from repro.faults import FaultPlan
from repro.ssd import Ssd
from repro.workloads import ALL_APPS

RETRY_RATES = [0.0, 0.01, 0.05, 0.10, 0.25]
CHIP_RATES = [0.0, 0.005, 0.02, 0.05]
FEATURES = 8_000
QUERIES = 3
SEED = 7


@pytest.fixture(scope="module")
def small_db():
    """One small database + app pair sized for full event-driven runs."""
    app = ALL_APPS["tir"]
    ssd = Ssd()
    meta = ssd.ftl.create_database(app.feature_bytes, FEATURES)
    return app, meta


def test_fault_latency_vs_retry_rate(benchmark, small_db):
    app, meta = small_db

    def sweep():
        reports = {}
        for rate in RETRY_RATES:
            plan = FaultPlan(read_retry_rate=rate, crc_error_rate=rate / 2)
            reports[rate] = run_reliability_trial(
                app, meta, plan, queries=QUERIES, seed=SEED
            )
        return reports

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        "Fault tolerance: latency vs NAND read-retry rate (tir, "
        f"{FEATURES} features)",
        ["Retry rate", "Mean", "p99 inflation", "Retry pages", "Slowdown"],
    )
    for rate, report in reports.items():
        table.add_row(
            f"{rate:.2f}",
            f"{report.mean_seconds * 1e3:.3f}ms",
            f"{report.p99_inflation:.3f}x",
            report.counters.get("pages_with_retry", 0),
            f"{report.slowdown:.3f}x",
        )
    emit(table, "ext_fault_retry_rate.txt")

    # zero-fault plan is bit-identical to the healthy baseline
    zero = reports[0.0]
    assert zero.slowdown == 1.0
    assert zero.p99_inflation == 1.0
    # realized latency is monotone in the fault rate (subset property)
    means = [reports[r].mean_seconds for r in RETRY_RATES]
    assert means == sorted(means)
    assert means[-1] > means[0]
    # soft faults never lose data
    assert all(reports[r].availability == 1.0 for r in RETRY_RATES)


def test_fault_availability_vs_chip_rate(benchmark, small_db):
    app, meta = small_db

    def sweep():
        reports = {}
        for rate in CHIP_RATES:
            plan = FaultPlan(chip_failure_rate=rate)
            reports[rate] = run_reliability_trial(
                app, meta, plan, queries=1, seed=SEED
            )
        return reports

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        "Fault tolerance: availability vs chip hard-failure rate (tir)",
        ["Chip-failure rate", "Availability", "Failed reads", "Mean latency"],
    )
    for rate, report in reports.items():
        table.add_row(
            f"{rate:.3f}",
            f"{report.availability * 100:.4f}%",
            report.counters.get("failed_reads", 0),
            f"{report.mean_seconds * 1e3:.3f}ms",
        )
    emit(table, "ext_fault_chip_rate.txt")

    assert reports[0.0].availability == 1.0
    # more dead chips can only lose more pages (ambient draws nest)
    avail = [reports[r].availability for r in CHIP_RATES]
    assert avail == sorted(avail, reverse=True)
    assert avail[-1] < 1.0


def test_fault_single_accel_failure_degrades_not_corrupts(benchmark, small_db):
    app, meta = small_db

    def run_pair():
        healthy = run_reliability_trial(
            app, meta, FaultPlan.none(), queries=1, seed=SEED
        )
        degraded = run_reliability_trial(
            app,
            meta,
            FaultPlan.none().fail_accelerator(5),
            queries=1,
            seed=SEED,
        )
        return healthy, degraded

    healthy, degraded = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    table = Table(
        "Fault tolerance: one channel accelerator hard-failed (tir)",
        ["Mode", "Latency", "Slowdown", "Availability", "Remapped pages"],
    )
    table.add_row("healthy", f"{healthy.mean_seconds * 1e3:.3f}ms", "1.000x",
                  "100%", 0)
    table.add_row("accel 5 dead", f"{degraded.mean_seconds * 1e3:.3f}ms",
                  f"{degraded.slowdown:.3f}x",
                  f"{degraded.availability * 100:.0f}%",
                  degraded.remapped_pages)
    emit(table, "ext_fault_degraded.txt")

    # degraded mode is slower but loses nothing: the dead channel's
    # stripe is adopted by survivors, so every page is still scanned
    assert degraded.mean_seconds > healthy.mean_seconds
    assert degraded.availability == 1.0
    assert degraded.remapped_pages > 0
    assert list(degraded.failed_channels) == [5]

    # and the *answer* is unchanged: the degraded scan plan returns the
    # exact same top-K the healthy partitioning does, ties included
    rng = np.random.default_rng(SEED)
    scores = rng.normal(size=FEATURES).astype(np.float32)
    plan = plan_degraded_scan(FEATURES, 32, [5])
    got = degraded_topk(scores, plan, k=10)
    want = merge_topk([list(zip(scores.tolist(), range(FEATURES)))], 10)
    assert got == want
