"""Ablation: arithmetic precision (paper §7's deferred optimization).

The paper runs everything in fp32 and notes that quantization "can be
incorporated into the DeepStore architecture to gain higher performance
and energy efficiency".  This ablation quantizes each trained SCN to fp16
and int8 and re-evaluates the channel-level speedup, energy efficiency,
and — because the models execute for real — the pair accuracy.

The headline is ReId: its 10 MB fp32 FC streams from DRAM per feature,
but at fp16/int8 the weights fit the shared scratchpad and the speedup
jumps from ~2x to ~9x, with no measured accuracy loss.
"""

import numpy as np

from repro.analysis import Table, energy_efficiency
from repro.core import DeepStoreSystem
from repro.nn.quantization import accuracy_delta, quantize_graph
from repro.nn.training import make_pair_dataset
from repro.workloads import ALL_APPS, train_scn

from conftest import emit

PRECISIONS = ("fp32", "fp16", "int8")
#: apps whose SCNs train fast enough for accuracy measurement in-bench
ACCURACY_APPS = ("tir", "textqa")


def sweep(paper_databases, volta_baseline):
    table = Table(
        "Ablation: precision at the channel level (speedup | perf/W vs Volta)",
        ["App"] + list(PRECISIONS) + ["int8 weights"],
    )
    speedups = {}
    for name, app in ALL_APPS.items():
        meta = paper_databases[name]
        base_graph = app.build_scn()
        gpu = volta_baseline.query_cost(app, meta.feature_count)
        cells = []
        for precision in PRECISIONS:
            graph = (
                base_graph if precision == "fp32"
                else quantize_graph(base_graph, precision)
            )
            system = DeepStoreSystem.at_level("channel")
            lat = system.query_latency(app, meta, graph=graph)
            speedup = gpu.seconds / lat.total_seconds
            ee = energy_efficiency(
                gpu.seconds, volta_baseline.gpu_only_power_w(),
                lat.total_seconds, lat.power_w,
            )
            speedups.setdefault(name, {})[precision] = speedup
            cells.append(f"{speedup:5.2f}x | {ee:5.1f}x")
        int8_mb = quantize_graph(base_graph, "int8").weight_bytes() / 1e6
        table.add_row(name, *cells, f"{int8_mb:.2f}MB")
    return table, speedups


def accuracy_table():
    rng = np.random.default_rng(42)
    table = Table(
        "Ablation: quantized pair accuracy (simulated quantization)",
        ["App", "fp32", "fp16", "int8"],
    )
    accuracies = {}
    for name in ACCURACY_APPS:
        app = ALL_APPS[name]
        trained = train_scn(app, seed=0)
        q, f, y = make_pair_dataset(rng, app.feature_floats, 600)
        base = None
        cells = []
        for precision in PRECISIONS:
            if precision == "fp32":
                base, _ = accuracy_delta(trained, trained, q, f, y)
                acc = base
            else:
                _, acc = accuracy_delta(
                    trained, quantize_graph(trained, precision), q, f, y
                )
            accuracies.setdefault(name, {})[precision] = acc
            cells.append(f"{acc * 100:5.1f}%")
        table.add_row(name, *cells)
    return table, accuracies


def test_ablation_precision(benchmark, paper_databases, volta_baseline):
    table, speedups = benchmark.pedantic(
        sweep, args=(paper_databases, volta_baseline), rounds=1, iterations=1,
    )
    emit(table, "ablation_precision.txt")
    # narrow precision never hurts, and ReId's residency cliff flips
    for name, row in speedups.items():
        assert row["int8"] >= row["fp32"] * 0.99
    assert speedups["reid"]["int8"] > speedups["reid"]["fp32"] * 3.0
    # already-flash-bound apps gain little (the scan is the wall)
    assert speedups["textqa"]["int8"] < speedups["textqa"]["fp32"] * 1.3


def test_ablation_precision_accuracy(benchmark):
    table, accuracies = benchmark.pedantic(accuracy_table, rounds=1, iterations=1)
    emit(table, "ablation_precision_accuracy.txt")
    for name, row in accuracies.items():
        assert row["fp16"] > row["fp32"] - 0.02, name
        assert row["int8"] > row["fp32"] - 0.05, name
