"""Extension: multi-query scan sharing.

One database pass can score every pending query against each feature
vector as it streams from flash.  This bench sweeps the co-scheduled
query count per application at the channel level and reports batch
speedup over back-to-back execution plus the "free concurrency" each
workload's bottleneck hands out.
"""


from repro.analysis import Table
from repro.core.scheduler import MultiQueryScheduler
from repro.workloads import ALL_APPS

from conftest import emit

BATCHES = (1, 2, 4, 8, 16, 32)


def sweep(paper_databases):
    scheduler = MultiQueryScheduler()
    table = Table(
        "Extension: shared-scan batch speedup (channel level)",
        ["App"] + [f"n={n}" for n in BATCHES] + ["free (<=5% cost)"],
    )
    results = {}
    for name, app in ALL_APPS.items():
        meta = paper_databases[name]
        graph = app.build_scn()
        cells = []
        for n in BATCHES:
            report = scheduler.shared_scan(app, meta, n, graph=graph)
            results.setdefault(name, {})[n] = report
            cells.append(f"{report.batch_speedup:5.2f}x")
        free = scheduler.free_concurrency(app, meta, graph=graph)
        results[name]["free"] = free
        table.add_row(name, *cells, str(free))
    return table, results


def test_ext_multiquery(benchmark, paper_databases):
    table, results = benchmark.pedantic(
        sweep, args=(paper_databases,), rounds=1, iterations=1
    )
    emit(table, "ext_multiquery.txt")
    for name, rows in results.items():
        # batching is never worse than serial execution
        speedups = [rows[n].batch_speedup for n in BATCHES]
        assert all(s >= 0.95 for s in speedups)
        assert speedups == sorted(speedups)
    # the stream-bound app (ReId) shares best; the compute-bound MIR worst
    assert results["reid"][8].batch_speedup > results["mir"][8].batch_speedup
    assert results["reid"]["free"] >= 4
