"""Extension: crash recovery & cluster hardening under a chaos day.

The paper's device never fails; a production day does.  This bench
runs the two scripted chaos tracks (:mod:`repro.chaos`) at the exact
perf-gate configuration and asserts the claims the recovery subsystem
stands on:

* **durability** — every mutation whose WAL program completed before a
  crash survives the replay-based restart, and the recovered store is
  **bit-equal** to the shadow oracle (ids, row bytes, and top-K
  scores);
* **honest WAL pricing** — the log's write amplification is the
  page-mapped FTL's own bookkeeping over the real ingest write path,
  not an assumed constant;
* **availability** — replica kill storms are absorbed by failover,
  circuit breakers, and the brownout ladder: queries keep being served
  (possibly as structured partial answers) and every healed outage is
  priced with a real MTTR including catch-up resync.

The emitted tables mirror the recovery scorecard the CI perf gate
diffs, and ``recovery_scorecard.json`` is the uploaded CI artifact.
"""

import json

from repro.analysis import Table
from repro.chaos import ChaosConfig, run_cluster_chaos, run_durability_chaos
from repro.recovery.scorecard import SCORECARD_SEED, build_recovery_scorecard

from conftest import RESULTS_DIR, emit

#: the bench runs the exact gate configuration: one deterministic day,
#: one artifact, no drift between what CI gates and what this asserts
CONFIG = ChaosConfig(seed=SCORECARD_SEED)


def scaled_config(scale: int = 1) -> ChaosConfig:
    """The gate config with the day's event counts scaled up.

    ``scale=1`` is ``CONFIG`` itself (the scorecard day); larger scales
    multiply mutations, rows, and query pressure while keeping fault
    structure (crash/kill counts, compaction points) fixed.
    """
    if scale == 1:
        return CONFIG
    from dataclasses import replace

    return replace(
        CONFIG,
        n_base=CONFIG.n_base * scale,
        mutations=CONFIG.mutations * scale,
        cluster_rows=CONFIG.cluster_rows * scale,
        queries=CONFIG.queries * scale,
        bursts=CONFIG.bursts * scale,
    )


def run_day(scale: int = 1):
    config = scaled_config(scale)
    return (
        run_durability_chaos(config),
        run_cluster_chaos(config),
    )


def durability_table(report):
    table = Table(
        f"Extension: crash durability (seed {CONFIG.seed}, "
        f"{len(report.crashes)} crashes, "
        f"{report.mutations_acked} acked mutations)",
        ["crash at (ms)", "replayed", "MTTR (ms)", "bit-equal"],
    )
    for c in report.crashes:
        table.add_row(
            f"{c.at_s * 1e3:13.2f}",
            f"{c.records_replayed:8d}",
            f"{c.mttr_s * 1e3:9.4f}",
            f"{'yes' if c.bit_equal else 'NO':>9s}",
        )
    return table


def wal_table(report):
    table = Table(
        "Extension: WAL & checkpoint write path",
        ["quantity", "value"],
    )
    rows = [
        ("WAL records logged", f"{report.wal_records}"),
        ("WAL bytes logged", f"{report.wal_bytes_logged}"),
        ("WAL write amplification",
         f"{report.wal_write_amplification:.3f}"),
        ("checkpoints taken", f"{report.checkpoints_taken}"),
        ("mutations acked / lost unacked",
         f"{report.mutations_acked} / {report.mutations_lost_unacked}"),
        ("durability", f"{report.durability:.3f}"),
        ("delta-skip recall", f"{report.delta_skip_recall:.3f}"),
    ]
    for name, value in rows:
        table.add_row(f"{name:32s}", value)
    return table


def availability_table(report):
    table = Table(
        f"Extension: availability under kill storms (seed {CONFIG.seed}, "
        f"{report.queries} queries)",
        ["quantity", "value"],
    )
    rows = [
        ("served / shed / failed",
         f"{report.served} / {report.shed} / {report.failed}"),
        ("availability", f"{report.availability:.3f}"),
        ("recall under chaos", f"{report.recall_mean:.3f}"),
        ("partial answers", f"{report.partial}"),
        ("outages healed", f"{len(report.outages)}"),
        ("resync records replayed",
         f"{sum(o.resync_records for o in report.outages)}"),
        ("MTTR mean (ms)",
         f"{sum(o.mttr_s for o in report.outages) * 1e3 / max(1, len(report.outages)):.3f}"),
        ("failovers", f"{report.failovers}"),
        ("breaker transitions", f"{report.breaker_transitions}"),
        ("brownout peak level", f"{report.max_brownout_level}"),
    ]
    for name, value in rows:
        table.add_row(f"{name:28s}", value)
    return table


def test_ext_recovery_chaos_day(benchmark, bench_scale):
    durability, availability = benchmark.pedantic(
        run_day, args=(bench_scale,), rounds=1, iterations=1
    )
    emit(durability_table(durability), "ext_recovery_durability.txt")
    emit(wal_table(durability), "ext_recovery_wal.txt")
    emit(availability_table(availability), "ext_recovery_availability.txt")

    # --- durability: every crash recovered bit-equal, nothing acked lost
    assert durability.crashes and durability.all_bit_equal
    assert durability.durability == 1.0
    assert all(c.mttr_s > 0 for c in durability.crashes)
    assert all(c.records_replayed >= 0 for c in durability.crashes)

    # --- WAL pricing: measured over the real write path, never < 1
    assert durability.wal_write_amplification >= 1.0
    assert durability.wal_bytes_logged > 0
    assert durability.checkpoints_taken >= 1

    # --- availability: the day is survivable, not free
    assert availability.served + availability.shed \
        + availability.failed == availability.queries
    assert availability.failed == 0  # hardened path never drops a query
    assert 0.0 < availability.availability <= 1.0
    assert 0.0 < availability.recall_mean <= 1.0
    assert availability.outages  # kills healed and were priced
    assert all(o.mttr_s > 0 for o in availability.outages)
    assert availability.breaker_transitions > 0  # breakers actually fired


def test_ext_recovery_scorecard_artifact():
    """The gate leg is bit-stable and lands in results/ for CI upload."""
    card = build_recovery_scorecard()
    again = build_recovery_scorecard()
    assert card == again
    text = json.dumps(card, indent=2, sort_keys=True) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "recovery_scorecard.json").write_text(text)
    assert card["durability"]["bit_equal"] == 1
    assert card["durability"]["durability"] == 1.0
    assert card["durability"]["wal_write_amplification"] >= 1.0
    assert 0.0 < card["availability"]["availability"] <= 1.0
