"""Fig. 2: GPU+SSD execution-time breakdown per batch size and GPU.

For each application and Fig.-2 batch size, reports the compute /
CudaMemcpy / SSD-read shares and total batch time for the Pascal and
Volta systems.  The headline claim: SSD read is 56-90% of execution
time, and the newer GPU does not change the total.
"""

from repro.analysis import Table, format_seconds
from repro.baseline import GpuSsdSystem, PASCAL_TITAN_XP, VOLTA_TITAN_V
from repro.workloads import ALL_APPS

from conftest import emit


def sweep():
    systems = {
        "Pascal": GpuSsdSystem(PASCAL_TITAN_XP),
        "Volta": GpuSsdSystem(VOLTA_TITAN_V),
    }
    table = Table(
        "Fig. 2: GPU+SSD time breakdown (percent of batch time)",
        ["App", "Batch", "GPU", "SSD read %", "Memcpy %", "Compute %", "Total"],
    )
    io_fractions = []
    for name, app in ALL_APPS.items():
        graph = app.build_scn()
        for batch in app.fig2_batches:
            for gpu_name, system in systems.items():
                bd = system.batch_breakdown(app, batch, graph=graph)
                f = bd.fractions()
                io_fractions.append(f["ssd_read"])
                table.add_row(
                    name,
                    batch,
                    gpu_name,
                    f"{f['ssd_read'] * 100:5.1f}",
                    f"{f['memcpy'] * 100:5.1f}",
                    f"{f['compute'] * 100:5.1f}",
                    format_seconds(bd.serial_total_s),
                )
    return table, io_fractions


def test_fig2_breakdown(benchmark):
    table, io_fractions = benchmark(sweep)
    emit(table, "fig2_breakdown.txt")
    # the paper's band is 56-90%; assert ours stays in a 50-95% envelope
    assert min(io_fractions) > 0.50
    assert max(io_fractions) < 0.95
    assert max(io_fractions) > 0.80  # some app is heavily I/O bound
