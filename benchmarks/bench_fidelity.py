"""Cross-fidelity validation: analytic models vs discrete-event replay.

Every closed-form rate in the repo has an event-driven counterpart; this
bench runs them side by side and asserts agreement, making the fidelity
contract a regenerable artifact rather than scattered test assertions:

* whole-device channel-level query (all five apps);
* chip-level channel scan with real weight broadcasts (FC apps);
* raw SSD sequential-scan bandwidth.
"""


from repro.analysis import Table
from repro.core import DeepStoreSystem, EventQuerySimulator
from repro.core.event_query import simulate_chip_channel
from repro.ssd import Ssd
from repro.workloads import ALL_APPS, get_app

from conftest import emit


def channel_rows():
    rows = []
    for name, app in ALL_APPS.items():
        ssd = Ssd()
        meta = ssd.ftl.create_database(app.feature_bytes, 30_000)
        graph = app.build_scn()
        analytic = DeepStoreSystem.at_level("channel").query_latency(
            app, meta, graph=graph
        ).total_seconds
        event = EventQuerySimulator().run(app, meta, graph=graph).total_seconds
        rows.append((name, "channel query", analytic, event))
    return rows


def chip_rows():
    rows = []
    for name in ("mir", "estp", "tir", "textqa"):
        app = get_app(name)
        ssd = Ssd()
        meta = ssd.ftl.create_database(app.feature_bytes, 1_000_000)
        lat = DeepStoreSystem.at_level("chip").query_latency(app, meta)
        analytic = max(lat.io_spf + lat.bus_weight_spf, lat.compute_spf)
        event = simulate_chip_channel(app, meta, max_pages=256).seconds_per_feature
        rows.append((name, "chip s/feature", analytic, event))
    return rows


def bandwidth_rows():
    ssd = Ssd()
    meta = ssd.ftl.create_database(2048, 300_000)
    measured = ssd.measure_scan_bandwidth(meta, window_pages=2048)
    analytic = min(ssd.config.internal_bandwidth, ssd.config.internal_bandwidth)
    return [("-", "scan bandwidth", analytic, measured)]


def sweep():
    table = Table(
        "Fidelity: analytic vs event-driven",
        ["App", "Quantity", "Analytic", "Event", "Event/Analytic"],
    )
    ratios = []
    for name, quantity, analytic, event in (
        channel_rows() + chip_rows() + bandwidth_rows()
    ):
        ratio = event / analytic
        ratios.append((quantity, ratio))
        table.add_row(name, quantity, f"{analytic:.4g}", f"{event:.4g}",
                      f"{ratio:5.2f}")
    return table, ratios


def test_fidelity(benchmark):
    table, ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(table, "fidelity.txt")
    for quantity, ratio in ratios:
        assert 0.7 < ratio < 1.25, f"{quantity}: {ratio:.2f}"
