"""Fig. 8 / Table 4: speedup and energy efficiency vs GPU+SSD.

For every application and accelerator level, regenerates the speedup
over the Volta GPU+SSD system (and the wimpy-core slowdown), side by
side with the paper's published numbers.  Shape assertions: the channel
level always wins, the SSD level is always slower than the GPU, ReId is
the worst channel-level app and TextQA the best, and ReId cannot run at
the chip level.
"""


from repro.analysis import Table, compare_levels
from repro.baseline import WimpyCoreModel
from repro.workloads import ALL_APPS

from conftest import PAPER_ENERGY, PAPER_SPEEDUP, emit


def evaluate(paper_databases, volta_baseline):
    wimpy = WimpyCoreModel()
    table = Table(
        "Fig. 8 / Table 4: speedup and perf/W vs GPU+SSD (measured | paper)",
        ["App", "Wimpy", "SSD-lvl", "Channel", "Chip",
         "EE SSD-lvl", "EE Channel", "EE Chip"],
    )
    cells = {}
    for name, app in ALL_APPS.items():
        meta = paper_databases[name]
        row = {c.level: c for c in compare_levels(app, meta, baseline=volta_baseline)}
        cells[name] = row
        wimpy_speedup = volta_baseline.seconds_per_feature(app) / \
            wimpy.seconds_per_feature(app)

        def fmt(level, paper, energy=False):
            cell = row[level]
            if not cell.supported:
                return "n/a | n/a"
            value = cell.energy_efficiency if energy else cell.speedup
            return f"{value:6.2f}x | {paper}"

        table.add_row(
            name,
            f"{wimpy_speedup:5.2f}x",
            fmt("ssd", PAPER_SPEEDUP[name]["ssd"]),
            fmt("channel", PAPER_SPEEDUP[name]["channel"]),
            fmt("chip", PAPER_SPEEDUP[name]["chip"]),
            fmt("ssd", PAPER_ENERGY[name]["ssd"], energy=True),
            fmt("channel", PAPER_ENERGY[name]["channel"], energy=True),
            fmt("chip", PAPER_ENERGY[name]["chip"], energy=True),
        )
    return table, cells


def test_fig8_table4(benchmark, paper_databases, volta_baseline):
    table, cells = benchmark.pedantic(
        evaluate, args=(paper_databases, volta_baseline), rounds=1, iterations=1,
    )
    emit(table, "fig8_table4_speedup.txt")

    channel = {n: row["channel"].speedup for n, row in cells.items()}
    assert all(row["ssd"].speedup < 1.0 for row in cells.values())
    assert all(
        row["channel"].speedup > row["chip"].speedup
        for row in cells.values() if row["chip"].supported
    )
    assert min(channel, key=channel.get) == "reid"
    assert max(channel, key=channel.get) == "textqa"
    assert not cells["reid"]["chip"].supported
    # each channel-level speedup within 2.5x of the published value
    for name, value in channel.items():
        paper = PAPER_SPEEDUP[name]["channel"]
        assert paper / 2.5 < value < paper * 2.5, f"{name}: {value:.2f}"
