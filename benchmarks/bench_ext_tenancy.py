"""Extension: the multi-tenant production day on the shared plane.

The paper serves one anonymous query stream; a production deployment
serves *tenants*.  This bench runs the canonical three-tenant 24-hour
day (:mod:`repro.tenancy`) at the exact perf-gate configuration —
search flash crowd, scripted shard-replica failure, skewed live ingest
— and asserts the claims the tenancy control plane stands on:

* **conservation** — every tenant's admission ledger balances
  bit-exactly (``offered == admitted + rejected`` and ``admitted ==
  completed + evicted + expired + depth``) across burst, failure, and
  autoscaling;
* **the control loop closes** — the flash crowd trips the burn-rate
  alert, the autoscaler grows the pool, and capacity returns to
  baseline after the burst (no flapping: scale-ups == scale-downs);
* **isolation is measured, not asserted** — the paired fixed-capacity
  runs (aggressor in / surgically removed, victim arrivals
  byte-identical) price the noisy-neighbor tax as a p99 ratio >= 1;
* **ingest is live** — the write tenant's skewed keys trip real
  rebalances whose row moves are priced as backend-occupying
  maintenance.

The emitted table mirrors the tenancy scorecard the CI perf gate
diffs, and ``tenancy_scorecard.json`` is the uploaded CI artifact.
"""

import json

from repro.analysis import Table
from repro.tenancy.day import default_production_config, run_production_day
from repro.tenancy.scorecard import SCORECARD_SEED, build_tenancy_scorecard

from conftest import RESULTS_DIR, emit

#: the bench runs the exact gate configuration: one deterministic day,
#: one artifact, no drift between what CI gates and what this asserts
CONFIG = default_production_config(seed=SCORECARD_SEED)


def scaled_config(scale: int = 1):
    """The gate config with every tenant's offered load scaled up.

    ``scale=1`` is ``CONFIG`` itself (the scorecard day); larger scales
    multiply each tenant's ``base_qps`` while keeping the diurnal
    shape, burst windows, and fault script fixed.
    """
    if scale == 1:
        return CONFIG
    from dataclasses import replace

    return replace(CONFIG, tenants=tuple(
        replace(t, base_qps=t.base_qps * scale) for t in CONFIG.tenants
    ))


def run_day(scale: int = 1):
    return run_production_day(scaled_config(scale))


def tenants_table(report):
    day = report.result
    table = Table(
        f"Extension: multi-tenant production day (seed {CONFIG.seed}, "
        f"{day.peak_backends} peak backends, {day.alerts} alert(s))",
        ["tenant", "offered", "completed", "shed", "p99 (s)",
         "SLO attain", "goodput"],
    )
    for name, t in sorted(day.tenants.items()):
        table.add_row(
            f"{name:10s}",
            f"{t.offered:7d}",
            f"{t.completed:9d}",
            f"{t.shed:4d}",
            f"{t.p99_s:7.3f}",
            f"{t.slo_attainment:10.4f}",
            f"{t.goodput_fraction:7.4f}",
        )
    return table


def control_table(report):
    day = report.result
    table = Table(
        "Extension: control plane (autoscaler, ingest, isolation)",
        ["quantity", "value"],
    )
    rows = [
        ("scale-ups / scale-downs",
         f"{sum(1 for a in day.actions if a.kind == 'scale_up')} / "
         f"{sum(1 for a in day.actions if a.kind == 'scale_down')}"),
        ("alerts / first alert (h)",
         f"{day.alerts} / {day.first_alert_s / 3600.0:.2f}"),
        ("peak / final backends",
         f"{day.peak_backends} / {day.final_backends}"),
        ("rebalances / rows moved",
         f"{day.rebalances} / {day.rebalance_rows_moved}"),
        ("mean batch", f"{day.mean_batch:.3f}"),
        ("utilization", f"{day.utilization:.4f}"),
    ]
    for victim, ratio in sorted(report.isolation_ratios().items()):
        rows.append(
            (f"isolation p99 ratio: {victim}", f"{ratio:.3f}")
        )
    for name, value in rows:
        table.add_row(f"{name:30s}", value)
    return table


def test_ext_tenancy_production_day(benchmark, bench_scale):
    report = benchmark.pedantic(
        run_day, args=(bench_scale,), rounds=1, iterations=1
    )
    emit(tenants_table(report), "ext_tenancy_tenants.txt")
    emit(control_table(report), "ext_tenancy_control.txt")
    day = report.result

    # --- conservation: every ledger balances bit-exactly all day
    assert day.conserved
    for t in day.tenants.values():
        assert t.offered > 0 and t.completed > 0

    # --- the control loop closes: burst detected, absorbed, released
    ups = [a for a in day.actions if a.kind == "scale_up"]
    downs = [a for a in day.actions if a.kind == "scale_down"]
    assert ups, "the flash crowd must trip the burn scaler"
    assert day.alerts >= 1
    assert day.peak_backends > 1
    assert len(ups) == len(downs)  # capacity returned: no flapping
    assert day.final_backends == CONFIG.initial_backends

    # --- isolation: paired runs exist and price the aggressor tax
    ratios = report.isolation_ratios()
    assert report.aggressor == "search"
    assert set(ratios) == {"analytics", "ingestpipe"}
    assert all(r >= 0.99 for r in ratios.values())

    # --- live ingest tripped priced rebalances
    assert day.rebalances >= 1
    assert day.rebalance_rows_moved > 0
    assert day.tenants["ingestpipe"].writes_completed > 0


def test_ext_tenancy_scorecard_artifact():
    """The gate leg is bit-stable and lands in results/ for CI upload."""
    card = build_tenancy_scorecard()
    again = build_tenancy_scorecard()
    assert card == again
    text = json.dumps(card, indent=2, sort_keys=True) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "tenancy_scorecard.json").write_text(text)
    assert card["day"]["conserved"] == 1
    assert card["aggressor"] == "search"
    assert card["day"]["peak_backends"] >= 1
