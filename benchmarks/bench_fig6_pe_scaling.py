"""Fig. 6: systolic-array speedup vs number of PEs.

Sweeps 128 to 32K PEs, taking the best aspect ratio at each point, for
the largest fully-connected and convolutional layers among the studied
applications.  The FC curve saturates early (array width covers the
layer's outputs); the ConvD curve keeps gaining until ~1-4K PEs.
"""

from repro.analysis import Table
from repro.core.dse import explore_pe_scaling

from conftest import emit


def sweep():
    fc = explore_pe_scaling("fc")
    conv = explore_pe_scaling("conv")
    table = Table(
        "Fig. 6: speedup vs #PEs (best aspect ratio at each point)",
        ["#PEs", "FC speedup", "FC shape", "Conv speedup", "Conv shape"],
    )
    for pf, pc in zip(fc, conv):
        table.add_row(
            pf.num_pes,
            f"{pf.speedup:5.2f}x",
            f"{pf.rows}x{pf.cols}",
            f"{pc.speedup:5.2f}x",
            f"{pc.rows}x{pc.cols}",
        )
    return table, fc, conv


def test_fig6_pe_scaling(benchmark):
    table, fc, conv = benchmark(sweep)
    emit(table, "fig6_pe_scaling.txt")
    fc_by_pes = {p.num_pes: p.speedup for p in fc}
    conv_by_pes = {p.num_pes: p.speedup for p in conv}
    # FC saturates early, conv later (paper: 512 and 1024 PEs)
    assert fc_by_pes[32768] / fc_by_pes[512] < 1.7
    assert conv_by_pes[1024] / conv_by_pes[128] > 1.5
    assert conv_by_pes[32768] / conv_by_pes[16384] < 1.05
