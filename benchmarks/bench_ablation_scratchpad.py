"""Ablation: scratchpad capacity and the shared second-level scratchpad.

Two design choices from §4.5 isolated:

1. **channel-level L1 size** — sweeping 128 KB to 2 MB shows the
   residency cliff: models whose largest layer stops fitting the
   (L1 + shared L2) capacity fall off to per-feature DRAM streaming;
2. **shared L2 on/off** — removing the SSD-level 8 MB scratchpad from the
   channel hierarchy ("improving the re-use of weights across
   channel-level accelerators") pushes every mid-sized model into
   streaming, quantifying the feature the paper highlights.
"""

import pytest

from repro.analysis import Table
from repro.core.placement import CHANNEL_LEVEL, SSD_LEVEL
from repro.ssd import SsdConfig
from repro.systolic import (
    GraphMapper,
    ScratchpadHierarchy,
    ScratchpadLevel,
    SystolicArray,
)
from repro.workloads import ALL_APPS

from conftest import emit

KB = 1024
MB = 1024 * 1024
L1_SIZES = (128 * KB, 256 * KB, 512 * KB, 1 * MB, 2 * MB)


def channel_mapper(l1_bytes, with_l2=True):
    ssd = SsdConfig()
    l1 = ScratchpadLevel(
        "channel-l1", l1_bytes,
        4 * CHANNEL_LEVEL.systolic.frequency_hz
        * (CHANNEL_LEVEL.systolic.rows + CHANNEL_LEVEL.systolic.cols),
    )
    l2 = (
        ScratchpadLevel("l2-ssd", SSD_LEVEL.scratchpad_bytes, ssd.dram_bandwidth)
        if with_l2 else None
    )
    dram = ScratchpadLevel("dram", ssd.dram_bytes, ssd.dram_bandwidth)
    return GraphMapper(
        SystolicArray(CHANNEL_LEVEL.systolic),
        ScratchpadHierarchy(l1, l2=l2, dram=dram),
        stream_window=2,
    )


def sweep_l1():
    table = Table(
        "Ablation: channel-level L1 size (us/feature; * = weights streamed)",
        ["App"] + [f"{size // KB}KB" for size in L1_SIZES],
    )
    curves = {}
    for name, app in ALL_APPS.items():
        graph = app.build_scn()
        cells = []
        for size in L1_SIZES:
            profile = channel_mapper(size).map_graph(graph)
            spf = profile.seconds_per_feature
            curves.setdefault(name, {})[size] = (spf, profile.bound)
            flag = "*" if profile.bound == "weight-stream" else ""
            cells.append(f"{spf * 1e6:8.2f}{flag}")
        table.add_row(name, *cells)
    return table, curves


def sweep_l2():
    table = Table(
        "Ablation: shared L2 on/off at the channel level (us/feature)",
        ["App", "with L2", "without L2", "slowdown"],
    )
    slowdowns = {}
    for name, app in ALL_APPS.items():
        graph = app.build_scn()
        with_l2 = channel_mapper(512 * KB, with_l2=True).map_graph(graph)
        without = channel_mapper(512 * KB, with_l2=False).map_graph(graph)
        slow = without.seconds_per_feature / with_l2.seconds_per_feature
        slowdowns[name] = slow
        table.add_row(
            name,
            f"{with_l2.seconds_per_feature * 1e6:8.2f}",
            f"{without.seconds_per_feature * 1e6:8.2f}",
            f"{slow:6.2f}x",
        )
    return table, slowdowns


def test_ablation_l1_size(benchmark):
    table, curves = benchmark(sweep_l1)
    emit(table, "ablation_scratchpad_l1.txt")
    # small apps are indifferent to L1 size (weights fit via L2 anyway)
    textqa = [curves["textqa"][s][0] for s in L1_SIZES]
    assert max(textqa) / min(textqa) < 1.05
    # ReId streams its 10 MB FC at every L1 size (even 2 MB)
    assert all(curves["reid"][s][1] == "weight-stream" for s in L1_SIZES)


def test_ablation_shared_l2(benchmark):
    table, slowdowns = benchmark(sweep_l2)
    emit(table, "ablation_scratchpad_l2.txt")
    # dropping the shared L2 hurts the mid-sized models badly...
    assert slowdowns["mir"] > 2.0
    assert slowdowns["estp"] > 2.0
    assert slowdowns["tir"] > 1.5
    # ...but not TextQA, whose 0.16 MB weights fit L1 outright
    assert slowdowns["textqa"] < 1.05
    # ReId streams either way
    assert slowdowns["reid"] == pytest.approx(1.0, rel=0.05)
