#!/usr/bin/env python
"""Wall-clock scorecard: how long every extension bench leg takes.

The perf gate (``perf_gate.py``) pins *simulated* results; this
harness pins *host* time.  It runs each ``bench_ext_*`` leg in-process
at 1x and 10x workload sizes, times it, and emits
``results/wallclock_scorecard.json``.  The CI ``timing-gate`` job
diffs that against the checked-in ``results/baseline_wallclock.json``
and fails when a leg regresses by more than the tolerance (default
1.5x).

Raw seconds do not transfer between machines, so the gate compares
**normalized** times: every leg is divided by a fixed synthetic
calibration workload (event-heap churn + small matmuls, the two
things the simulator actually does) measured on the same host in the
same run.  A leg is regressed when::

    new.seconds / new.calibration > tolerance * (old.seconds / old.calibration)

``--write-baseline`` regenerates the baseline after an intentional
change.  ``--compare-fastpath`` additionally times every leg with the
fast path disabled and records the measured speedups — the numbers
EXPERIMENTS.md reports.

Usage::

    python benchmarks/bench_wallclock.py                  # score + gate
    python benchmarks/bench_wallclock.py --write-baseline
    python benchmarks/bench_wallclock.py --compare-fastpath
"""

from __future__ import annotations

import argparse
import heapq
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

BENCH_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(BENCH_DIR))
sys.path.insert(0, str(BENCH_DIR.parent / "src"))

from repro.sim import fastpath  # noqa: E402

RESULTS_DIR = BENCH_DIR / "results"
SCORECARD_PATH = RESULTS_DIR / "wallclock_scorecard.json"
BASELINE_PATH = RESULTS_DIR / "baseline_wallclock.json"

#: per-leg regression tolerance on normalized time
DEFAULT_TOLERANCE = 1.5

#: workload scales every leg is timed at
DEFAULT_SCALES = (1, 10)


def _leg_runners() -> Dict[str, Callable[[int], object]]:
    """Name -> callable(scale) for every extension bench leg.

    Imports are deferred so ``--legs`` can skip a leg whose module
    fails to import on an exotic platform.
    """
    import bench_ext_cluster
    import bench_ext_ingest
    import bench_ext_obs
    import bench_ext_recovery
    import bench_ext_serving

    return {
        "serving": bench_ext_serving.run_variants,
        "cluster_scaling": bench_ext_cluster.run_scaling,
        "cluster_degraded": bench_ext_cluster.run_degraded,
        "ingest": bench_ext_ingest.run_loop,
        "recovery": bench_ext_recovery.run_day,
        "obs": bench_ext_obs.run_traced_day,
    }


def calibration_seconds(rounds: int = 3) -> float:
    """A fixed synthetic workload; the machine-speed yardstick.

    Event-heap churn plus small float64 matmuls — the same kinds of
    work the simulator's hot loops do — sized to take a few hundred
    milliseconds on a current core.  The minimum over ``rounds`` runs
    screens out scheduler noise.
    """
    best = float("inf")
    x = np.random.default_rng(0).normal(0.0, 1.0, (256, 64))
    for _ in range(rounds):
        t0 = time.perf_counter()
        heap: List[Tuple[int, int]] = []
        for i in range(120_000):
            heapq.heappush(heap, ((i * 2654435761) % 1000003, i))
        while heap:
            heapq.heappop(heap)
        acc = 0.0
        for _ in range(400):
            acc += float((x @ x.T).trace())
        best = min(best, time.perf_counter() - t0)
    return best


def time_leg(runner: Callable[[int], object], scale: int) -> float:
    """One timed run of a leg (memo tables cleared first)."""
    fastpath.clear_tables()
    t0 = time.perf_counter()
    runner(scale)
    return time.perf_counter() - t0


def build_scorecard(
    scales: Tuple[int, ...] = DEFAULT_SCALES,
    legs: Optional[List[str]] = None,
    compare_fastpath: bool = False,
) -> Dict[str, object]:
    """Time every leg at every scale; optionally both fast-path modes."""
    runners = _leg_runners()
    if legs:
        unknown = sorted(set(legs) - set(runners))
        if unknown:
            raise SystemExit(f"unknown legs: {', '.join(unknown)}")
        runners = {name: runners[name] for name in legs}
    # one unmeasured 1x pass per leg: the first run of a subsystem pays
    # lazy imports and allocator warmup that would otherwise be charged
    # to whichever timed leg happens to go first
    for runner in runners.values():
        runner(1)
    calibration = calibration_seconds()
    card: Dict[str, object] = {
        "calibration_seconds": calibration,
        "fastpath": fastpath.enabled(),
        "legs": {},
    }
    for name, runner in runners.items():
        for scale in scales:
            key = f"{name}@{scale}x"
            seconds = time_leg(runner, scale)
            entry: Dict[str, object] = {
                "seconds": seconds,
                "normalized": seconds / calibration,
            }
            if compare_fastpath:
                with fastpath.override(False):
                    off_seconds = time_leg(runner, scale)
                entry["fastpath_off_seconds"] = off_seconds
                entry["speedup"] = off_seconds / seconds if seconds else 1.0
            card["legs"][key] = entry  # type: ignore[index]
            print(f"  {key:24s} {seconds:8.3f}s", end="")
            if compare_fastpath:
                print(
                    f"  (off {entry['fastpath_off_seconds']:8.3f}s,"
                    f" {entry['speedup']:.2f}x)",
                    end="",
                )
            print(flush=True)
    return card


def gate(
    card: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Regressed-leg messages (empty when the gate passes).

    Legs present only on one side are ignored (adding a leg must not
    fail the gate until the baseline is regenerated).
    """
    failures: List[str] = []
    new_legs: Dict[str, Dict[str, float]] = card["legs"]  # type: ignore[assignment]
    old_legs: Dict[str, Dict[str, float]] = baseline["legs"]  # type: ignore[assignment]
    for key in sorted(set(new_legs) & set(old_legs)):
        new_norm = new_legs[key]["normalized"]
        old_norm = old_legs[key]["normalized"]
        if old_norm > 0 and new_norm > tolerance * old_norm:
            failures.append(
                f"{key}: normalized {new_norm:.2f} vs baseline "
                f"{old_norm:.2f} (> {tolerance:.2f}x)"
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scales", default=",".join(str(s) for s in DEFAULT_SCALES),
        help="comma-separated workload scales (default: 1,10)",
    )
    parser.add_argument(
        "--legs", default=None,
        help="comma-separated leg subset (default: all)",
    )
    parser.add_argument(
        "--out", type=Path, default=SCORECARD_PATH,
        help="scorecard output path",
    )
    parser.add_argument(
        "--baseline", type=Path, default=BASELINE_PATH,
        help="baseline to gate against",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="per-leg normalized-time regression tolerance",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the measured scorecard as the new baseline",
    )
    parser.add_argument(
        "--compare-fastpath", action="store_true",
        help="also time every leg with REPRO_FASTPATH off",
    )
    args = parser.parse_args(argv)

    scales = tuple(int(s) for s in args.scales.split(",") if s)
    legs = args.legs.split(",") if args.legs else None
    print("timing legs (fastpath "
          f"{'on' if fastpath.enabled() else 'off'}):")
    card = build_scorecard(
        scales=scales, legs=legs, compare_fastpath=args.compare_fastpath
    )
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(card, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")

    if args.write_baseline:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(
            json.dumps(card, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.baseline}")
        return 0
    if not args.baseline.exists():
        print(
            f"no baseline at {args.baseline}; run with --write-baseline",
            file=sys.stderr,
        )
        return 2
    baseline = json.loads(args.baseline.read_text())
    failures = gate(card, baseline, tolerance=args.tolerance)
    if failures:
        print("TIMING GATE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(
        f"timing gate passed ({len(set(card['legs']) & set(baseline['legs']))}"
        f" legs within {args.tolerance:.2f}x of baseline)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
