"""Extension: end-to-end query causality, attributed and alerted.

The paper's Fig. 2 attributes one device query's time to its phases.
This bench runs the production version of that argument end to end:

* **distributed tracing** — a hardened cluster day (hedging, retries,
  one dead replica) is traced into one causal span forest per query,
  exported as Chrome trace-event JSON (``dtrace.json`` CI artifact);
* **bit-exact attribution** — every query's critical path decomposes
  into named segments that sum with IEEE-754 ``==`` to the reported
  end-to-end seconds, and the fleet rollup answers *which segment
  dominates the p99 tail*;
* **SLO monitoring** — the chaos availability track feeds burn-rate
  alert rules; the scorecard gains a detection-time metric (first
  alert after the first kill), archived as ``slo_report.json``;
* **zero cost** — the traced run's scorecard block is byte-identical
  to the untraced one.
"""

import json

from repro.analysis import Table
from repro.chaos import ChaosConfig, run_cluster_chaos
from repro.cluster import ClusterConfig, DeepStoreCluster, RetryPolicy
from repro.obs import (
    FleetAttribution,
    TraceCollector,
    cluster_critical_path,
    dtrace_chrome,
)
from repro.recovery.scorecard import SCORECARD_SEED
from repro.workloads import get_app, train_scn

import numpy as np

from conftest import RESULTS_DIR, emit

#: the acceptance scenario: hedging + retries + one dead replica, so
#: every interesting segment kind shows up in the attribution
N_QUERIES = 8
CLUSTER = ClusterConfig(
    n_shards=3,
    n_replicas=2,
    seed=0,
    hedge_fraction=0.3,
    straggler_spread=0.5,
    fail_shards=((1, 0),),
    retry_policy=RetryPolicy(),
)


def run_traced_day(scale: int = 1):
    app = get_app("tir")
    rng = np.random.default_rng(0)
    features = rng.normal(0, 1, (2_000 * scale, app.feature_floats)).astype(
        np.float32
    )
    dtrace = TraceCollector()
    cluster = DeepStoreCluster(CLUSTER)
    db = cluster.write_db(features)
    model = cluster.load_graph(train_scn(app, seed=0))
    queries = [
        rng.normal(0, 1, app.feature_floats).astype(np.float32)
        for _ in range(N_QUERIES * scale)
    ]
    results = [
        cluster.query(q, 5, model, db, dtrace=dtrace) for q in queries
    ]

    # the untraced twin: same day, no collector attached
    twin = DeepStoreCluster(CLUSTER)
    twin_db = twin.write_db(features)
    twin_model = twin.load_graph(train_scn(app, seed=0))
    untraced = [twin.query(q, 5, twin_model, twin_db) for q in queries]
    return results, untraced, dtrace


def attribution_table(paths, fleet):
    table = Table(
        f"Extension: critical-path attribution ({len(paths)} traced "
        f"queries, {CLUSTER.n_shards}x{CLUSTER.n_replicas} cluster)",
        ["query", "total (us)", "critical segment", "share", "bit-exact"],
    )
    for q, path in enumerate(paths):
        top = max(path.segments, key=lambda s: s.seconds)
        share = (
            top.seconds / path.total_seconds * 100.0
            if path.total_seconds > 0 else 0.0
        )
        table.add_row(
            f"{q:5d}",
            f"{path.total_seconds * 1e6:10.2f}",
            top.name,
            f"{share:5.1f}%",
            "yes" if path.bit_exact else "NO",
        )
    dominant = fleet.dominant_at(99.0)
    table.add_row(
        "p99", "", f"dominant kind: {dominant['dominant']}",
        f"{dominant['share'] * 100:5.1f}%", "",
    )
    return table


def slo_table(report):
    table = Table(
        "Extension: SLO burn-rate alerting over the chaos day",
        ["quantity", "value"],
    )
    rows = [
        ("availability", f"{report.availability:.3f}"),
        ("alerts fired", f"{len(report.alerts)}"),
        ("first kill (ms)",
         f"{report.first_fault_s * 1e3:.2f}"
         if report.first_fault_s is not None else "-"),
        ("first alert (ms)",
         f"{report.first_alert_s * 1e3:.2f}"
         if report.first_alert_s is not None else "-"),
        ("alert latency (ms)",
         f"{report.alert_latency_s * 1e3:.2f}"
         if report.alert_latency_s is not None else "-"),
    ]
    for name, value in rows:
        table.add_row(f"{name:24s}", value)
    return table


def test_ext_obs_attribution(benchmark, bench_scale):
    results, untraced, dtrace = benchmark.pedantic(
        run_traced_day, args=(bench_scale,), rounds=1, iterations=1
    )

    # --- zero cost: the traced day equals the untraced day, byte for byte
    assert [r.to_dict() for r in results] == [
        r.to_dict() for r in untraced
    ]

    # --- attribution: every query sums bit-exactly to its total
    paths = [cluster_critical_path(r) for r in results]
    fleet = FleetAttribution()
    for path in paths:
        fleet.add(path)
    for path, result in zip(paths, results):
        assert path.exact
        assert path.component_sum() == result.seconds  # IEEE-754 ==
    assert fleet.exact_fraction == 1.0
    emit(attribution_table(paths, fleet), "ext_obs_attribution.txt")

    # --- tracing: a balanced span forest, one trace per query
    assert dtrace.open_count == 0
    assert len(dtrace.trace_ids()) == N_QUERIES
    trace = dtrace_chrome(dtrace)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "dtrace.json").write_text(
        json.dumps(trace, indent=2, sort_keys=True) + "\n"
    )
    events = trace["traceEvents"]
    assert any(e["ph"] == "s" for e in events)  # flow arrows present


def test_ext_obs_slo_artifact():
    """The SLO report is bit-stable and lands in results/ for CI upload."""
    report = run_cluster_chaos(ChaosConfig(seed=SCORECARD_SEED))
    emit(slo_table(report), "ext_obs_slo.txt")
    payload = {
        "availability": report.availability,
        "first_fault_s": report.first_fault_s,
        "first_alert_s": report.first_alert_s,
        "alert_latency_s": report.alert_latency_s,
        "slo": report.slo,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "slo_report.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    # the chaos day must be *detected*, not just survived
    assert report.first_fault_s is not None
    assert report.alerts
    assert report.alert_latency_s is not None
    assert report.alert_latency_s >= 0.0
    # bit-stable across runs (what lets CI archive and diff it)
    again = run_cluster_chaos(ChaosConfig(seed=SCORECARD_SEED))
    assert again.alert_latency_s == report.alert_latency_s
    assert again.slo == report.slo
