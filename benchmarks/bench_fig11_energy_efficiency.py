"""Fig. 11: energy efficiency of DeepStore designs vs the Volta GPU.

Normalized perf/W per application and level.  Shape claims: the channel
level is the most energy-efficient design everywhere (paper: up to
78.6x), the chip level reaches only a fraction of the channel level's
efficiency, and the SSD level sits lowest (0.7-2.8x in the paper).
"""


from repro.analysis import Table, compare_levels
from repro.workloads import ALL_APPS

from conftest import PAPER_ENERGY, emit


def evaluate(paper_databases, volta_baseline):
    table = Table(
        "Fig. 11: perf/W normalized to Volta (measured | paper)",
        ["App", "SSD-level", "Channel-level", "Chip-level"],
    )
    cells = {}
    for name, app in ALL_APPS.items():
        row = {
            c.level: c
            for c in compare_levels(app, paper_databases[name],
                                    baseline=volta_baseline)
        }
        cells[name] = row

        def fmt(level):
            cell = row[level]
            if not cell.supported:
                return "n/a | n/a"
            return f"{cell.energy_efficiency:6.1f}x | {PAPER_ENERGY[name][level]}"

        table.add_row(name, fmt("ssd"), fmt("channel"), fmt("chip"))
    return table, cells


def test_fig11_energy_efficiency(benchmark, paper_databases, volta_baseline):
    table, cells = benchmark.pedantic(
        evaluate, args=(paper_databases, volta_baseline), rounds=1, iterations=1,
    )
    emit(table, "fig11_energy_efficiency.txt")
    for name, row in cells.items():
        assert row["channel"].energy_efficiency > row["ssd"].energy_efficiency
        if row["chip"].supported:
            assert row["channel"].energy_efficiency > row["chip"].energy_efficiency
            # paper: chip achieves 8.2-17.5% of channel efficiency; ours
            # lands in a wider 10-60% envelope
            ratio = row["chip"].energy_efficiency / row["channel"].energy_efficiency
            assert 0.05 < ratio < 0.65, f"{name}: {ratio:.2f}"
    best = max(row["channel"].energy_efficiency for row in cells.values())
    assert best > 25.0  # paper peaks at 78.6x; ours exceeds 25x
