"""Fig. 12: accelerator energy breakdown (compute / memory / flash).

Per application and level, the share of dynamic energy spent in
arithmetic, in the memory system (scratchpads, shared L2, DRAM, NoC),
and in flash accesses.  Paper shape: SSD/channel levels are
memory-dominated, chip level is flash-dominated, and ReId's flash share
is elevated because each feature spans three flash pages.
"""

import pytest

from repro.core import DeepStoreSystem
from repro.analysis import Table
from repro.workloads import ALL_APPS

from conftest import emit


def evaluate(paper_databases):
    table = Table(
        "Fig. 12: energy breakdown (percent: compute / memory / flash)",
        ["App", "SSD-level", "Channel-level", "Chip-level"],
    )
    fractions = {}
    for name, app in ALL_APPS.items():
        meta = paper_databases[name]
        graph = app.build_scn()
        cells = []
        for level in ("ssd", "channel", "chip"):
            system = DeepStoreSystem.at_level(level)
            if not system.supports(graph):
                cells.append("n/a")
                continue
            latency = system.query_latency(app, meta, graph=graph)
            f = latency.energy.fractions()
            fractions.setdefault(name, {})[level] = f
            cells.append(
                f"{f['compute'] * 100:4.1f}/{f['memory'] * 100:4.1f}"
                f"/{f['flash'] * 100:4.1f}"
            )
        table.add_row(name, *cells)
    return table, fractions


def test_fig12_energy_breakdown(benchmark, paper_databases):
    table, fractions = benchmark.pedantic(
        evaluate, args=(paper_databases,), rounds=1, iterations=1
    )
    emit(table, "fig12_energy_breakdown.txt")
    for name, levels in fractions.items():
        for level, f in levels.items():
            assert f["compute"] + f["memory"] + f["flash"] == pytest.approx(1.0)
        # memory dominates compute at SSD/channel level (paper §6.4)
        assert levels["ssd"]["memory"] > levels["ssd"]["compute"]
        assert levels["channel"]["memory"] > levels["channel"]["compute"]
        # the chip level's flash share is the largest of the three levels
        if "chip" in levels:
            assert levels["chip"]["flash"] >= levels["channel"]["flash"]
