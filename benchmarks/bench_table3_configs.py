"""Table 3: DeepStore accelerator configurations.

Prints the three placements (dataflow, PEs, frequency, scratchpad, area)
alongside the analytic area estimate and each level's measured
per-accelerator power envelope against its budget, and runs the §4.5
design-space search to confirm designs exist under the channel budget.
"""

from repro.analysis import Table
from repro.core.dse import search_configurations, validate_placement_power
from repro.core.placement import CHANNEL_LEVEL, CHIP_LEVEL, SSD_LEVEL
from repro.ssd import SsdConfig

from conftest import emit

PLACEMENTS = {"SSD-level": SSD_LEVEL, "Channel-level": CHANNEL_LEVEL,
              "Chip-level": CHIP_LEVEL}


def build_tables():
    ssd = SsdConfig()
    table = Table(
        "Table 3: accelerator configurations",
        ["Level", "Dataflow", "PEs", "Freq(MHz)", "Scratchpad", "Area mm^2 (paper)",
         "Budget W", "Max app power W"],
    )
    envelopes = {}
    for label, p in PLACEMENTS.items():
        powers = validate_placement_power(p, ssd)
        envelopes[label] = (max(powers.values()), p.power_budget_w(ssd))
        table.add_row(
            label,
            p.systolic.dataflow,
            f"{p.systolic.rows}x{p.systolic.cols}",
            f"{p.systolic.frequency_hz / 1e6:.0f}",
            f"{p.scratchpad_bytes // 1024}KB",
            f"{p.area_mm2}",
            f"{p.power_budget_w(ssd):.2f}",
            f"{max(powers.values()):.2f}",
        )
    search = search_configurations("channel", CHANNEL_LEVEL.power_budget_w(ssd))
    feasible = [c for c in search if c.feasible]
    return table, envelopes, feasible


def test_table3_configs(benchmark):
    table, envelopes, feasible = benchmark(build_tables)
    emit(table, "table3_configs.txt")
    # every placement's worst-app power stays near/below its budget
    for label, (power, budget) in envelopes.items():
        assert power < budget * 1.4, f"{label}: {power:.2f} W vs {budget:.2f} W"
    assert feasible, "the DSE must find designs under the channel budget"
