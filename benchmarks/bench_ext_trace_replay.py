"""Extension: trace-driven serving (latency under load).

The paper reports single-query latency; a storage service also cares
about sustained throughput and tail latency.  Using the paper's own
trace-driven methodology (§5), this bench replays a Poisson query trace
against the GPU+SSD baseline and DeepStore's channel level — with and
without the query cache — and reports p50/p99 latency and the saturation
point.
"""


from repro.analysis import Table, format_seconds
from repro.baseline import GpuSsdSystem
from repro.core import DeepStoreSystem
from repro.core.query_cache import EmbeddingComparator, QueryCache
from repro.ssd import Ssd
from repro.workloads import QueryStream, capture_trace, get_app, replay_trace

from conftest import emit

N_QUERIES = 1500
DB_FEATURES = 10_000_000  # 20 GB of TIR vectors


def backends():
    """Per-query service-time functions for each system."""
    app = get_app("tir")
    ssd = Ssd()
    meta = ssd.ftl.create_database(app.feature_bytes, DB_FEATURES)
    gpu_seconds = GpuSsdSystem().query_cost(app, meta.feature_count).seconds
    ds_seconds = DeepStoreSystem.at_level("channel").query_latency(
        app, meta
    ).total_seconds

    cache = QueryCache(
        capacity=512, comparator=EmbeddingComparator(),
        qcn_accuracy=0.98, threshold=0.10,
    )

    def cached_service(query):
        lookup = cache.lookup(query.qfv)
        base = lookup.entries_scanned * 0.3e-6
        if lookup.hit:
            return base + 300e-6
        cache.insert(query.qfv, [0.0], [0])
        return base + ds_seconds

    return {
        "GPU+SSD": (lambda q: gpu_seconds),
        "DeepStore": (lambda q: ds_seconds),
        "DeepStore+QC": cached_service,
    }, gpu_seconds, ds_seconds


def sweep():
    systems, gpu_seconds, ds_seconds = backends()
    # offered loads relative to the baseline's capacity
    base_qps = 1.0 / gpu_seconds
    loads = {"0.5x": 0.5 * base_qps, "2x": 2 * base_qps, "8x": 8 * base_qps}
    table = Table(
        "Extension: trace replay (TIR, p50 / p99 latency; S = saturated)",
        ["Offered load"] + list(systems),
    )
    results = {}
    for label, qps in loads.items():
        stream = QueryStream(
            dim=512, n_intents=2000, distribution="zipf", alpha=0.7,
            paraphrase_noise=0.15, noise_spread=0.85, seed=21,
        )
        trace = capture_trace(stream, N_QUERIES, offered_qps=qps, seed=5)
        cells = []
        for name, service in systems.items():
            dist = replay_trace(trace, service)
            results.setdefault(label, {})[name] = dist
            flag = " S" if dist.saturated else ""
            cells.append(
                f"{format_seconds(dist.p50_s)}/{format_seconds(dist.p99_s)}{flag}"
            )
        table.add_row(label, *cells)
    return table, results


def test_ext_trace_replay(benchmark):
    table, results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(table, "ext_trace_replay.txt")
    # at half the GPU's capacity everyone keeps up, but DeepStore's
    # latency is an order of magnitude lower
    light = results["0.5x"]
    assert not light["DeepStore"].saturated
    assert light["GPU+SSD"].p50_s / light["DeepStore"].p50_s > 5.0
    # at 2x the GPU saturates; DeepStore does not
    assert results["2x"]["GPU+SSD"].saturated
    assert not results["2x"]["DeepStore"].saturated
    # at 8x only the cache-fronted device keeps its tail bounded
    heavy = results["8x"]
    assert heavy["DeepStore+QC"].p99_s <= heavy["DeepStore"].p99_s * 1.05
