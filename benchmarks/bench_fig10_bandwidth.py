"""Fig. 10: internal and external bandwidth scaling (MIR).

(a) varies the number of channels inside one SSD (4-64): the GPU+SSD
system saturates at its external link, the SSD-level accelerator is
compute-bound, and the channel/chip levels scale linearly.
(b) varies the number of SSDs (1-8): the baseline's I/O shrinks but its
compute does not, while DeepStore's compute scales with the devices.
"""

import pytest

from repro.analysis import Table
from repro.baseline import GpuSsdSystem
from repro.core import DeepStoreSystem
from repro.ssd import Ssd, SsdConfig
from repro.workloads import get_app

from conftest import emit

CHANNELS = (4, 8, 16, 32, 64)
SSDS = (1, 2, 4, 8)


def internal_sweep():
    app = get_app("mir")
    graph = app.build_scn()
    results = {}
    for channels in CHANNELS:
        config = SsdConfig().with_channels(channels)
        ssd = Ssd(config)
        meta = ssd.ftl.create_database(app.feature_bytes, int(2e9 / app.feature_bytes))
        n = meta.feature_count
        results.setdefault("traditional", {})[channels] = (
            GpuSsdSystem().query_cost(app, n).seconds
        )
        for level in ("ssd", "channel", "chip"):
            system = DeepStoreSystem.at_level(level, ssd=config)
            results.setdefault(level, {})[channels] = system.query_latency(
                app, meta, graph=graph
            ).total_seconds
    return results


def external_sweep():
    app = get_app("mir")
    graph = app.build_scn()
    ssd = Ssd()
    meta = ssd.ftl.create_database(app.feature_bytes, int(2e9 / app.feature_bytes))
    n = meta.feature_count
    results = {}
    for num in SSDS:
        results.setdefault("traditional", {})[num] = (
            GpuSsdSystem(num_ssds=num).query_cost(app, n).seconds
        )
        for level in ("ssd", "channel", "chip"):
            system = DeepStoreSystem.at_level(level)
            seconds = system.query_latency(app, meta, graph=graph).total_seconds
            # DeepStore scales linearly with devices: the database and
            # the accelerators replicate together (paper §6.3)
            results.setdefault(level, {})[num] = seconds / num
    return results


def render(results, axis, norm_point, title, filename):
    table = Table(title, ["System"] + [str(a) for a in axis])
    norm = results["traditional"][norm_point]
    for system, row in results.items():
        table.add_row(system, *(f"{norm / row[a]:6.2f}x" for a in axis))
    emit(table, filename)


def test_fig10a_internal_bandwidth(benchmark):
    results = benchmark.pedantic(internal_sweep, rounds=1, iterations=1)
    render(results, CHANNELS, 32,
           "Fig. 10a: speedup vs #channels (normalized to traditional @32ch)",
           "fig10a_channels.txt")
    # channel level scales linearly with channel count
    channel = results["channel"]
    assert channel[4] / channel[64] == pytest.approx(16, rel=0.15)
    chip = results["chip"]
    assert chip[4] / chip[64] == pytest.approx(16, rel=0.25)
    # the baseline saturates beyond ~8 channels
    trad = results["traditional"]
    assert trad[8] / trad[64] < 1.1
    # the SSD-level accelerator cannot exploit more channels
    ssd_level = results["ssd"]
    assert ssd_level[8] / ssd_level[64] < 1.25


def test_fig10b_external_bandwidth(benchmark):
    results = benchmark.pedantic(external_sweep, rounds=1, iterations=1)
    render(results, SSDS, 1,
           "Fig. 10b: speedup vs #SSDs (normalized to traditional @1 SSD)",
           "fig10b_ssds.txt")
    # DeepStore scales linearly with SSDs; the baseline sub-linearly
    channel = results["channel"]
    assert channel[1] / channel[8] == pytest.approx(8, rel=0.01)
    trad = results["traditional"]
    assert 2.0 < trad[1] / trad[8] < 8.0
