"""The reproduction scorecard, as a benchmark artifact.

Re-runs every Table-4 comparison and the prose structural checks,
prints the verdict table, and writes ``benchmarks/results/scorecard.json``
— the single machine-readable record of paper-vs-measured.
"""



from repro.analysis.scorecard import build_scorecard

from conftest import RESULTS_DIR


def test_scorecard(benchmark, paper_databases):
    card = benchmark.pedantic(build_scorecard, rounds=1, iterations=1)
    print()
    print(card.render())
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "scorecard.json").write_text(card.to_json() + "\n")
    (RESULTS_DIR / "scorecard.txt").write_text(card.render() + "\n")

    counts = card.counts
    # every prose claim must hold
    assert card.structural_ok, card.structural
    # no outright mismatches (an n/a cell measured as feasible, or
    # vice versa), and the bulk of the grid within tolerance
    assert counts["mismatch"] == 0
    assert counts["off"] <= 3
    assert counts["within"] >= 8
