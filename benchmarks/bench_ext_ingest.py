"""Extension: online ingest & data lifecycle under live queries.

The paper's database is immutable; real deployments ingest while they
serve.  This bench drives one :class:`LifecycleDevice` database through
the full lifecycle loop (:func:`repro.ingest.run_lifecycle`) and
asserts the three claims the subsystem stands on:

* **staleness** — the clustered layout's recall against the exact
  snapshot top-K degrades monotonically-in-trend as the unclustered
  delta region grows, and scanning the delta buys it back;
* **compaction** — the preemptible background re-clustering restores
  recall to within 1% of a freshly-clustered baseline on the same
  visible set;
* **write amplification** — the WA the interference model sees is the
  page-mapped FTL's own bookkeeping, consistent with its GC counters.

The emitted table is the ingest scorecard the CI perf gate diffs.
"""

import json

from repro.analysis import Table
from repro.ingest import LifecycleConfig, run_lifecycle
from repro.ingest.scorecard import GATE_CONFIG, build_ingest_scorecard

from conftest import RESULTS_DIR, emit

#: the bench runs the exact gate configuration: one deterministic run,
#: one artifact, no drift between what CI gates and what this asserts
CONFIG: LifecycleConfig = GATE_CONFIG


def scaled_config(scale: int = 1) -> LifecycleConfig:
    """The gate config with every row count multiplied by ``scale``.

    ``scale=1`` returns ``GATE_CONFIG`` itself, so the smoke run and
    the scorecard leg stay the same object; larger scales grow the base
    set and the per-round churn proportionally, preserving the delta
    fractions the staleness claims are about.  The ingest flash region
    grows with the churn so GC keeps firing at the same relative
    pressure instead of exhausting logical space.
    """
    if scale == 1:
        return CONFIG
    from dataclasses import replace

    return replace(
        CONFIG,
        n_base=CONFIG.n_base * scale,
        planted_per_round=CONFIG.planted_per_round * scale,
        random_per_round=CONFIG.random_per_round * scale,
        deletes_per_round=CONFIG.deletes_per_round * scale,
        updates_per_round=CONFIG.updates_per_round * scale,
        region_blocks=CONFIG.region_blocks * scale,
    )


def run_loop(scale: int = 1):
    return run_lifecycle(scaled_config(scale))


def staleness_table(report):
    table = Table(
        f"Extension: ingest staleness ({CONFIG.app}, {CONFIG.n_base} base "
        f"rows, {CONFIG.rounds} mutation rounds)",
        ["round", "delta %", "stale recall", "+delta recall",
         "stale ms", "+delta ms"],
    )
    for p in report.staleness:
        table.add_row(
            f"{p.round:5d}",
            f"{p.delta_fraction * 100:7.1f}",
            f"{p.stale_recall:12.3f}",
            f"{p.with_delta_recall:13.3f}",
            f"{p.stale_scan_seconds * 1e3:8.3f}",
            f"{p.with_delta_scan_seconds * 1e3:9.3f}",
        )
    return table


def lifecycle_table(report):
    comp = report.compaction
    table = Table(
        "Extension: ingest compaction & write path",
        ["quantity", "value"],
    )
    rows = [
        ("rows rewritten", f"{comp.rows_rewritten}"),
        ("tombstones reclaimed", f"{comp.reclaimed_rows}"),
        ("chunks / preemptions", f"{comp.chunks} / {comp.preemptions}"),
        ("compaction ms (DES)", f"{comp.duration_s * 1e3:.3f}"),
        ("recall before -> after",
         f"{report.staleness[-1].stale_recall:.3f} -> "
         f"{report.post_compaction_recall:.3f}"),
        ("fresh-layout baseline", f"{report.fresh_baseline_recall:.3f}"),
        ("write amplification", f"{report.write_amplification:.3f}"),
        ("host pages / relocations / erases",
         f"{report.host_writes} / {report.gc_relocations} / "
         f"{report.gc_erases}"),
    ] + [
        (f"slowdown @ raw load {p.raw_load:g}", f"{p.slowdown:.3f}x")
        for p in report.interference
    ]
    for name, value in rows:
        table.add_row(f"{name:34s}", value)
    return table


def test_ext_ingest_lifecycle(benchmark, bench_scale):
    report = benchmark.pedantic(
        run_loop, args=(bench_scale,), rounds=1, iterations=1
    )
    emit(staleness_table(report), "ext_ingest_staleness.txt")
    emit(lifecycle_table(report), "ext_ingest_lifecycle.txt")

    # --- staleness: recall degrades as the delta grows, and the delta
    # scan recovers what the stale clustered layout lost
    assert report.staleness[-1].delta_fraction > 0.15
    assert (report.staleness[-1].stale_recall
            < report.staleness[0].stale_recall)
    for point in report.staleness[1:]:
        assert point.with_delta_recall > point.stale_recall

    # --- compaction: restored to within 1% of the freshly-clustered
    # baseline on the same visible set (the acceptance bound)
    assert abs(report.post_compaction_recall
               - report.fresh_baseline_recall) <= 0.01
    assert report.compaction.preemptions >= 1  # queries really preempt

    # --- write path: WA is the FTL's own arithmetic, not an assumption
    expected_wa = (report.host_writes + report.gc_relocations) \
        / report.host_writes
    assert report.write_amplification == expected_wa
    assert report.write_amplification >= 1.0

    # --- interference: background ingest only ever slows queries down
    slowdowns = [p.slowdown for p in report.interference]
    assert slowdowns[0] == 1.0
    assert slowdowns == sorted(slowdowns)
    assert slowdowns[-1] > 1.0


def test_ext_ingest_scorecard_artifact():
    """The gate leg is bit-stable and lands in results/ for CI upload."""
    card = build_ingest_scorecard()
    again = build_ingest_scorecard()
    assert card == again
    text = json.dumps(card, indent=2, sort_keys=True) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ingest_scorecard.json").write_text(text)
    assert card["staleness"]["final_recall"] \
        < card["staleness"]["initial_recall"]
    assert card["writepath"]["write_amplification"] >= 1.0
