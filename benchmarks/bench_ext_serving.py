"""Extension: open-loop serving under offered load.

The paper reports single-query latency; a service's operating point is
the throughput-latency curve.  This bench sweeps offered load around
the analytic saturation throughput for TIR (plain, cache-fronted, and
degraded-mode variants) and asserts the curve's shape: achieved QPS
tracks offered load below the knee and clips at saturation, tail
latency rises monotonically, nothing is shed below the knee, and the
cache raises capacity while the dead accelerators lower it.
"""

import pytest

from repro.analysis import Table
from repro.serving import (
    ServingConfig,
    ServingCurve,
    sweep_offered_load,
)
from repro.workloads import QueryStream

from conftest import emit

FEATURES = 400_000
QUERIES = 240
SEED = 7
FRACTIONS = (0.25, 0.5, 0.75, 1.0, 1.25, 1.5)


def run_variants(scale: int = 1):
    features = FEATURES * scale
    queries = QUERIES * scale
    plain = sweep_offered_load(
        ServingConfig(app="tir", features=features, queue_bound=32,
                      max_batch=8),
        n_queries=queries, seed=SEED, load_fractions=FRACTIONS,
    )
    cached = sweep_offered_load(
        ServingConfig(app="tir", features=features, queue_bound=32,
                      max_batch=8, cache_entries=256),
        n_queries=queries, seed=SEED, load_fractions=FRACTIONS,
        stream=QueryStream(dim=64, n_intents=40, distribution="zipf",
                           alpha=0.8, paraphrase_noise=0.05, seed=SEED),
    )
    degraded = sweep_offered_load(
        ServingConfig(app="tir", features=features, queue_bound=32,
                      max_batch=8, failed_accels=(0, 1)),
        n_queries=queries, seed=SEED, load_fractions=FRACTIONS,
    )
    return plain, cached, degraded


def curves_table(plain, cached, degraded):
    table = Table(
        "Extension: serving throughput-latency (tir, 400K features)",
        ["variant", "offered", "achieved", "goodput", "shed%",
         "p50 ms", "p99 ms"],
    )
    for name, curve in (("plain", plain), ("cached", cached),
                        ("degraded", degraded)):
        for p in curve.points:
            table.add_row(
                name,
                f"{p.offered_qps:7.2f}",
                f"{p.achieved_qps:7.2f}",
                f"{p.goodput_fraction:6.3f}",
                f"{p.shed_rate * 100:5.1f}",
                f"{p.p50_s * 1e3:8.2f}",
                f"{p.p99_s * 1e3:8.2f}",
            )
    return table


def test_ext_serving(benchmark, bench_scale):
    plain, cached, degraded = benchmark.pedantic(
        run_variants, args=(bench_scale,), rounds=1, iterations=1
    )
    emit(curves_table(plain, cached, degraded), "ext_serving.txt")

    for curve in (plain, cached, degraded):
        assert isinstance(curve, ServingCurve)
        assert curve.achieved_monotone(slack=curve.saturation_qps * 1e-6)
        assert curve.p99_monotone(slack=1e-9)
        assert all(p.conserved for p in curve.points)

    # below the knee nothing is shed and achieved tracks offered
    for p in plain.points[:3]:
        assert p.shed == 0
        assert p.achieved_qps == pytest.approx(p.offered_qps, rel=0.05)
    # past the knee the plain service clips at ~saturation and sheds
    overload = plain.points[-1]
    assert overload.achieved_qps <= plain.saturation_qps * 1.05
    assert overload.shed > 0
    # the tail rises past the knee
    assert plain.points[-1].p99_s > 3 * plain.points[0].p99_s

    # the cache is a capacity multiplier: same offered overload, but
    # hits bypass the scan queue, so more queries complete
    assert cached.points[-1].hit_rate > 0.3
    assert (cached.points[-1].goodput_fraction
            > plain.points[-1].goodput_fraction)

    # dead accelerators halve capacity (2 survivors adopt full stripes)
    assert degraded.points[-1].achieved_qps < plain.points[-1].achieved_qps
