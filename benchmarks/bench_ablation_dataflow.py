"""Ablation: output-stationary vs weight-stationary dataflow per level.

The paper assigns OS to the SSD/channel levels and WS to the chip level
(§4.5).  This ablation swaps the dataflow at each level and measures the
per-feature compute time over the FC applications, isolating *why* the
assignment is what it is: with one feature vector in flight, OS beats WS
wherever weights are resident, while WS's weight pinning is what makes
the chip level's bus-broadcast scheme workable at all.
"""

from dataclasses import replace

from repro.analysis import Table
from repro.core.placement import CHANNEL_LEVEL, CHIP_LEVEL, SSD_LEVEL
from repro.ssd import SsdConfig
from repro.systolic import GraphMapper, SystolicArray
from repro.workloads import ALL_APPS

from conftest import emit

FC_APPS = ("mir", "estp", "tir", "textqa")


def spf_with_dataflow(placement, dataflow, app):
    ssd = SsdConfig()
    systolic = replace(placement.systolic, dataflow=dataflow)
    swapped = replace(placement, systolic=systolic)
    mapper = GraphMapper(
        SystolicArray(systolic), swapped.build_hierarchy(ssd)
    )
    return mapper.map_graph(app.build_scn()).seconds_per_feature


def sweep():
    table = Table(
        "Ablation: OS vs WS per level (compute us/feature, FC apps)",
        ["Level", "App", "OS", "WS", "OS/WS"],
    )
    ratios = {}
    for label, placement in (("ssd", SSD_LEVEL), ("channel", CHANNEL_LEVEL),
                             ("chip", CHIP_LEVEL)):
        for name in FC_APPS:
            app = ALL_APPS[name]
            os_spf = spf_with_dataflow(placement, "OS", app)
            ws_spf = spf_with_dataflow(placement, "WS", app)
            ratios.setdefault(label, {})[name] = os_spf / ws_spf
            table.add_row(
                label, name,
                f"{os_spf * 1e6:8.2f}", f"{ws_spf * 1e6:8.2f}",
                f"{os_spf / ws_spf:5.2f}",
            )
    return table, ratios


def test_ablation_dataflow(benchmark):
    table, ratios = benchmark(sweep)
    emit(table, "ablation_dataflow.txt")
    # at the channel level OS wins (m = 1: pinning weights costs reload
    # passes, and the shared L2 keeps weights resident anyway); this is
    # why Table 3 assigns OS there
    for name, ratio in ratios["channel"].items():
        assert ratio < 1.05, f"channel {name}: OS/WS = {ratio:.2f}"
    # at the chip level the picture inverts hard: the 512 KB L1 cannot
    # hold mid-sized models, so OS restreams weights over the channel
    # bus per feature while WS amortizes each pinned tile over a batch —
    # a >10x win, which is exactly why Table 3 assigns WS there
    for name in ("mir", "estp", "tir"):
        assert ratios["chip"][name] > 10.0, f"chip {name}: {ratios['chip'][name]:.1f}"
    # TextQA's 0.16 MB model fits the chip L1, so OS remains fine there
    assert ratios["chip"]["textqa"] < 1.2
